"""Property tests pinning the optimised wire layer to reference semantics.

The zero-copy/precompiled-codec rewrite of CDR and the incremental GIOP
framer must be *byte-for-byte* equivalent to the straightforward
implementations they replaced.  These tests embed small reference
implementations — a per-primitive ``struct.pack`` CDR writer with
explicit alignment, and a re-parse-from-scratch framer — and drive both
sides with hypothesis-generated primitive sequences, strings, and
arbitrarily fragmented byte feeds.
"""

from __future__ import annotations

import struct

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iiop.cdr import CdrInputStream, CdrOutputStream
from repro.iiop.giop import (
    GIOP_HEADER_SIZE,
    GiopFramer,
    encode_cancel_request,
    encode_locate_request,
    parse_header,
)

# ----------------------------------------------------------------------
# Reference CDR writer (the pre-optimisation algorithm, kept deliberately
# naive: align with pad bytes, then struct.pack one value at a time).
# ----------------------------------------------------------------------

_REF_FORMATS = {
    "short": ("h", 2), "ushort": ("H", 2),
    "long": ("l", 4), "ulong": ("L", 4),
    "longlong": ("q", 8), "ulonglong": ("Q", 8),
    "float": ("f", 4), "double": ("d", 8),
}


class ReferenceCdrWriter:
    def __init__(self, little_endian: bool) -> None:
        self.buf = bytearray()
        self.endian = "<" if little_endian else ">"

    def align(self, boundary: int) -> None:
        pad = (-len(self.buf)) % boundary
        self.buf.extend(b"\x00" * pad)

    def write_octet(self, value: int) -> None:
        self.buf.append(value & 0xFF)

    def write_numeric(self, kind: str, value) -> None:
        fmt, alignment = _REF_FORMATS[kind]
        self.align(alignment)
        self.buf.extend(struct.pack(self.endian + fmt, value))

    def write_string(self, value: str) -> None:
        data = value.encode("utf-8") + b"\x00"
        self.write_numeric("ulong", len(data))
        self.buf.extend(data)

    def write_octets(self, value: bytes) -> None:
        self.write_numeric("ulong", len(value))
        self.buf.extend(value)


_INT_RANGES = {
    "short": (-2 ** 15, 2 ** 15 - 1), "ushort": (0, 2 ** 16 - 1),
    "long": (-2 ** 31, 2 ** 31 - 1), "ulong": (0, 2 ** 32 - 1),
    "longlong": (-2 ** 63, 2 ** 63 - 1), "ulonglong": (0, 2 ** 64 - 1),
}


def _primitive():
    kinds = []
    for kind, (lo, hi) in _INT_RANGES.items():
        kinds.append(st.tuples(st.just(kind), st.integers(lo, hi)))
    kinds.append(st.tuples(st.just("octet"), st.integers(0, 255)))
    kinds.append(st.tuples(
        st.just("double"),
        st.floats(allow_nan=False, allow_infinity=False, width=64)))
    # CORBA strings are NUL-terminated on the wire; NUL is rejected.
    # Surrogates are excluded: they are not encodable as UTF-8, so no
    # CORBA string can carry them (write_string would raise either way).
    kinds.append(st.tuples(st.just("string"), st.text(
        alphabet=st.characters(blacklist_characters="\x00",
                               blacklist_categories=("Cs",)),
        max_size=40)))
    kinds.append(st.tuples(st.just("octets"), st.binary(max_size=40)))
    return st.one_of(kinds)


@settings(max_examples=60, deadline=None)
@given(items=st.lists(_primitive(), max_size=30), little=st.booleans())
def test_cdr_output_matches_reference_writer(items, little):
    out = CdrOutputStream(little_endian=little)
    ref = ReferenceCdrWriter(little)
    for kind, value in items:
        if kind == "octet":
            out.write_octet(value)
            ref.write_octet(value)
        elif kind == "string":
            out.write_string(value)
            ref.write_string(value)
        elif kind == "octets":
            out.write_octets(value)
            ref.write_octets(value)
        else:
            getattr(out, f"write_{kind}")(value)
            ref.write_numeric(kind, value)
    assert out.getvalue() == bytes(ref.buf)


@settings(max_examples=60, deadline=None)
@given(items=st.lists(_primitive(), max_size=30), little=st.booleans())
def test_cdr_round_trip_recovers_every_primitive(items, little):
    out = CdrOutputStream(little_endian=little)
    for kind, value in items:
        if kind in ("string", "octets"):
            getattr(out, f"write_{kind}")(value)
        else:
            getattr(out, f"write_{kind}")(value)
    stream = CdrInputStream(out.getvalue(), little_endian=little)
    for kind, value in items:
        got = getattr(stream, f"read_{kind}")()
        if kind == "double":
            assert struct.pack(">d", got) == struct.pack(">d", value)
        else:
            assert got == value
    assert stream.remaining == 0


@settings(max_examples=40, deadline=None)
@given(items=st.lists(_primitive(), max_size=20), little=st.booleans())
def test_cdr_input_accepts_memoryview_identically(items, little):
    out = CdrOutputStream(little_endian=little)
    for kind, value in items:
        getattr(out, f"write_{kind}")(value)
    wire = out.getvalue()
    from_bytes = CdrInputStream(wire, little_endian=little)
    from_view = CdrInputStream(memoryview(wire), little_endian=little)
    for kind, _ in items:
        a = getattr(from_bytes, f"read_{kind}")()
        b = getattr(from_view, f"read_{kind}")()
        assert a == b or (a != a and b != b)  # NaN-tolerant equality


# ----------------------------------------------------------------------
# Framer: arbitrary fragmentation must reassemble the identical message
# sequence a whole-buffer reference parse produces.
# ----------------------------------------------------------------------


def _reference_frames(wire: bytes):
    """Parse ``wire`` into complete GIOP messages, naive slicing."""
    messages, offset = [], 0
    while len(wire) - offset >= GIOP_HEADER_SIZE:
        _, _, size = parse_header(wire[offset:offset + GIOP_HEADER_SIZE])
        total = GIOP_HEADER_SIZE + size
        if len(wire) - offset < total:
            break
        messages.append(wire[offset:offset + total])
        offset += total
    return messages, wire[offset:]


_MESSAGES = st.lists(
    st.one_of(
        st.tuples(st.integers(0, 2 ** 31 - 1), st.binary(max_size=24))
        .map(lambda rk: encode_locate_request(rk[0], rk[1])),
        st.integers(0, 2 ** 31 - 1).map(encode_cancel_request),
    ),
    min_size=1, max_size=6,
)


@settings(max_examples=80, deadline=None)
@given(messages=_MESSAGES, data=st.data())
def test_fragmented_feed_reassembles_reference_frames(messages, data):
    wire = b"".join(messages)
    # Random cut points, including empty chunks and header-splitting cuts.
    cuts = sorted(data.draw(st.lists(
        st.integers(0, len(wire)), max_size=12)))
    chunks, prev = [], 0
    for cut in cuts + [len(wire)]:
        chunks.append(wire[prev:cut])
        prev = cut

    framer = GiopFramer()
    collected = []
    for chunk in chunks:
        collected.extend(framer.feed(chunk))

    expected, trailing = _reference_frames(wire)
    assert collected == expected == messages
    assert trailing == b""
    assert framer.buffered == 0


@settings(max_examples=40, deadline=None)
@given(messages=_MESSAGES)
def test_whole_buffer_feed_is_zero_copy(messages):
    wire_messages = list(messages)
    framer = GiopFramer()
    collected = []
    for msg in wire_messages:
        collected.extend(framer.feed(msg))
    assert collected == wire_messages
    # A single complete message fed as one bytes object is passed
    # through without copying.
    assert all(got is sent for got, sent in zip(collected, wire_messages))
    assert framer.zero_copy_bytes == sum(len(m) for m in wire_messages)


@settings(max_examples=40, deadline=None)
@given(messages=_MESSAGES, trailing=st.binary(min_size=1, max_size=11))
def test_trailing_partial_header_stays_buffered(messages, trailing):
    wire = b"".join(messages) + trailing
    framer = GiopFramer()
    collected = framer.feed(wire)
    expected, rest = _reference_frames(wire)
    assert collected == expected
    assert framer.buffered == len(rest)
