"""Tests for GIOP message encode/decode and incremental framing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MarshalError
from repro.iiop import (
    GIOP_HEADER_SIZE,
    GiopFramer,
    MsgType,
    ReplyMessage,
    ReplyStatus,
    RequestMessage,
    ServiceContext,
    decode_reply,
    decode_request,
    encode_close_connection,
    encode_reply,
    encode_request,
    parse_header,
)


def sample_request(**overrides):
    fields = dict(
        request_id=42,
        response_expected=True,
        object_key=b"group:7",
        operation="buy_shares",
        service_contexts=[ServiceContext(0x45540001, b"\x00ctx")],
        principal=b"user",
        body=b"\x01\x02\x03\x04\x05",
    )
    fields.update(overrides)
    return RequestMessage(**fields)


def test_request_roundtrip():
    msg = sample_request()
    encoded = encode_request(msg)
    decoded = decode_request(encoded)
    assert decoded.request_id == 42
    assert decoded.response_expected is True
    assert decoded.object_key == b"group:7"
    assert decoded.operation == "buy_shares"
    assert decoded.principal == b"user"
    assert decoded.body == msg.body
    assert decoded.service_contexts[0].context_id == 0x45540001
    assert decoded.service_contexts[0].data == b"\x00ctx"


def test_request_roundtrip_little_endian():
    msg = sample_request()
    decoded = decode_request(encode_request(msg, little_endian=True))
    assert decoded.operation == "buy_shares"
    assert decoded.request_id == 42


def test_reply_roundtrip():
    msg = ReplyMessage(request_id=42, status=ReplyStatus.NO_EXCEPTION,
                       body=b"payload")
    decoded = decode_reply(encode_reply(msg))
    assert decoded.request_id == 42
    assert decoded.status == ReplyStatus.NO_EXCEPTION
    assert decoded.body == b"payload"


def test_header_parse():
    encoded = encode_request(sample_request())
    message_type, little_endian, size = parse_header(encoded)
    assert message_type == MsgType.REQUEST
    assert little_endian is False
    assert size == len(encoded) - GIOP_HEADER_SIZE


def test_bad_magic_rejected():
    with pytest.raises(MarshalError):
        parse_header(b"IIOP" + b"\x00" * 8)


def test_decode_request_on_reply_raises():
    reply = encode_reply(ReplyMessage(request_id=1, status=0))
    with pytest.raises(MarshalError):
        decode_request(reply)


def test_close_connection_is_header_only():
    data = encode_close_connection()
    message_type, _, size = parse_header(data)
    assert message_type == MsgType.CLOSE_CONNECTION
    assert size == 0
    assert len(data) == GIOP_HEADER_SIZE


def test_find_context():
    msg = sample_request()
    assert msg.find_context(0x45540001) == b"\x00ctx"
    assert msg.find_context(0xDEAD) is None


def test_framer_whole_message():
    encoded = encode_request(sample_request())
    framer = GiopFramer()
    messages = framer.feed(encoded)
    assert messages == [encoded]
    assert framer.buffered == 0


def test_framer_byte_at_a_time():
    encoded = encode_request(sample_request())
    framer = GiopFramer()
    collected = []
    for i in range(len(encoded)):
        collected.extend(framer.feed(encoded[i:i + 1]))
    assert collected == [encoded]


def test_framer_coalesced_messages():
    first = encode_request(sample_request(request_id=1))
    second = encode_request(sample_request(request_id=2, operation="sell"))
    third = encode_reply(ReplyMessage(request_id=1, status=0, body=b"ok"))
    framer = GiopFramer()
    messages = framer.feed(first + second + third)
    assert messages == [first, second, third]


def test_framer_split_across_header_boundary():
    encoded = encode_request(sample_request())
    framer = GiopFramer()
    assert framer.feed(encoded[:5]) == []
    assert framer.feed(encoded[5:20]) == []
    assert framer.feed(encoded[20:]) == [encoded]


@given(st.lists(st.integers(min_value=0, max_value=2**32 - 1), min_size=1,
                max_size=8),
       st.integers(min_value=1, max_value=64))
def test_framer_random_segmentation_property(request_ids, chunk_size):
    """Any segmentation of any message train reframes identically."""
    stream = b"".join(
        encode_request(sample_request(request_id=rid)) for rid in request_ids
    )
    framer = GiopFramer()
    collected = []
    for i in range(0, len(stream), chunk_size):
        collected.extend(framer.feed(stream[i:i + chunk_size]))
    assert [decode_request(m).request_id for m in collected] == request_ids


def test_empty_body_request_roundtrip():
    msg = sample_request(body=b"", service_contexts=[], principal=b"")
    decoded = decode_request(encode_request(msg))
    assert decoded.body == b""
    assert decoded.service_contexts == []


def test_large_body_roundtrip():
    msg = sample_request(body=bytes(range(256)) * 64)
    decoded = decode_request(encode_request(msg))
    assert decoded.body == msg.body
