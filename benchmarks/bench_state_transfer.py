"""E12 (extension): state transfer cost vs application state size.

Section 2.2's Logging-Recovery Mechanisms move whole-object state to
new and recovering replicas.  This ablation measures how the time to
restore the replication degree after a replica crash grows with the
servant's state size — the capacity-planning number for adopting teams
(big-state groups should prefer warm passive + incremental updates or
smaller objects).
"""

import pytest

from repro import ReplicationStyle, Servant, World
from repro.iiop import TC_LONG
from repro.orb import Interface, Operation, Param

from common import build_domain

BLOB = Interface("BlobStore", [
    Operation("fill", [Param("kilobytes", TC_LONG)], TC_LONG),
    Operation("size", [], TC_LONG),
])


class _Empty:
    placement = ()


_EMPTY = _Empty()


class BlobServant(Servant):
    interface = BLOB

    def __init__(self):
        self.blob = b""

    def fill(self, kilobytes):
        self.blob = bytes(kilobytes * 1024)
        return len(self.blob)

    def size(self):
        return len(self.blob)

    def get_state(self):
        return {"blob": self.blob}

    def set_state(self, state):
        self.blob = state["blob"]


def run_recovery(kilobytes):
    world = World(seed=1200 + kilobytes, trace=False)
    domain = build_domain(world, num_hosts=4, gateways=0)
    group = domain.create_group("Blob", BLOB, BlobServant,
                                style=ReplicationStyle.ACTIVE,
                                num_replicas=3, min_replicas=3)
    domain.await_ready(group)
    world.await_promise(group.invoke("fill", kilobytes), timeout=600)
    world.run(until=world.now + 0.2)
    victim = group.info().placement[0]
    bytes_before = world.network.bytes_sent
    t0 = world.now
    world.faults.crash_now(victim)
    world.scheduler.run_until(
        lambda: len((group.info() or _EMPTY).placement) == 3
        and group.is_ready(), timeout=600.0)
    return {
        "state_kb": kilobytes,
        "recovery_s": round(world.now - t0, 4),
        "bytes_moved_kb": round(
            (world.network.bytes_sent - bytes_before) / 1024, 1),
    }


@pytest.mark.parametrize("kilobytes", [1, 64, 512])
def test_recovery_time_vs_state_size(benchmark, kilobytes):
    row = benchmark.pedantic(run_recovery, args=(kilobytes,), rounds=1,
                             iterations=1)
    benchmark.extra_info.update(row)
    # Shape: recovery is dominated by failure *detection* (token-loss
    # timeout), so simulated recovery time is nearly flat in state size;
    # the traffic moved grows linearly with the state.
    assert row["recovery_s"] < 5.0
    assert row["bytes_moved_kb"] >= kilobytes  # the snapshot crossed the wire


def test_transfer_traffic_scales_linearly(benchmark):
    def run():
        return {kb: run_recovery(kb)["bytes_moved_kb"] for kb in (16, 256)}

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {f"moved_kb_state{k}": v for k, v in table.items()})
    assert table[256] > 8 * table[16] / 2  # roughly linear growth
