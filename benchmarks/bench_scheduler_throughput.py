"""Sim-kernel microbenchmarks: raw scheduler events per second.

The gateway-farm roadmap (10^5-10^6 clients) is bounded by how many
discrete events the kernel retires per wall-clock second, so the kernel
gets its own regression line in ``tools/bench_compare.py`` — gated
*blocking* in CI, unlike the end-to-end benches.

Five mixes, each counting pure kernel work (no network, no metrics):

* **timer churn** — chained one-shot ``call_after``: every handler
  schedules its successor; the classic protocol-timer pattern.
* **cancel heavy** — handlers schedule two timers and cancel one, so
  half the queue is garbage: stresses stale-entry skipping/compaction.
* **reschedule heavy** — a deadline timer per chain is pushed back on
  every tick (the Totem token-loss idiom): stresses the lazy
  reschedule path.
* **farm churn** — hundreds of periodic timers plus fire-and-forget
  deliveries, the gateway-farm steady state.  The calendar kernel runs
  the modern API (``call_every`` + ``post``); the reference heap runs
  the pre-overhaul idiom (chained ``call_after`` for periodics,
  ``call_after`` for deliveries), so the reported
  ``speedup_vs_reference`` measures exactly what the overhaul bought
  for an unchanged simulation.
* **broadcast fan-out** (headline) — every round delivers a same-time
  cohort to hundreds of destinations, the Totem
  broadcast-delivery pattern at farm scale.  The calendar kernel takes
  the batched cohort path (``post_batch``: one slot lookup + bulk
  extend, pre-sorted cohort pop); the reference heap pays a Timer
  allocation and an O(log n) sift per delivery.  This mix carries the
  overhaul's >=5x acceptance assertion.

Each test also times the pre-overhaul kernel inline and reports
``events_per_sec`` / ``speedup_vs_reference`` in ``extra_info`` (both
wall-clock-dependent, so ``bench_compare`` ignores them when diffing
simulated scalars; the deterministic ``events`` count is compared).
"""

import time

import pytest

from repro.errors import SimulationError
from repro.sim.reference_scheduler import ReferenceScheduler
from repro.sim.scheduler import Scheduler

CHAINS = 100
TARGET_EVENTS = 60_000


def run_timer_churn(kernel):
    sched = kernel()
    budget = TARGET_EVENTS

    def tick(i, delay):
        if sched.events_processed < budget:
            sched.call_after(delay, tick, i, delay)

    for i in range(CHAINS):
        # Varied sub-slot delays so cohorts straddle bucket boundaries.
        sched.call_after(0.001 + (i % 7) * 0.0005, tick, i,
                         0.001 + (i % 7) * 0.0005)
    try:
        sched.run(max_events=budget)
    except SimulationError:
        pass  # budget stop is the intended exit
    return sched.events_processed


def run_cancel_heavy(kernel):
    sched = kernel()
    budget = TARGET_EVENTS

    def tick(delay):
        doomed = sched.call_after(delay * 3, _never)
        doomed.cancel()
        if sched.events_processed < budget:
            sched.call_after(delay, tick, delay)

    def _never():
        raise AssertionError("cancelled timer fired")

    for i in range(CHAINS):
        sched.call_after(0.002 + (i % 5) * 0.0007, tick,
                         0.002 + (i % 5) * 0.0007)
    try:
        sched.run(max_events=budget)
    except SimulationError:
        pass  # budget stop is the intended exit
    return sched.events_processed


def run_reschedule_heavy(kernel):
    sched = kernel()
    budget = TARGET_EVENTS
    deadlines = []

    def expire():
        raise AssertionError("pushed-back deadline fired")

    def tick(i, delay):
        # The token-loss idiom: every tick pushes the deadline back.
        sched.reschedule_after(deadlines[i], 1000.0)
        if sched.events_processed < budget:
            sched.call_after(delay, tick, i, delay)

    for i in range(CHAINS):
        deadlines.append(sched.call_after(1000.0, expire))
        sched.call_after(0.001 + (i % 7) * 0.0005, tick, i,
                         0.001 + (i % 7) * 0.0005)
    try:
        sched.run(max_events=budget)
    except SimulationError:
        pass  # budget stop is the intended exit
    for deadline in deadlines:
        deadline.cancel()
    return sched.events_processed


def run_farm_churn(kernel, modern):
    """Periodic protocol timers + fire-and-forget deliveries.

    ``modern=True`` uses the overhauled API (``call_every``/``post``);
    ``modern=False`` replays the identical simulation through the
    pre-overhaul idiom (chained ``call_after`` everywhere).
    """
    sched = kernel()
    budget = TARGET_EVENTS
    sink = []

    def deliver(i):
        sink.append(i)

    periodics = []
    if modern:
        def beat(i):
            sched.post(0.0005, deliver, i)

        for i in range(4 * CHAINS):
            periodics.append(
                sched.call_every(0.001 + (i % 9) * 0.0005, beat, i))
    else:
        def legacy_beat(i, interval):
            sched.call_after(interval, legacy_beat, i, interval)
            sched.call_after(0.0005, deliver, i)

        for i in range(4 * CHAINS):
            sched.call_after(0.001 + (i % 9) * 0.0005, legacy_beat, i,
                             0.001 + (i % 9) * 0.0005)
    try:
        sched.run(max_events=budget)
    except SimulationError:
        pass  # budget stop is the intended exit
    for timer in periodics:
        timer.cancel()
    return sched.events_processed


def run_broadcast_fanout(kernel, modern, rounds=100, fan=600):
    """Same-time delivery cohorts: Totem handing a broadcast to every
    gateway in the domain at one simulated instant.

    ``modern=True`` pushes each cohort through ``post_batch``;
    ``modern=False`` replays the identical simulation as the
    pre-overhaul loop of per-destination ``call_after`` calls.
    """
    sched = kernel()
    sink = []
    deliver = sink.append
    if modern:
        argss = [(i,) for i in range(fan)]

        def round_(r):
            sched.post_batch(0.009, deliver, argss)
    else:
        def round_(r):
            for i in range(fan):
                sched.call_after(0.009, deliver, i)
    for r in range(rounds):
        sched.call_at(r * 0.02, round_, r)
    sched.run()
    if modern:
        # The batched-post counter moves once per cohort entry — on
        # both kernels (the reference shim keeps parity).
        assert sched.batched_posted == rounds * fan, (
            f"batched_posted {sched.batched_posted} != {rounds * fan}")
    return sched.events_processed


def _best_of(fn, rounds=3):
    best = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best


def _record(benchmark, run_new, run_ref, events):
    """Time new vs reference inline, attach throughput numbers."""
    new_s = _best_of(run_new)
    ref_s = _best_of(run_ref)
    benchmark.extra_info.update({
        "events": events,
        "events_per_sec": round(events / new_s),
        "reference_events_per_sec": round(events / ref_s),
        "speedup_vs_reference": round(ref_s / new_s, 2),
    })
    return new_s, ref_s


def test_sched_timer_churn(benchmark):
    events = benchmark.pedantic(run_timer_churn, args=(Scheduler,),
                                rounds=3, iterations=1)
    _record(benchmark, lambda: run_timer_churn(Scheduler),
            lambda: run_timer_churn(ReferenceScheduler), events)
    assert events >= TARGET_EVENTS
    assert run_timer_churn(ReferenceScheduler) == events


def test_sched_cancel_heavy(benchmark):
    events = benchmark.pedantic(run_cancel_heavy, args=(Scheduler,),
                                rounds=3, iterations=1)
    _record(benchmark, lambda: run_cancel_heavy(Scheduler),
            lambda: run_cancel_heavy(ReferenceScheduler), events)
    assert events >= TARGET_EVENTS
    assert run_cancel_heavy(ReferenceScheduler) == events


def test_sched_reschedule_heavy(benchmark):
    events = benchmark.pedantic(run_reschedule_heavy, args=(Scheduler,),
                                rounds=3, iterations=1)
    _record(benchmark, lambda: run_reschedule_heavy(Scheduler),
            lambda: run_reschedule_heavy(ReferenceScheduler), events)
    assert events >= TARGET_EVENTS
    assert run_reschedule_heavy(ReferenceScheduler) == events


def test_sched_farm_churn(benchmark):
    """Gateway-farm steady state: the modern API must beat the
    pre-overhaul idiom on the identical simulation."""
    events = benchmark.pedantic(run_farm_churn, args=(Scheduler, True),
                                rounds=3, iterations=1)
    new_s, ref_s = _record(
        benchmark, lambda: run_farm_churn(Scheduler, True),
        lambda: run_farm_churn(ReferenceScheduler, False), events)
    assert events == TARGET_EVENTS
    # Modest floor: this mix is dominated by per-event callback work
    # (the Amdahl floor), so the kernel win is real but bounded.
    assert ref_s / new_s >= 1.2, (
        f"farm-churn regressed to {ref_s / new_s:.2f}x vs reference "
        f"({events / ref_s:,.0f} -> {events / new_s:,.0f} events/sec)")


def test_sched_broadcast_fanout(benchmark):
    """The headline: >=5x events/sec over the pre-overhaul kernel on
    same-time delivery cohorts (the batched cohort push + pop path)."""
    events = benchmark.pedantic(run_broadcast_fanout,
                                args=(Scheduler, True),
                                rounds=3, iterations=1)
    new_s, ref_s = _record(
        benchmark, lambda: run_broadcast_fanout(Scheduler, True),
        lambda: run_broadcast_fanout(ReferenceScheduler, False), events)
    assert events == 60_100  # 100 rounds x 600 fan + 100 round events
    assert run_broadcast_fanout(ReferenceScheduler, False) == events
    speedup = ref_s / new_s
    assert speedup >= 5.0, (
        f"broadcast fan-out speedup {speedup:.2f}x below the 5x "
        f"acceptance bar "
        f"({events / ref_s:,.0f} -> {events / new_s:,.0f} events/sec)")
