"""Integration tests: multiple fault tolerance domains (paper Figure 1)."""

import pytest

from repro import FtClientLayer, Orb, ReplicationStyle, World
from repro.apps import (
    QUOTE_INTERFACE,
    QuoteServant,
    SETTLEMENT_INTERFACE,
    SettlementServant,
    TRADING_INTERFACE,
    TradingDeskServant,
)
from repro.sim import LatencyModel


def build_two_domains(world, la_gateways=1, ny_gateways=1):
    """New York (trading) + Los Angeles (settlement), as in Figure 1."""
    la = None
    from repro import FaultToleranceDomain
    la = FaultToleranceDomain(world, "la", num_hosts=3)
    for _ in range(la_gateways):
        la.add_gateway(port=2809)
    settlement = la.create_group("Settlement", SETTLEMENT_INTERFACE,
                                 SettlementServant,
                                 style=ReplicationStyle.ACTIVE)
    la.await_stable()
    la.await_ready(settlement)
    settlement_ior = la.ior_for(settlement).to_string()

    ny = FaultToleranceDomain(world, "ny", num_hosts=3)
    for _ in range(ny_gateways):
        ny.add_gateway(port=2809)
    ny.register_interface(SETTLEMENT_INTERFACE)
    quotes = ny.create_group("Quotes", QUOTE_INTERFACE,
                             lambda: QuoteServant({"ACME": 1500, "INITECH": 300}),
                             style=ReplicationStyle.ACTIVE)
    desk = ny.create_group(
        "Desk", TRADING_INTERFACE,
        lambda: TradingDeskServant(quote_group="Quotes",
                                   settlement_target=settlement_ior,
                                   settlement_interface="Settlement"),
        style=ReplicationStyle.ACTIVE)
    ny.await_stable()
    return la, ny, settlement, quotes, desk


def sb_customer(world, ny, desk):
    browser = world.add_host("sb-browser")
    orb = Orb(world, browser, request_timeout=None)
    layer = FtClientLayer(orb)
    stub = layer.string_to_object(ny.ior_for(desk).to_string(),
                                  TRADING_INTERFACE)
    return stub, layer


def test_customer_order_crosses_both_domains(world):
    la, ny, settlement, quotes, desk = build_two_domains(world)
    stub, _ = sb_customer(world, ny, desk)
    assert world.await_promise(stub.call("buy", "alice", "ACME", 100),
                               timeout=600) == 100
    assert world.await_promise(la.invoke(settlement, "settled_count", []),
                               timeout=240) == 1


def test_settlement_executes_exactly_once_despite_desk_replication(world):
    """Three desk replicas each reach out to LA; the LA gateway's
    duplicate detection admits one settlement."""
    la, ny, settlement, quotes, desk = build_two_domains(world)
    stub, _ = sb_customer(world, ny, desk)
    world.await_promise(stub.call("buy", "alice", "ACME", 10), timeout=600)
    world.await_promise(stub.call("buy", "alice", "INITECH", 5), timeout=600)
    world.run(until=world.now + 1.0)
    for rm in la.rms.values():
        record = rm.replicas.get(settlement.group_id)
        if record is not None:
            assert record.servant.settled_count() == 2


def test_desk_replicas_agree_on_positions(world):
    la, ny, settlement, quotes, desk = build_two_domains(world)
    stub, _ = sb_customer(world, ny, desk)
    world.await_promise(stub.call("buy", "alice", "ACME", 100), timeout=600)
    world.await_promise(stub.call("sell", "alice", "ACME", 30), timeout=600)
    positions = set()
    for rm in ny.rms.values():
        record = rm.replicas.get(desk.group_id)
        if record is not None:
            positions.add(record.servant.positions["alice:ACME"])
    assert positions == {70}


def test_egress_failover_when_ny_primary_host_crashes(world):
    """The desk group's egress host dies mid-operation; another replica
    host takes over the outstanding cross-domain call and LA's dedup
    keeps settlement exactly-once."""
    la, ny, settlement, quotes, desk = build_two_domains(world)
    stub, _ = sb_customer(world, ny, desk)
    world.await_promise(stub.call("buy", "alice", "ACME", 1), timeout=600)

    egress_host = desk.info().primary(ny.coordinator_rm().live_hosts)
    promise = stub.call("buy", "alice", "ACME", 2)
    # Crash the egress host once the parent invocation is in flight.
    world.scheduler.call_after(0.06, lambda: world.faults.crash_now(egress_host))
    assert world.await_promise(promise, timeout=600) == 3
    world.run(until=world.now + 1.0)
    counts = set()
    for rm in la.rms.values():
        record = rm.replicas.get(settlement.group_id)
        if record is not None:
            counts.add(record.servant.settled_count())
    assert counts == {2}


def test_la_gateway_crash_survived_by_redundant_gateway(world):
    la, ny, settlement, quotes, desk = build_two_domains(world, la_gateways=2)
    stub, _ = sb_customer(world, ny, desk)
    world.await_promise(stub.call("buy", "alice", "ACME", 1), timeout=600)
    world.faults.crash_now(la.gateways[0].host.name)
    assert world.await_promise(stub.call("buy", "alice", "ACME", 2),
                               timeout=600) == 3
    assert world.await_promise(la.invoke(settlement, "settled_count", []),
                               timeout=240) == 2


def test_wide_area_latency_separates_domains(world):
    """Figure 1's wide-area separation: intra-domain traffic is LAN-fast,
    cross-domain operations pay WAN latency."""
    la, ny, settlement, quotes, desk = build_two_domains(world)
    stub, _ = sb_customer(world, ny, desk)
    t0 = world.now
    world.await_promise(stub.call("position", "alice", "ACME"), timeout=600)
    local_elapsed = world.now - t0
    t0 = world.now
    world.await_promise(stub.call("buy", "alice", "ACME", 1), timeout=600)
    cross_elapsed = world.now - t0
    # A buy crosses to LA and back: at least one extra WAN round trip.
    assert cross_elapsed > local_elapsed + 0.06
