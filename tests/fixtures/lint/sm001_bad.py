# reprolint: module=repro.sim.fixture_sm
"""SM001 bad: dispatches over state classes that miss members."""

import enum


class Phase(enum.Enum):
    GATHER = "gather"
    COMMIT = "commit"
    OPERATIONAL = "operational"


class Valve:
    OPEN = "open"
    CLOSED = "closed"
    HALF = "half"


def describe(phase):
    # Misses Phase.OPERATIONAL and has no else.
    if phase is Phase.GATHER:
        return "gathering"
    elif phase is Phase.COMMIT:
        return "committing"
    return "?"


def flip(state):
    # The plain-class (CLOSED = "closed") convention: misses Valve.HALF.
    if state == Valve.OPEN:
        return Valve.CLOSED
    elif state == Valve.CLOSED:
        return Valve.OPEN
    return state


def _on_gather(msg):
    return msg


def _on_commit(msg):
    return msg


# Handler table misses Phase.OPERATIONAL.
HANDLERS = {
    Phase.GATHER: _on_gather,
    Phase.COMMIT: _on_commit,
}
