"""Workload generators for the benchmark harness.

Three load models over any stub-like object:

* :func:`closed_loop` — a fixed population of clients, each issuing the
  next request when the previous reply arrives (optionally after think
  time).  Models the paper's interactive browser users.
* :func:`open_loop` — requests arrive by a seeded stochastic process
  (exponential, or a heavy-tailed alternative) regardless of
  completions.  Models aggregate internet traffic hitting a gateway.
* :func:`farm_open_loop` — the gateway-farm workload: 10^5-10^6
  *logical* clients, each arrival belonging to its own client identity,
  with the whole arrival schedule precomputed from one seed and
  injected through :meth:`Scheduler.post_batch` cohorts (hundreds of
  bulk posts instead of one timer per arrival).

All models draw every random number from a seeded ``random.Random`` —
the same seed reproduces the same schedule byte for byte.
:func:`percentiles` summarises recorded latencies.
"""

from __future__ import annotations

import math
import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import CorbaSystemException
from repro.sim.world import Promise, World

Op = Tuple[str, tuple]  # (operation name, args)

#: Heavy-tail cap: bounded-Pareto samples are clamped at this multiple
#: of the mean, so one astronomical gap cannot stall a finite run.
PARETO_CAP_MEANS = 50.0


def interarrival_sampler(rng: random.Random, mean: float,
                         distribution: str = "exponential",
                         ) -> Callable[[], float]:
    """A zero-arg sampler of inter-arrival gaps with the given mean.

    ``exponential`` is the Poisson process; ``lognormal`` (sigma=1,
    mean-matched) and ``pareto`` (alpha=1.5 bounded Pareto, clamped at
    :data:`PARETO_CAP_MEANS` means) model the bursty, heavy-tailed
    arrival processes of aggregate internet traffic.
    """
    if distribution == "exponential":
        rate = 1.0 / mean
        return lambda: rng.expovariate(rate)
    if distribution == "lognormal":
        sigma = 1.0
        mu = math.log(mean) - sigma * sigma / 2.0
        return lambda: rng.lognormvariate(mu, sigma)
    if distribution == "pareto":
        alpha = 1.5
        xmin = mean * (alpha - 1.0) / alpha
        cap = mean * PARETO_CAP_MEANS
        return lambda: min(cap, xmin * rng.paretovariate(alpha))
    raise ValueError(f"unknown inter-arrival distribution {distribution!r}")


def is_shed(exc: Exception) -> bool:
    """Was this failure an admission-control shed (TRANSIENT)?"""
    return (isinstance(exc, CorbaSystemException)
            and "Transient" in str(exc))


def closed_loop(
    world: World,
    stubs: Sequence[Any],
    operations: int,
    mix: Callable[[random.Random, int], Op],
    think_time: float = 0.0,
    seed: int = 0,
    timeout: float = 600.0,
) -> List[float]:
    """Run ``operations`` requests per stub, each stub sequentially.

    Returns the list of per-request simulated latencies.
    """
    rng = random.Random(seed)
    latencies: List[float] = []
    done_flags = {"remaining": len(stubs) * operations}

    def issue(stub, remaining: int) -> None:
        if remaining == 0:
            return
        name, args = mix(rng, remaining)
        started = world.now
        promise = stub.call(name, *args)

        def on_done(p: Promise) -> None:
            latencies.append(world.now - started)
            done_flags["remaining"] -= 1
            if remaining > 1:
                if think_time > 0:
                    world.scheduler.call_after(
                        think_time, issue, stub, remaining - 1)
                else:
                    issue(stub, remaining - 1)

        promise.on_done(on_done)

    for stub in stubs:
        issue(stub, operations)
    world.scheduler.run_until(lambda: done_flags["remaining"] == 0,
                              timeout=timeout)
    return latencies


def open_loop(
    world: World,
    stub: Any,
    rate_per_s: float,
    duration_s: float,
    mix: Callable[[random.Random, int], Op],
    seed: int = 0,
    timeout: float = 600.0,
    interarrival: str = "exponential",
    stub_for: Optional[Callable[[int], Any]] = None,
) -> List[float]:
    """Issue requests with seeded stochastic inter-arrival times for
    ``duration_s`` of simulated time; wait for all completions.

    ``interarrival`` selects the gap distribution (see
    :func:`interarrival_sampler`).  ``stub_for(i)`` — when given —
    picks the stub for the i-th arrival, letting one open-loop process
    multiplex many logical client identities (each stub carrying its
    own); without it every arrival goes through ``stub``.
    """
    rng = random.Random(seed)
    gap = interarrival_sampler(rng, 1.0 / rate_per_s, interarrival)
    latencies: List[float] = []
    state = {"issued": 0, "completed": 0, "closed": False}
    deadline = world.now + duration_s

    def arrive() -> None:
        if world.now >= deadline:
            state["closed"] = True
            return
        index = state["issued"]
        target = stub_for(index) if stub_for is not None else stub
        name, args = mix(rng, index)
        state["issued"] += 1
        started = world.now
        promise = target.call(name, *args)

        def on_done(p: Promise) -> None:
            latencies.append(world.now - started)
            state["completed"] += 1

        promise.on_done(on_done)
        world.scheduler.call_after(gap(), arrive)

    arrive()
    world.scheduler.run_until(
        lambda: state["closed"] and state["completed"] == state["issued"],
        timeout=timeout)
    return latencies


def farm_open_loop(
    world: World,
    make_stub: Callable[[int], Any],
    arrivals: int,
    rate_per_s: float,
    mix: Callable[[random.Random, int], Op],
    seed: int = 0,
    interarrival: str = "exponential",
    cohort_quantum: float = 0.002,
    timeout: float = 600.0,
) -> Dict[str, Any]:
    """The gateway-farm workload: a precomputed open-loop schedule at
    farm scale, injected through the scheduler's bulk cohort path.

    The whole arrival schedule (``arrivals`` gaps from one seeded
    sampler) is computed up front, quantised into ``cohort_quantum``
    buckets, and each bucket is injected with one
    :meth:`Scheduler.post_batch` call — so 10^5-10^6 arrivals cost
    hundreds of bulk posts, not a timer apiece, while preserving
    per-arrival event granularity and deterministic ordering.

    ``make_stub(i)`` builds (or reuses) the stub for the i-th arrival —
    the seam where logical-client identity multiplexing plugs in: a
    farm driver derives ``uid = f"farm/{i % num_clients}"`` and returns
    a multiplexed stub stamped with that identity.

    Returns a summary dict: per-request ``latencies`` of served
    requests, counts of ``served``/``shed``/``failed`` arrivals (shed =
    admission-control TRANSIENT, the farm's lost offered load), and the
    ``span`` from first arrival to last served completion.
    """
    rng = random.Random(seed)
    gap = interarrival_sampler(rng, 1.0 / rate_per_s, interarrival)
    offsets: List[float] = []
    at = 0.0
    for _ in range(arrivals):
        at += gap()
        offsets.append(at)
    cohorts: Dict[int, List[tuple]] = {}
    for i, offset in enumerate(offsets):
        cohorts.setdefault(int(offset / cohort_quantum), []).append((i,))

    started_at = world.now
    latencies: List[float] = []
    state = {"served": 0, "shed": 0, "failed": 0, "last": started_at}

    def fire(i: int) -> None:
        stub = make_stub(i)
        name, args = mix(rng, i)
        started = world.now
        promise = stub.call(name, *args)

        def on_done(p: Promise) -> None:
            if p.failed:
                state["shed" if is_shed(p.error) else "failed"] += 1
                return
            latencies.append(world.now - started)
            state["served"] += 1
            state["last"] = world.now

        promise.on_done(on_done)

    post_batch = world.scheduler.post_batch
    for slot in sorted(cohorts):
        post_batch(slot * cohort_quantum, fire, cohorts[slot])

    world.scheduler.run_until(
        lambda: (state["served"] + state["shed"] + state["failed"]
                 == arrivals),
        timeout=timeout)
    return {
        "latencies": latencies,
        "served": state["served"],
        "shed": state["shed"],
        "failed": state["failed"],
        "arrivals": arrivals,
        "span": state["last"] - started_at,
    }


def percentiles(samples: Sequence[float],
                points: Sequence[float] = (50, 95, 99)) -> Dict[str, float]:
    """Nearest-rank percentiles plus mean, rounded for reporting."""
    if not samples:
        return {}
    ordered = sorted(samples)
    result = {"mean": round(sum(ordered) / len(ordered), 5),
              "count": len(ordered)}
    for point in points:
        index = min(len(ordered) - 1,
                    max(0, int(round(point / 100.0 * len(ordered))) - 1))
        result[f"p{int(point)}"] = round(ordered[index], 5)
    return result


def write_heavy(rng: random.Random, _i: int) -> Op:
    return ("increment", (1,))


def read_mostly(rng: random.Random, _i: int) -> Op:
    return ("value", ()) if rng.random() < 0.9 else ("increment", (1,))
