"""Edge-case tests for the Totem protocol machinery."""

import pytest

from repro.sim import World
from repro.totem import (
    CommitMessage,
    JoinMessage,
    RegularMessage,
    Token,
    TotemConfig,
    TotemMember,
    TotemTransport,
)


def build(world, count, config=None):
    transport = TotemTransport(world.network, "d")
    members, delivered = [], {}
    for i in range(count):
        host = world.add_host(f"m{i}", site="lan")
        member = TotemMember(host, f"m{i}", transport, config=config)
        delivered[member.name] = []
        member.on_deliver(lambda seq, snd, p, n=member.name:
                          delivered[n].append(p))
        members.append(member)
    for member in members:
        member.start()
    world.scheduler.run_until(
        lambda: all(m.state == TotemMember.OPERATIONAL and
                    len(m.members) == count for m in members), timeout=30.0)
    return transport, members, delivered


def test_leader_crash_during_operation_reforms_without_it(world):
    transport, members, delivered = build(world, 3)
    leader = members[0]          # lowest name leads the ring
    assert leader.members[0] == leader.name
    world.faults.crash_now(leader.name)
    world.scheduler.run_until(
        lambda: all(m.state == TotemMember.OPERATIONAL and
                    set(m.members) == {"m1", "m2"} for m in members[1:]),
        timeout=30.0)
    members[1].multicast("after-leader-death")
    world.scheduler.run_until(
        lambda: "after-leader-death" in delivered["m2"], timeout=30.0)


def test_cascading_crashes_down_to_singleton(world):
    transport, members, delivered = build(world, 3)
    world.faults.crash_now("m1")
    world.scheduler.run_until(
        lambda: set(members[0].members) == {"m0", "m2"} and
        members[0].state == TotemMember.OPERATIONAL, timeout=30.0)
    world.faults.crash_now("m2")
    world.scheduler.run_until(
        lambda: members[0].members == ("m0",) and
        members[0].state == TotemMember.OPERATIONAL, timeout=30.0)
    members[0].multicast("alone")
    world.scheduler.run_until(lambda: "alone" in delivered["m0"],
                              timeout=30.0)


def test_stale_ring_traffic_is_ignored(world):
    transport, members, delivered = build(world, 2)
    stale = RegularMessage(ring_id=(0, "ghost"), seq=999, sender="ghost",
                           payload="stale")
    members[0].receive(stale)
    world.run(until=world.now + 0.5)
    assert "stale" not in delivered["m0"]


def test_stale_commit_is_ignored(world):
    transport, members, delivered = build(world, 2)
    current_ring = members[0].ring_id
    stale_commit = CommitMessage(ring_id=(0, "ghost"), members=("m0",),
                                 start_seq=0, leader="ghost")
    members[0].receive(stale_commit)
    world.run(until=world.now + 0.2)
    assert members[0].ring_id == current_ring
    assert set(members[0].members) == {"m0", "m1"}


def test_duplicate_regular_messages_are_dropped(world):
    transport, members, delivered = build(world, 2)
    members[0].multicast("once")
    world.scheduler.run_until(lambda: "once" in delivered["m1"], timeout=30.0)
    # Replay the exact message (as a retransmission would).
    replay = RegularMessage(ring_id=members[1].ring_id,
                            seq=members[1].delivered_up_to,
                            sender="m0", payload="once")
    members[1].receive(replay)
    world.run(until=world.now + 0.2)
    assert delivered["m1"].count("once") == 1


def test_flow_control_quota_respected_per_token_visit(world):
    config = TotemConfig(max_messages_per_token=3)
    transport, members, delivered = build(world, 2, config=config)
    for i in range(10):
        members[0].multicast(i)
    # Shortly after, the pending queue drains in visits of <= 3.
    assert members[0].pending_count == 10
    world.scheduler.run_until(lambda: len(delivered["m1"]) == 10,
                              timeout=60.0)
    assert delivered["m1"] == list(range(10))


def test_stability_aru_garbage_collects_store(world):
    transport, members, delivered = build(world, 3)
    for i in range(20):
        members[0].multicast(i)
    world.scheduler.run_until(
        lambda: all(len(delivered[m.name]) == 20 for m in members),
        timeout=60.0)
    # Give the token a few more rotations to advance aru and GC.
    world.run(until=world.now + 0.1)
    for member in members:
        assert len(member._store) < 20


def test_member_stats_track_protocol_activity(world):
    transport, members, delivered = build(world, 3)
    members[0].multicast("x")
    world.scheduler.run_until(lambda: "x" in delivered["m2"], timeout=30.0)
    assert members[0].stats["sent"] == 1
    assert all(m.stats["delivered"] == 1 for m in members)
    assert all(m.stats["reformations"] >= 1 for m in members)
    assert members[0].stats["token_passes"] > 0


def test_transport_accounting(world):
    transport, members, delivered = build(world, 2)
    before = transport.broadcasts
    members[0].multicast("x")
    world.scheduler.run_until(lambda: "x" in delivered["m1"], timeout=30.0)
    assert transport.broadcasts == before + 1
    assert transport.datagrams > 0


def test_join_from_unknown_process_triggers_reformation(world):
    transport, members, delivered = build(world, 2)
    old_ring = members[0].ring_id
    # A new processor starts and joins.
    host = world.add_host("m9", site="lan")
    joiner = TotemMember(host, "m9", transport)
    joiner.start()
    world.scheduler.run_until(
        lambda: all(set(m.members) == {"m0", "m1", "m9"}
                    for m in members + [joiner]), timeout=30.0)
    assert members[0].ring_id != old_ring
