"""Group identifiers and object-key naming within fault tolerance domains.

Every replicated object group has a numeric group identifier, unique
within its domain (paper section 3: "each replicated object is assigned
a unique object group identifier").  The object key that Eternal places
into published IORs encodes the domain name and the group id, so a
gateway can recover the target server group from the object key of any
incoming IIOP request (section 3.1: "by extracting the server's object
key ... the gateway identifies the target server").
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import MarshalError

# Reserved group ids.
EXTERNAL_GROUP = 0          # pseudo-group for traffic from outside the domain
GATEWAY_GROUP = 1           # the domain's gateway group
REPLICATION_MANAGER_GROUP = 2
RESOURCE_MANAGER_GROUP = 3
EVOLUTION_MANAGER_GROUP = 4
FIRST_APPLICATION_GROUP = 10

_KEY_PREFIX = "ftdomain"


def make_object_key(domain_name: str, group_id: int) -> bytes:
    """Object key naming a replicated group: ``ftdomain/<name>/<gid>``."""
    if "/" in domain_name:
        raise MarshalError(f"domain name may not contain '/': {domain_name!r}")
    return f"{_KEY_PREFIX}/{domain_name}/{group_id}".encode("ascii")


def parse_object_key(key: bytes) -> Optional[Tuple[str, int]]:
    """Inverse of :func:`make_object_key`; None for foreign keys."""
    try:
        text = key.decode("ascii")
    except UnicodeDecodeError:
        return None
    parts = text.split("/")
    if len(parts) != 3 or parts[0] != _KEY_PREFIX:
        return None
    try:
        return parts[1], int(parts[2])
    except ValueError:
        return None
