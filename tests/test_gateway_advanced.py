"""Advanced gateway scenarios: oneway traffic, passive failover behind
the gateway, voting under replica failure."""

import pytest

from repro import ReplicationStyle, Servant, World
from repro.iiop import TC_LONG, TC_STRING, TC_VOID
from repro.orb import Interface, Operation, Param

from tests.helpers import (
    external_client,
    make_counter_group,
    make_domain,
    replica_counts,
)

EVENTS = Interface("EventSink", [
    Operation("emit", [Param("note", TC_STRING)], TC_VOID, oneway=True),
    Operation("count", [], TC_LONG),
])


class EventSinkServant(Servant):
    interface = EVENTS

    def __init__(self):
        self.notes = []

    def emit(self, note):
        self.notes.append(note)

    def count(self):
        return len(self.notes)


def test_oneway_through_gateway_executes_everywhere(world):
    domain = make_domain(world, gateways=1)
    group = domain.create_group("Events", EVENTS, EventSinkServant)
    _, stub, _ = external_client(world, domain, group)
    promise = stub.call("emit", "fire-and-forget")
    assert promise.done  # oneway resolves immediately at the client
    world.run(until=world.now + 1.0)
    # Delivered to, and applied at, every replica — without any reply.
    for rm in domain.rms.values():
        record = rm.replicas.get(group.group_id)
        if record is not None:
            assert record.servant.notes == ["fire-and-forget"]
    gateway = domain.gateways[0]
    assert gateway.stats["responses_delivered"] == 0


def test_oneway_then_twoway_ordering_preserved(world):
    domain = make_domain(world, gateways=1)
    group = domain.create_group("Events", EVENTS, EventSinkServant)
    _, stub, _ = external_client(world, domain, group)
    stub.call("emit", "a")
    stub.call("emit", "b")
    assert world.await_promise(stub.call("count"), timeout=600) == 2


def test_warm_passive_primary_crash_behind_gateway(world):
    """The client never learns that the primary executing its request
    died: the new primary's replay re-multicasts the response and the
    gateway delivers it."""
    domain = make_domain(world, num_hosts=4, gateways=1)
    group = make_counter_group(domain, style=ReplicationStyle.WARM_PASSIVE,
                               replicas=3, min_replicas=2)
    domain.await_ready(group)
    _, stub, _ = external_client(world, domain, group)
    world.await_promise(stub.call("increment", 1), timeout=600)

    primary = group.info().primary(domain.coordinator_rm().live_hosts)
    primary_rm = domain.rms[primary]
    # Crash the primary at the instant it would multicast the response.
    original_respond = primary_rm._respond

    def crash_instead(invocation, reply):
        world.faults.crash_now(primary)

    primary_rm._respond = crash_instead
    result = world.await_promise(stub.call("increment", 10), timeout=600)
    assert result == 11
    world.run(until=world.now + 1.0)
    assert set(replica_counts(domain, group).values()) == {11}


def test_voting_continues_when_replica_dies_mid_stream(world):
    domain = make_domain(world, num_hosts=4, gateways=1)
    group = make_counter_group(domain,
                               style=ReplicationStyle.ACTIVE_WITH_VOTING,
                               replicas=3, min_replicas=2)
    domain.await_ready(group)
    _, stub, _ = external_client(world, domain, group)
    assert world.await_promise(stub.call("increment", 1), timeout=600) == 1
    world.faults.crash_now(group.info().placement[0])
    # Two replicas remain: majority of 2 is still reachable.
    assert world.await_promise(stub.call("increment", 1), timeout=600) == 2


def test_client_layer_shares_identity_across_stubs(world):
    from repro import FtClientLayer, Orb
    domain = make_domain(world, gateways=1)
    a = make_counter_group(domain, name="A")
    b = make_counter_group(domain, name="B")
    host = world.add_host("browser")
    orb = Orb(world, host, request_timeout=None)
    layer = FtClientLayer(orb, client_uid="shared/identity")
    stub_a = layer.string_to_object(domain.ior_for(a).to_string(),
                                    a.interface)
    stub_b = layer.string_to_object(domain.ior_for(b).to_string(),
                                    b.interface)
    world.await_promise(stub_a.call("increment", 1), timeout=600)
    world.await_promise(stub_b.call("increment", 2), timeout=600)
    gateway = domain.gateways[0]
    uids = {cid for cid in gateway._routing if isinstance(cid, str)}
    assert uids == {"shared/identity#1"}
