"""Deterministic discrete-event simulation substrate.

The paper's testbed (Solaris/Linux processors on a LAN, TCP/IP to the
outside) is replaced by this package: a single-threaded event scheduler,
simulated hosts and processes with fail-stop semantics, a latency-aware
datagram network with partitions, and a TCP-like reliable byte-stream
layer with listen/accept/close.  See DESIGN.md section 2 for why this
substitution preserves the behaviour the paper depends on.
"""

from .faults import FaultInjector
from .host import Host, Process
from .network import LatencyModel, Network
from .reference_scheduler import ReferenceScheduler, ReferenceTimer
from .scheduler import Scheduler, Timer
from .tcp import TcpEndpoint, TcpListener, TcpStack
from .trace import TraceRecord, Tracer
from .world import Promise, SchedulerLike, World

__all__ = [
    "FaultInjector",
    "Host",
    "LatencyModel",
    "Network",
    "Process",
    "Promise",
    "ReferenceScheduler",
    "ReferenceTimer",
    "Scheduler",
    "SchedulerLike",
    "TcpEndpoint",
    "TcpListener",
    "TcpStack",
    "Timer",
    "TraceRecord",
    "Tracer",
    "World",
]
