"""Tests for the FaultDetector and FaultToleranceProperties."""

import pytest

from repro import ReplicationStyle, Servant, World
from repro.apps import COUNTER_INTERFACE, CounterServant
from repro.errors import ConfigurationError
from repro.eternal import FaultToleranceProperties
from repro.eternal.properties import CONSISTENCY_STYLE, MEMBERSHIP_STYLE

from tests.helpers import make_domain, replica_counts


class MonitoredCounter(CounterServant):
    """A counter whose health can be toggled from outside."""

    def __init__(self):
        super().__init__()
        self.healthy = True

    def health_check(self):
        return self.healthy


# ----------------------------------------------------------------------
# FaultDetector
# ----------------------------------------------------------------------

def test_unhealthy_replica_is_removed_and_replaced(world):
    domain = make_domain(world, num_hosts=4)
    group = domain.create_group("Mon", COUNTER_INTERFACE, MonitoredCounter,
                                num_replicas=3, min_replicas=3)
    world.await_promise(group.invoke("increment", 6))
    victim = group.info().placement[1]
    # Poison one replica: processor stays up, object is sick.
    sick_servant = domain.rms[victim].replicas[group.group_id].servant
    sick_servant.healthy = False
    world.run(until=world.now + 3.0)
    info = group.info()
    assert len(info.placement) == 3            # degree restored by the RM
    detector = domain.fault_detectors[victim]
    assert detector.stats["faults_detected"] == 1
    # Wherever the replacement landed (possibly the same host), it is a
    # FRESH servant rebuilt from a healthy replica's state.
    for host_name in info.placement:
        record = domain.rms[host_name].replicas[group.group_id]
        assert record.servant is not sick_servant
        assert record.servant.count == 6
        assert record.servant.healthy is True
    # Group still serves, consistently.
    assert world.await_promise(group.invoke("increment", 1)) == 7


def test_health_check_exception_counts_as_fault(world):
    class Exploding(CounterServant):
        def __init__(self):
            super().__init__()
            self.boom = False

        def health_check(self):
            if self.boom:
                raise RuntimeError("internal invariant violated")
            return True

    domain = make_domain(world, num_hosts=4)
    group = domain.create_group("Expl", COUNTER_INTERFACE, Exploding,
                                num_replicas=3, min_replicas=2)
    world.await_promise(group.invoke("increment", 1))
    victim = group.info().placement[0]
    domain.rms[victim].replicas[group.group_id].servant.boom = True
    world.run(until=world.now + 2.0)
    assert victim not in group.info().placement


def test_servants_without_health_check_are_not_probed(world):
    domain = make_domain(world, num_hosts=3)
    group = domain.create_group("Plain", COUNTER_INTERFACE, CounterServant)
    world.await_promise(group.invoke("increment", 1))
    world.run(until=world.now + 2.0)
    for detector in domain.fault_detectors.values():
        assert detector.stats["faults_detected"] == 0
    assert len(group.info().placement) == 3


def test_healthy_replicas_stay_put(world):
    domain = make_domain(world, num_hosts=3)
    group = domain.create_group("Mon", COUNTER_INTERFACE, MonitoredCounter)
    world.await_promise(group.invoke("increment", 1))
    placement_before = group.info().placement
    world.run(until=world.now + 3.0)
    assert group.info().placement == placement_before
    probes = sum(d.stats["probes"] for d in domain.fault_detectors.values())
    assert probes > 0


# ----------------------------------------------------------------------
# FaultToleranceProperties
# ----------------------------------------------------------------------

def test_properties_roundtrip():
    props = FaultToleranceProperties(
        replication_style=ReplicationStyle.WARM_PASSIVE,
        initial_number_replicas=4, minimum_number_replicas=2,
        checkpoint_interval=7)
    wire = props.to_properties()
    assert wire["org.omg.ft.ReplicationStyle"] == "warm_passive"
    assert wire["org.omg.ft.ConsistencyStyle"] == CONSISTENCY_STYLE
    assert wire["org.omg.ft.MembershipStyle"] == MEMBERSHIP_STYLE
    assert FaultToleranceProperties.from_properties(wire) == props


def test_properties_validation():
    with pytest.raises(ConfigurationError):
        FaultToleranceProperties(initial_number_replicas=0)
    with pytest.raises(ConfigurationError):
        FaultToleranceProperties(initial_number_replicas=2,
                                 minimum_number_replicas=3)
    with pytest.raises(ConfigurationError):
        FaultToleranceProperties(checkpoint_interval=0)
    with pytest.raises(ConfigurationError):
        FaultToleranceProperties(
            replication_style=ReplicationStyle.ACTIVE_WITH_VOTING,
            initial_number_replicas=2)


def test_properties_reject_unknown_keys():
    with pytest.raises(ConfigurationError):
        FaultToleranceProperties.from_properties(
            {"org.omg.ft.Typo": "x"})


def test_properties_reject_foreign_styles():
    with pytest.raises(ConfigurationError):
        FaultToleranceProperties.from_properties(
            {"org.omg.ft.ConsistencyStyle": "CONS_APP_CTRL"})


def test_create_group_from_properties(world):
    domain = make_domain(world, num_hosts=4)
    props = FaultToleranceProperties(
        replication_style=ReplicationStyle.COLD_PASSIVE,
        initial_number_replicas=2, minimum_number_replicas=1,
        checkpoint_interval=3)
    group = domain.create_group("Props", COUNTER_INTERFACE, CounterServant,
                                properties=props)
    domain.await_ready(group)
    info = group.info()
    assert info.style is ReplicationStyle.COLD_PASSIVE
    assert len(info.placement) == 2
    assert info.min_replicas == 1
    assert info.checkpoint_interval == 3
    assert world.await_promise(group.invoke("increment", 2)) == 2
