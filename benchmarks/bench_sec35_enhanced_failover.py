"""E8 (section 3.5): redundant gateways + the enhanced client layer.

The paper's remedy for section 3.4: multi-profile IORs, gateway-group
request mirroring, unique client identifiers, reissue on failover.
Measured here:

* failover latency — simulated time from gateway crash to the client
  holding the response it was owed;
* exactly-once guarantee — replica state after the failover equals the
  state of a failure-free run;
* the cost of mirroring — extra multicasts per request with mirroring
  on vs off (the price of gateway-group recording).
"""

import pytest

from repro import World

from common import build_domain, counter_group, external_stub, replica_values


def crash_gateway_on_response(world, gateway):
    def crash_instead(_msg):
        world.faults.crash_now(gateway.host.name)
    gateway._on_domain_response = crash_instead


def run_failover(gateways=2):
    world = World(seed=350, trace=False)
    domain = build_domain(world, gateways=gateways, mirror=True)
    group = counter_group(domain)
    stub, layer = external_stub(world, domain, group, enhanced=True)
    world.await_promise(stub.call("increment", 1), timeout=600)
    crash_gateway_on_response(world, domain.gateways[0])
    t0 = world.now
    result = world.await_promise(stub.call("increment", 10), timeout=600)
    failover_latency = world.now - t0
    world.run(until=world.now + 1.0)
    values = set(replica_values(domain, group).values())
    return {
        "result": result,
        "replica_value": values.pop(),
        "failover_latency_s": round(failover_latency, 4),
        "failovers": len(layer.failover_log),
        "reissued": stub.requester.stats["reissued"],
    }


def test_sec35_transparent_failover_exactly_once(benchmark):
    row = benchmark.pedantic(run_failover, rounds=2, iterations=1)
    assert row["result"] == 11          # the client got its answer
    assert row["replica_value"] == 11   # and nothing executed twice
    assert row["failovers"] >= 1
    assert row["reissued"] >= 1
    benchmark.extra_info.update(row)


def test_sec35_failover_latency_bounded(benchmark):
    row = benchmark.pedantic(run_failover, rounds=2, iterations=1)
    # Shape: detection (TCP close notice) + reconnect + reissue + reply:
    # a handful of WAN round trips, not an unbounded outage.
    assert row["failover_latency_s"] < 1.0
    benchmark.extra_info.update(row)


@pytest.mark.parametrize("mirror", [False, True])
def test_sec35_mirroring_cost(benchmark, mirror):
    """Multicasts per client request, with and without gateway-group
    mirroring — the overhead section 3.5's guarantees are bought with."""

    def run():
        world = World(seed=351, trace=False)
        domain = build_domain(world, gateways=2, mirror=mirror)
        group = counter_group(domain)
        stub, _ = external_stub(world, domain, group, enhanced=True)
        world.await_promise(stub.call("increment", 1), timeout=600)
        transport = domain.transport
        before = transport.broadcasts
        for _ in range(10):
            world.await_promise(stub.call("increment", 1), timeout=600)
        world.run(until=world.now + 0.5)
        return {"broadcasts_per_request": (transport.broadcasts - before) / 10}

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({"mirror": mirror, **row})
    if mirror:
        # invocation + mirror + responses: strictly more than without.
        assert row["broadcasts_per_request"] >= 5
    else:
        assert row["broadcasts_per_request"] >= 4


def test_sec35_second_failover_also_survived(benchmark):
    def run():
        world = World(seed=352, trace=False)
        domain = build_domain(world, gateways=3, mirror=True)
        group = counter_group(domain)
        stub, layer = external_stub(world, domain, group, enhanced=True)
        world.await_promise(stub.call("increment", 1), timeout=600)
        world.faults.crash_now(domain.gateways[0].host.name)
        world.await_promise(stub.call("increment", 1), timeout=600)
        world.faults.crash_now(domain.gateways[1].host.name)
        result = world.await_promise(stub.call("increment", 1), timeout=600)
        return {"final": result, "failovers": len(layer.failover_log)}

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    assert row["final"] == 3
    assert row["failovers"] >= 2
    benchmark.extra_info.update(row)
