"""Operational status reporting for fault tolerance domains.

``domain_report`` assembles a structured snapshot of a running domain —
membership, per-group replica health, gateway statistics, traffic
counters — and ``format_report`` renders it for humans.  Examples and
operational tooling use this instead of poking at internals.
"""

from __future__ import annotations

from typing import Any, Dict, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .domain import FaultToleranceDomain


def domain_report(domain: "FaultToleranceDomain") -> Dict[str, Any]:
    """A structured snapshot of the domain's health and activity."""
    try:
        rm = domain.coordinator_rm()
    except Exception:
        return {"domain": domain.name, "alive": False}
    live = list(rm.live_hosts)
    groups = []
    for info in rm.registry.all_groups():
        ready = 0
        for host_name in info.placement:
            peer = domain.rms.get(host_name)
            if peer is None or not peer.alive:
                continue
            record = peer.replicas.get(info.group_id)
            if record is not None and record.ready:
                ready += 1
        groups.append({
            "group_id": info.group_id,
            "name": info.name,
            "style": info.style.value,
            "placement": list(info.placement),
            "ready_replicas": ready,
            "min_replicas": info.min_replicas,
            "healthy": ready >= info.min_replicas,
            "version": info.version,
            "primary": info.primary(live),
        })
    rm_totals: Dict[str, int] = {}
    for peer in domain.rms.values():
        for key, value in peer.stats.items():
            rm_totals[key] = rm_totals.get(key, 0) + value
    gateways = []
    for gateway in domain.gateways:
        gateways.append({
            "host": gateway.host.name,
            "port": gateway.port,
            "alive": gateway.alive,
            "mirror_requests": gateway.mirror_requests,
            "stats": {k: v for k, v in gateway.stats.items() if v},
        })
    return {
        "domain": domain.name,
        "alive": True,
        "live_hosts": live,
        "stable": domain.is_stable(),
        "groups": groups,
        "gateways": gateways,
        "replication_totals": {k: v for k, v in rm_totals.items() if v},
        "multicasts": domain.transport.broadcasts,
    }


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`domain_report`."""
    if not report.get("alive", False):
        return f"domain {report['domain']}: DOWN"
    lines = [
        f"domain {report['domain']}: "
        f"{'stable' if report['stable'] else 'UNSTABLE'}, "
        f"{len(report['live_hosts'])} live hosts, "
        f"{report['multicasts']} multicasts",
    ]
    for group in report["groups"]:
        health = "ok" if group["healthy"] else "DEGRADED"
        lines.append(
            f"  group {group['group_id']:>3} {group['name']:<28} "
            f"{group['style']:<18} {group['ready_replicas']}/"
            f"{len(group['placement'])} replicas [{health}] "
            f"primary={group['primary']}")
    for gateway in report["gateways"]:
        state = "up" if gateway["alive"] else "DOWN"
        lines.append(
            f"  gateway {gateway['host']}:{gateway['port']} [{state}] "
            f"{gateway['stats']}")
    return "\n".join(lines)
