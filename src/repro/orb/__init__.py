"""Miniature CORBA ORB: interfaces, servants, stubs, object adapter.

Stands in for the commercial ORBs of the paper's era.  Everything the
gateway depends on is real: stubs marshal invocations into GIOP bytes,
servers unmarshal and dispatch to servants, IORs carry the addressing.
The ``Requester`` seam lets the section 3.5 client-side interception
layer replace the default single-profile/no-failover behaviour.
"""

from .connection import IiopClientConnection, IiopServerConnection
from .dispatch import (
    decode_arguments,
    decode_result,
    encode_arguments,
    encode_result_body,
    reply_for_exception,
    reply_for_result,
    run_to_completion,
    start_invocation,
)
from .idl import Interface, Operation, Param
from .orb import ObjectAdapter, Orb, PlainRequester, Requester, Stub
from .servant import NestedCall, Servant

__all__ = [
    "IiopClientConnection",
    "IiopServerConnection",
    "Interface",
    "NestedCall",
    "ObjectAdapter",
    "Operation",
    "Orb",
    "Param",
    "PlainRequester",
    "Requester",
    "Servant",
    "Stub",
    "decode_arguments",
    "decode_result",
    "encode_arguments",
    "encode_result_body",
    "reply_for_exception",
    "reply_for_result",
    "run_to_completion",
    "start_invocation",
]
