"""Dynamic binding: servants resolving their dependencies by name.

CORBA-era applications bind at runtime through the naming service.
Here a replicated servant resolves a *cross-domain* target via its own
domain's replicated naming service (a nested invocation) and then
invokes it through the remote gateway (egress) — composing naming,
nesting, determinism and the gateway path in one flow.
"""

import pytest

from repro import NestedCall, ReplicationStyle, Servant, World
from repro.apps import SETTLEMENT_INTERFACE, SettlementServant
from repro.iiop import TC_LONG, TC_STRING
from repro.orb import Interface, Operation, Param

from tests.helpers import make_domain

FRONT = Interface("Front", [
    Operation("order", [Param("amount", TC_LONG)], TC_LONG),
])


class DynamicFrontServant(Servant):
    """Resolves 'Settlement' from naming on first use, then settles."""

    interface = FRONT

    def __init__(self):
        self.settlement_ior = ""

    def order(self, amount):
        if not self.settlement_ior:
            # Nested call to the replicated naming service: every
            # replica resolves at the same logical instant and caches
            # the same IOR string (deterministic state).
            self.settlement_ior = yield NestedCall(
                "EternalNaming", "resolve", ["Settlement"])
        count = yield NestedCall(self.settlement_ior, "settle",
                                 ["dynamic-order", amount],
                                 interface="Settlement")
        return count


def test_servant_resolves_cross_domain_target_via_naming(world):
    # Remote domain hosting the settlement group.
    remote = make_domain(world, name="remote", gateways=1)
    settlement = remote.create_group("Settlement", SETTLEMENT_INTERFACE,
                                     SettlementServant)
    remote.await_ready(settlement)

    # Local domain: naming holds the REMOTE object's IOR.
    local = make_domain(world, name="local", gateways=1)
    local.register_interface(SETTLEMENT_INTERFACE)
    local.enable_naming()
    world.await_promise(local.invoke(
        "EternalNaming", "bind",
        ["Settlement", remote.ior_for(settlement).to_string()]), timeout=600)

    front = local.create_group("Front", FRONT, DynamicFrontServant)
    assert world.await_promise(front.invoke("order", 100), timeout=600) == 1
    assert world.await_promise(front.invoke("order", 50), timeout=600) == 2
    world.run(until=world.now + 0.5)

    # Exactly-once at the remote side, and every local replica cached
    # the same resolved IOR.
    for rm in remote.rms.values():
        record = rm.replicas.get(settlement.group_id)
        if record is not None:
            assert record.servant.settled_count() == 2
    iors = set()
    for rm in local.rms.values():
        record = rm.replicas.get(front.group_id)
        if record is not None:
            iors.add(record.servant.settlement_ior)
    assert len(iors) == 1 and iors.pop().startswith("IOR:")


def test_rebinding_redirects_future_orders(world):
    """Operations teams repoint a name; servants that re-resolve pick up
    the new target (here: resolve on every order)."""

    class AlwaysResolve(Servant):
        interface = FRONT

        def order(self, amount):
            ior = yield NestedCall("EternalNaming", "resolve",
                                   ["Settlement"])
            count = yield NestedCall(ior, "settle", ["o", amount],
                                     interface="Settlement")
            return count

    remote_a = make_domain(world, name="ra", gateways=1)
    settle_a = remote_a.create_group("Settlement", SETTLEMENT_INTERFACE,
                                     SettlementServant)
    remote_a.await_ready(settle_a)
    remote_b = make_domain(world, name="rb", gateways=1)
    settle_b = remote_b.create_group("Settlement", SETTLEMENT_INTERFACE,
                                     SettlementServant)
    remote_b.await_ready(settle_b)

    local = make_domain(world, name="local", gateways=1)
    local.register_interface(SETTLEMENT_INTERFACE)
    local.enable_naming()
    world.await_promise(local.invoke(
        "EternalNaming", "rebind",
        ["Settlement", remote_a.ior_for(settle_a).to_string()]), timeout=600)
    front = local.create_group("Front", FRONT, AlwaysResolve)
    world.await_promise(front.invoke("order", 1), timeout=600)

    # Repoint the name to domain B; the next order lands there.
    world.await_promise(local.invoke(
        "EternalNaming", "rebind",
        ["Settlement", remote_b.ior_for(settle_b).to_string()]), timeout=600)
    world.await_promise(front.invoke("order", 2), timeout=600)
    world.run(until=world.now + 0.5)

    def settled(domain, group):
        for rm in domain.rms.values():
            record = rm.replicas.get(group.group_id)
            if record is not None:
                return record.servant.settled_count()

    assert settled(remote_a, settle_a) == 1
    assert settled(remote_b, settle_b) == 1
