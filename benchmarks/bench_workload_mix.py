"""E11 (extension): latency under realistic load models.

The paper's motivating deployment is many browser customers against one
gateway.  This extension experiment measures client-observed latency
percentiles under a closed-loop population and under an open-loop
arrival process, for write-heavy and read-mostly mixes — the
characterisation a downstream adopter needs for capacity planning.
"""

import pytest

from repro import World

from common import build_domain, counter_group, external_stub
from workloads import closed_loop, open_loop, percentiles, read_mostly, write_heavy


def build(seed, clients):
    world = World(seed=seed, trace=False)
    domain = build_domain(world, gateways=1)
    group = counter_group(domain)
    stubs = []
    for i in range(clients):
        stub, _ = external_stub(world, domain, group, enhanced=True,
                                host_name=f"client{i}")
        stubs.append(stub)
    return world, domain, group, stubs


@pytest.mark.parametrize("mix_name,mix", [("write_heavy", write_heavy),
                                          ("read_mostly", read_mostly)])
def test_closed_loop_population(benchmark, mix_name, mix):
    def run():
        world, domain, group, stubs = build(seed=42, clients=4)
        latencies = closed_loop(world, stubs, operations=6, mix=mix, seed=1)
        return percentiles(latencies)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    # Every request pays at least the WAN round trip; the tail stays
    # within a small multiple of it (no pathological queueing).
    assert stats["p50"] >= 0.080
    assert stats["p99"] < 0.080 * 5
    benchmark.extra_info.update({"mix": mix_name, **stats})


def test_open_loop_arrivals(benchmark):
    def run():
        world, domain, group, stubs = build(seed=43, clients=1)
        latencies = open_loop(world, stubs[0], rate_per_s=40.0,
                              duration_s=2.0, mix=write_heavy, seed=2)
        return percentiles(latencies)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats["count"] >= 40  # ~80 expected over 2 s at 40/s
    assert stats["p95"] < 0.5
    benchmark.extra_info.update(stats)


def test_latency_vs_population(benchmark):
    """Closed-loop population sweep: the knee where the total order
    (not the WAN) becomes the bottleneck."""

    def run():
        table = {}
        for clients in (1, 4, 8):
            world, domain, group, stubs = build(seed=44, clients=clients)
            latencies = closed_loop(world, stubs, operations=5,
                                    mix=write_heavy, seed=3)
            table[clients] = percentiles(latencies)["p50"]
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({f"p50_{k}_clients": v
                                 for k, v in table.items()})
    # Median latency should degrade only mildly up to 8 clients: the
    # ring pipelines independent requests.
    assert table[8] < table[1] * 3
