"""Simulated network: latency model, partitions, datagram delivery.

The network delivers *datagrams* between hosts after a configurable
latency.  Reliability within a live, unpartitioned pair of hosts is
guaranteed and ordering per (source, destination) pair is FIFO — the
same assumptions Totem makes of its LAN and TCP makes of its path.
Loss happens only through host crashes and explicit partitions, which
is the paper's fault model (fail-stop processors, no Byzantine links).

Latency defaults are asymmetric-friendly: a :class:`LatencyModel` maps a
host pair to a delay, so wide-area links (Figure 1's New York ↔ Los
Angeles connection) can be orders of magnitude slower than domain-local
LAN hops.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from ..obs import (AuditScope, FlightRecorder, MetricsRegistry,
                   SeriesRegistry, TraceCollector)
from .host import Host
from .scheduler import Scheduler
from .trace import Tracer

DeliverFn = Callable[[Any], None]


class LatencyModel:
    """Latency lookup for host pairs, with per-pair overrides.

    ``local_latency`` applies between hosts in the same *site* (set via
    ``site_of``); ``wan_latency`` applies otherwise.  Explicit per-pair
    overrides win over both.
    """

    def __init__(self, local_latency: float = 0.0005, wan_latency: float = 0.040):
        self.local_latency = local_latency
        self.wan_latency = wan_latency
        self._site_of: Dict[str, str] = {}
        self._overrides: Dict[FrozenSet[str], float] = {}
        # Resolved (src, dst) -> delay cache; topology edits invalidate
        # it.  Token rotation asks for the same few pairs millions of
        # times, so the frozenset/lookup work is paid once per pair.
        self._cache: Dict[Tuple[str, str], float] = {}

    def set_site(self, host_name: str, site: str) -> None:
        self._site_of[host_name] = site
        self._cache.clear()

    def set_pair(self, a: str, b: str, latency: float) -> None:
        self._overrides[frozenset((a, b))] = latency
        self._cache.clear()

    def latency(self, src: str, dst: str) -> float:
        cached = self._cache.get((src, dst))
        if cached is not None:
            return cached
        delay = self._resolve(src, dst)
        self._cache[(src, dst)] = delay
        return delay

    def _resolve(self, src: str, dst: str) -> float:
        if src == dst:
            return self.local_latency / 10.0
        override = self._overrides.get(frozenset((src, dst)))
        if override is not None:
            return override
        site_a = self._site_of.get(src)
        site_b = self._site_of.get(dst)
        if site_a is not None and site_a == site_b:
            return self.local_latency
        if site_a is None and site_b is None:
            return self.local_latency
        return self.wan_latency


class Network:
    """Datagram network connecting :class:`Host` objects."""

    def __init__(
        self,
        scheduler: Scheduler,
        latency_model: Optional[LatencyModel] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        audit: Optional[AuditScope] = None,
        spans: Optional[TraceCollector] = None,
        series: Optional[SeriesRegistry] = None,
        flight: Optional[FlightRecorder] = None,
    ) -> None:
        self.scheduler = scheduler
        self.latency_model = latency_model or LatencyModel()
        self.tracer = tracer or Tracer(enabled=False)
        # The world-owned registry; every Host/Process reaches it through
        # the network, so one scenario shares one set of metrics.
        self.metrics = metrics if metrics is not None else MetricsRegistry(
            clock=lambda: scheduler.now)
        # The world-owned resource-leak audit scope, shared the same way.
        self.audit = audit if audit is not None else AuditScope(
            metrics=self.metrics, clock=lambda: scheduler.now)
        # The world-owned causal-trace collector (disabled by default);
        # every Process reaches it through its ``spans`` property.
        self.spans = spans if spans is not None else TraceCollector(
            enabled=False, clock=lambda: scheduler.now)
        # The world-owned time-series registry and flight recorder,
        # both disabled by default (``series``/``flight`` properties on
        # Process); disabled they cost one boolean test at each hook.
        self.series = series if series is not None else SeriesRegistry(
            clock=lambda: scheduler.now)
        self.flight = flight if flight is not None else FlightRecorder(
            clock=lambda: scheduler.now)
        self.hosts: Dict[str, Host] = {}
        self._partitions: List[Tuple[Set[str], Set[str]]] = []
        self._crash_handlers: List[Callable[[Host], None]] = []
        self._recovery_handlers: List[Callable[[Host], None]] = []
        self.datagrams_sent = 0
        self.datagrams_delivered = 0
        self.bytes_sent = 0
        self._msg_counter = itertools.count()
        # Traffic counters are plain ints on the send/arrive hot paths,
        # exported lazily: the registry reads them through callbacks at
        # snapshot time, so per-datagram accounting costs two int adds.
        self.metrics.counter_fn("net.datagrams.sent",
                                lambda: self.datagrams_sent)
        self.metrics.counter_fn("net.datagrams.delivered",
                                lambda: self.datagrams_delivered)
        self.metrics.counter_fn("net.bytes.sent",
                                lambda: self.bytes_sent, unit="B")

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def add_host(self, name: str, site: Optional[str] = None) -> Host:
        if name in self.hosts:
            raise ValueError(f"duplicate host name {name!r}")
        host = Host(name, self.scheduler, self)
        self.hosts[name] = host
        if site is not None:
            self.latency_model.set_site(name, site)
        return host

    def host(self, name: str) -> Host:
        return self.hosts[name]

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------

    def partition(self, side_a: Set[str], side_b: Set[str]) -> None:
        """Block traffic between the two host-name sets (both ways)."""
        self._partitions.append((set(side_a), set(side_b)))
        self.tracer.emit(self.scheduler.now, "net.partition", "network",
                         "partition installed", a=sorted(side_a), b=sorted(side_b))

    def heal_partitions(self) -> None:
        self._partitions.clear()
        self.tracer.emit(self.scheduler.now, "net.heal", "network", "partitions healed")

    def can_communicate(self, src: str, dst: str) -> bool:
        for side_a, side_b in self._partitions:
            if (src in side_a and dst in side_b) or (src in side_b and dst in side_a):
                return False
        return True

    # ------------------------------------------------------------------
    # Datagram service
    # ------------------------------------------------------------------

    def send(
        self,
        src: Host,
        dst: Host,
        payload: Any,
        deliver: DeliverFn,
        size: int = 0,
    ) -> None:
        """Send ``payload`` from ``src`` to ``dst``; call ``deliver`` there.

        Delivery is dropped silently when either endpoint is dead at
        send *or* delivery time, or when a partition separates them —
        matching a real network where packets to dead hosts vanish.
        """
        self.datagrams_sent += 1
        self.bytes_sent += size
        if not src.alive:
            return
        if not self.can_communicate(src.name, dst.name):
            return
        delay = self.latency_model.latency(src.name, dst.name)
        # post(): an in-flight datagram is never cancelled or
        # rescheduled, so the delivery needs no Timer handle at all.
        self.scheduler.post(
            delay, self._arrive, src.name, dst, payload, deliver)

    def _arrive(self, src_name: str, dst: Host, payload: Any,
                deliver: DeliverFn) -> None:
        """Delivery-time half of :meth:`send` (bound method, no closure)."""
        if not dst.alive:
            return
        if not self.can_communicate(src_name, dst.name):
            return
        self.datagrams_delivered += 1
        deliver(payload)

    def broadcast(
        self,
        src: Host,
        targets: List[Tuple[Host, DeliverFn]],
        payload: Any,
        size: int = 0,
    ) -> int:
        """Offer ``payload`` to every target with per-pair latency, using
        one bulk ``post_batch`` push per *distinct delay* — one calendar
        entry per target, but only one scheduling call per delay group.

        Semantically identical to looping ``send`` over ``targets`` in
        the given order: per-target accounting, liveness and partition
        checks at both send and delivery time, and delivery order are
        all preserved (a batch draws consecutive tiebreaks atomically,
        so targets sharing a delay fire in the order given — how
        back-to-back ``send`` calls would have interleaved; distinct
        delays never tie).  Each target arrives through the same
        ``_arrive`` entry point as ``send``, so the race detector's
        per-source delivery lanes see broadcast and unicast traffic
        identically.  Returns the number of delivery entries scheduled.
        """
        count = len(targets)
        self.datagrams_sent += count
        self.bytes_sent += size * count
        if not src.alive:
            return 0
        src_name = src.name
        latency = self.latency_model.latency
        # Group reachable targets by delay, preserving target order
        # within a group and first-occurrence order across groups.
        groups: Dict[float, List[Tuple[str, Host, Any, DeliverFn]]] = {}
        for dst, deliver in targets:
            if not self.can_communicate(src_name, dst.name):
                continue
            delay = latency(src_name, dst.name)
            bucket = groups.get(delay)
            if bucket is None:
                groups[delay] = [(src_name, dst, payload, deliver)]
            else:
                bucket.append((src_name, dst, payload, deliver))

        scheduled = 0
        post_batch = self.scheduler.post_batch
        for delay, argss in groups.items():
            post_batch(delay, self._arrive, argss)
            scheduled += len(argss)
        return scheduled

    def host_crashed(self, host: Host) -> None:
        self.tracer.emit(self.scheduler.now, "net.crash", "network",
                         f"host {host.name} crashed")
        for fn in list(self._crash_handlers):
            fn(host)

    def host_recovered(self, host: Host) -> None:
        self.tracer.emit(self.scheduler.now, "net.recover", "network",
                         f"host {host.name} recovered")
        for fn in list(self._recovery_handlers):
            fn(host)

    def on_host_crash(self, fn: Callable[[Host], None]) -> None:
        self._crash_handlers.append(fn)

    def on_host_recovery(self, fn: Callable[[Host], None]) -> None:
        self._recovery_handlers.append(fn)
