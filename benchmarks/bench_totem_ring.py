"""E2b: Totem substrate microbenchmarks (ring size sweep).

Eternal's costs (Figure 2) bottom out in the multicast substrate, so we
characterise it separately: multicast delivery latency and sustained
throughput as the ring grows, and the reformation time after a member
crash (the component of every failover that is pure protocol).
"""

import pytest

from repro.sim import World
from repro.totem import TotemMember, TotemTransport

MESSAGES = 40


def build_ring(world, size):
    transport = TotemTransport(world.network, "d")
    members, delivered = [], {}
    for i in range(size):
        host = world.add_host(f"r{i}", site="lan")
        member = TotemMember(host, f"r{i}", transport)
        delivered[member.name] = []
        member.on_deliver(lambda seq, snd, p, n=member.name:
                          delivered[n].append(p))
        members.append(member)
    for member in members:
        member.start()
    world.scheduler.run_until(
        lambda: all(m.state == TotemMember.OPERATIONAL and
                    len(m.members) == size for m in members), timeout=60.0)
    return members, delivered


def run_latency(size):
    world = World(seed=200 + size, trace=False)
    members, delivered = build_ring(world, size)
    t0 = world.now
    for i in range(MESSAGES):
        members[i % size].multicast(i)
    world.scheduler.run_until(
        lambda: all(len(delivered[m.name]) == MESSAGES for m in members),
        timeout=600.0)
    elapsed = world.now - t0
    return {
        "ring_size": size,
        "simulated_per_message_s": round(elapsed / MESSAGES, 6),
        "identical_order": len({tuple(delivered[m.name])
                                for m in members}) == 1,
    }


def run_reformation(size):
    world = World(seed=300 + size, trace=False)
    members, delivered = build_ring(world, size)
    t0 = world.now
    world.faults.crash_now(members[size // 2].name)
    survivors = [m for m in members if m.name != members[size // 2].name]
    world.scheduler.run_until(
        lambda: all(m.state == TotemMember.OPERATIONAL and
                    len(m.members) == size - 1 for m in survivors),
        timeout=600.0)
    return {"ring_size": size,
            "reformation_s": round(world.now - t0, 4)}


@pytest.mark.parametrize("size", [2, 3, 5, 8])
def test_totem_multicast_latency_by_ring_size(benchmark, size):
    row = benchmark.pedantic(run_latency, args=(size,), rounds=2,
                             iterations=1)
    assert row["identical_order"]
    # Shape: per-message cost grows roughly with rotation time (linear
    # in ring size), far below a naive n^2 unicast mesh.
    assert row["simulated_per_message_s"] < 0.010 * size
    benchmark.extra_info.update(row)


@pytest.mark.parametrize("size", [3, 5, 8])
def test_totem_reformation_time(benchmark, size):
    row = benchmark.pedantic(run_reformation, args=(size,), rounds=2,
                             iterations=1)
    # Reformation = token-loss timeout + gather + commit: tens of ms,
    # dominated by the loss timeout, nearly flat in ring size.
    assert 0.02 < row["reformation_s"] < 0.2
    benchmark.extra_info.update(row)


def test_totem_wall_clock_throughput(benchmark):
    """Events-per-second the simulator sustains for a busy 4-ring."""
    def run():
        world = World(seed=999, trace=False)
        members, delivered = build_ring(world, 4)
        for i in range(200):
            members[i % 4].multicast(i)
        world.scheduler.run_until(
            lambda: all(len(delivered[m.name]) == 200 for m in members),
            timeout=600.0)
        return world.scheduler.events_processed

    events = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["events_processed"] = events
