"""Datagram transport and member registry for one Totem domain.

Totem runs over a LAN broadcast medium; here the broadcast is modelled
as one datagram per registered member, fanned out by the network in a
batched delivery event per distinct latency, which makes every
broadcast *atomic with respect to crashes*: a message is either offered
to all live members or (if the sender was already dead) to none.  This
matches the paper's fault model, where message loss comes from
processor failure and partition, not per-link drops.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, TYPE_CHECKING

from ..sim.network import Network

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .member import TotemMember


class TotemTransport:
    """Names the members of one fault tolerance domain's ring."""

    def __init__(self, network: Network, domain_name: str) -> None:
        self.network = network
        self.domain_name = domain_name
        self._members: Dict[str, "TotemMember"] = {}
        self.broadcasts = 0
        self.datagrams = 0
        self._m_broadcasts = network.metrics.counter("totem.broadcasts")
        self._m_datagrams = network.metrics.counter("totem.datagrams")
        self._m_bytes = network.metrics.counter("totem.bytes.broadcast", unit="B")
        self._m_batched = network.metrics.counter(
            "totem.broadcast.batched_deliveries")

    def register(self, member: "TotemMember") -> None:
        self._members[member.name] = member

    def deregister(self, member_name: str) -> None:
        self._members.pop(member_name, None)

    def member_names(self) -> list:
        return sorted(self._members)

    def lookup(self, name: str) -> Optional["TotemMember"]:
        return self._members.get(name)

    # ------------------------------------------------------------------
    # Datagram primitives
    # ------------------------------------------------------------------

    def unicast(self, sender: "TotemMember", target_name: str, message: Any,
                size: int = 64) -> None:
        target = self._members.get(target_name)
        if target is None:
            return
        self.datagrams += 1
        self._m_datagrams.inc()
        self.network.send(
            sender.host, target.host, message, target.receive, size=size)

    def broadcast(self, sender: "TotemMember", message: Any,
                  size: int = 64) -> None:
        """Send ``message`` to every registered member (including sender).

        Fan-out is batched: the network pushes the whole per-latency
        delivery cohort through ``Scheduler.post_batch`` (one bulk
        scheduling call per distinct latency — in practice two, the
        sender's loopback and the LAN group) instead of a full
        scheduling call per member.  Members are offered the datagram
        in deterministic registration order, exactly as the per-member
        ``send`` loop used to interleave them.
        ``totem.broadcast.batched_deliveries`` counts the per-target
        delivery entries scheduled through the batched path.
        """
        self.broadcasts += 1
        self._m_broadcasts.inc()
        self._m_bytes.inc(size)
        targets = [(target.host, target.receive)
                   for target in self._members.values()]
        self.datagrams += len(targets)
        self._m_datagrams.inc(len(targets))
        events = self.network.broadcast(sender.host, targets, message,
                                        size=size)
        self._m_batched.inc(events)
