"""Vendor service contexts used by the enhanced client layer.

Section 3.5 of the paper: the thin client-side interception layer
inserts a *unique TCP/IP client identifier* into the service context
field of each IIOP request so that any gateway — not just the one the
client first connected to — can recognise the client and detect
reinvocations.  ORBs that do not understand the context ignore it.

The context id uses the vendor range; the body is a CDR encapsulation
carrying the client's globally unique identifier string and an
incarnation number (bumped when the client process restarts, so a
restarted client is not mistaken for its former self).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import MarshalError
from .cdr import CdrOutputStream, decapsulate, encapsulate
from .giop import RequestMessage, ServiceContext

# "ET" vendor prefix, service 0x01: Eternal client identification.
ETERNAL_CLIENT_ID_CONTEXT = 0x45540001

# "ET" vendor prefix, service 0x02: Eternal causal-trace propagation.
TRACE_CONTEXT = 0x45540002


@dataclass(frozen=True)
class ClientIdContext:
    """Unique client identity carried end-to-end in IIOP requests."""

    client_uid: str
    incarnation: int = 1

    def to_service_context(self) -> ServiceContext:
        def build(out: CdrOutputStream) -> None:
            out.write_string(self.client_uid)
            out.write_ulong(self.incarnation)

        return ServiceContext(ETERNAL_CLIENT_ID_CONTEXT, encapsulate(build))

    @staticmethod
    def from_bytes(data: bytes) -> "ClientIdContext":
        stream = decapsulate(data)
        uid = stream.read_string()
        incarnation = stream.read_ulong()
        return ClientIdContext(client_uid=uid, incarnation=incarnation)


@dataclass(frozen=True)
class SpanContext:
    """Causal-trace context carried hop to hop in IIOP requests.

    ``trace_id`` is derived deterministically from the originator
    (``client_uid # incarnation / request_id`` for enhanced clients,
    a gateway-rooted name for plain ones), so seeded reruns produce
    byte-identical traces.  ``span_id`` is the sender-side span the
    receiver should parent its own spans under; ``hop`` counts domain
    boundaries crossed (bumped by the egress on cross-domain calls).
    """

    trace_id: str
    span_id: int
    hop: int = 0

    def to_service_context(self) -> ServiceContext:
        def build(out: CdrOutputStream) -> None:
            out.write_string(self.trace_id)
            out.write_ulong(self.span_id)
            out.write_ulong(self.hop)

        return ServiceContext(TRACE_CONTEXT, encapsulate(build))

    @staticmethod
    def from_bytes(data: bytes) -> "SpanContext":
        stream = decapsulate(data)
        trace_id = stream.read_string()
        span_id = stream.read_ulong()
        hop = stream.read_ulong()
        return SpanContext(trace_id=trace_id, span_id=span_id, hop=hop)


def extract_client_id(request: RequestMessage) -> Optional[ClientIdContext]:
    """Pull the Eternal client id out of a request, if present.

    Returns None for plain (non-enhanced) clients; malformed contexts
    are treated as absent, mirroring the CORBA rule that unintelligible
    service contexts are ignored.
    """
    raw = request.find_context(ETERNAL_CLIENT_ID_CONTEXT)
    if raw is None:
        return None
    try:
        return ClientIdContext.from_bytes(raw)
    except MarshalError:
        return None


def extract_trace_context(request: RequestMessage) -> Optional[SpanContext]:
    """Pull the causal-trace context out of a request, if present.

    Absent for plain clients (the gateway then roots the trace itself);
    malformed contexts are treated as absent, like ``extract_client_id``.
    """
    raw = request.find_context(TRACE_CONTEXT)
    if raw is None:
        return None
    try:
        return SpanContext.from_bytes(raw)
    except MarshalError:
        return None
