#!/usr/bin/env python
"""Quickstart: an unreplicated client invoking a replicated counter.

This is the paper's Figure 3 in ~40 lines: a fault tolerance domain of
three processors runs an actively replicated Counter; a gateway sits on
the domain's edge; an unreplicated CORBA client connects to the gateway
(believing it to be the server, because the published IOR says so) and
invokes operations.  Every replica executes each invocation; the
gateway delivers exactly one response and suppresses the duplicates.

Run:  python examples/quickstart.py
"""

from repro import FaultToleranceDomain, Orb, ReplicationStyle, World
from repro.apps import COUNTER_INTERFACE, CounterServant


def main():
    # One simulated world: deterministic scheduler + network + TCP.
    world = World(seed=42)

    # A fault tolerance domain with three processors and one gateway.
    domain = FaultToleranceDomain(world, "demo", num_hosts=3)
    gateway = domain.add_gateway(port=2809)

    # An actively replicated Counter group (one replica per processor).
    group = domain.create_group(
        "Counter", COUNTER_INTERFACE, CounterServant,
        style=ReplicationStyle.ACTIVE, num_replicas=3)
    domain.await_stable()

    # The IOR Eternal publishes points at the GATEWAY, not any replica.
    ior = domain.ior_for(group)
    print("published IOR  ->", ior.to_string()[:64], "...")
    print("IOR endpoint   ->", ior.primary_profile().address,
          "(the gateway; the replicas are hidden)")

    # An unreplicated client outside the domain: plain ORB, plain IIOP.
    browser = world.add_host("browser")
    orb = Orb(world, browser)
    counter = orb.string_to_object(ior.to_string(), COUNTER_INTERFACE)

    print("\ninvoking increment(5), increment(3), value() ...")
    print("increment(5) ->", world.await_promise(counter.call("increment", 5)))
    print("increment(3) ->", world.await_promise(counter.call("increment", 3)))
    print("value()      ->", world.await_promise(counter.call("value")))

    # Show what happened behind the gateway.
    world.run(until=world.now + 0.1)
    print("\nreplica states (all identical — strong replica consistency):")
    for host_name, rm in sorted(domain.rms.items()):
        record = rm.replicas.get(group.group_id)
        if record is not None:
            print(f"  {host_name}: count = {record.servant.count}")
    print("\ngateway statistics:")
    for key in ("requests_received", "requests_forwarded",
                "responses_delivered", "duplicates_suppressed"):
        print(f"  {key:<24} {gateway.stats[key]}")
    print("\n(3 replicas -> 3 responses per invocation: 1 delivered, "
          "2 suppressed — exactly Figure 3 of the paper)")


if __name__ == "__main__":
    main()
