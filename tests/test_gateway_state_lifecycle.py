"""Regression tests: per-client gateway state must be reclaimed.

Each test pins one of the state-lifecycle leaks fixed alongside the
resource-leak audit.  All of them were invisible to the functional
suite — responses still flowed correctly — while a per-client table
grew without bound:

* cancel tombstones in ``_cancelled`` survived the late response;
* one-way requests parked in ``_pending`` were never popped (no
  response ever arrives to pop them);
* a client closing with operations still pending suppressed the
  CLIENT_GONE broadcast forever, stranding mirror state at every peer;
* the warm-passive primary logged every invocation but never truncated
  its own log.
"""

import pytest

from repro import ReplicationStyle, Servant, World
from repro.iiop import TC_LONG, TC_STRING, TC_VOID, encode_cancel_request
from repro.orb import Interface, Operation, Param

from tests.helpers import external_client, make_counter_group, make_domain

EVENTS = Interface("EventSink", [
    Operation("emit", [Param("note", TC_STRING)], TC_VOID, oneway=True),
    Operation("count", [], TC_LONG),
])


class EventSinkServant(Servant):
    interface = EVENTS

    def __init__(self):
        self.notes = []

    def emit(self, note):
        self.notes.append(note)

    def count(self):
        return len(self.notes)


def hold_forward(gateway):
    """Intercept the gateway's domain forward so requests stay pending."""
    held = []
    original = gateway._forward
    gateway._forward = lambda pending: held.append(pending)
    return held, original


def send_cancel_for_last_request(world, orb, settle=0.1):
    connection = orb._connections[next(iter(orb._connections))]
    request_id = connection.pending_request_ids()[-1]
    connection.endpoint.send(encode_cancel_request(request_id))
    world.run(until=world.now + settle)


def test_cancelled_entry_discarded_when_response_arrives(world):
    """A CancelRequest leaves a tombstone so the late response is not
    written to the socket — but the response's arrival must also
    consume the tombstone."""
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    gateway = domain.gateways[0]
    orb, stub, _ = external_client(world, domain, group, enhanced=False)
    world.await_promise(stub.call("increment", 1))
    held, original = hold_forward(gateway)
    promise = stub.call("increment", 10)
    world.run(until=world.now + 0.1)
    send_cancel_for_last_request(world, orb)
    assert len(gateway._cancelled) == 1
    # Release the invocation: it executes, the response arrives late.
    gateway._forward = original
    gateway._forward(held[0])
    world.run(until=world.now + 1.0)
    assert not promise.done          # still not routed to the socket
    assert gateway._cancelled == set()  # ...and the tombstone is gone
    assert gateway.stats["responses_unroutable"] == 1
    world.audit(strict=True)


def test_cancel_tombstone_reaped_by_ttl_when_no_response_comes(world):
    """If the cancelled operation's response never arrives (its server
    group died), the tombstone and its filter expectation are reclaimed
    by TTL instead."""
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    gateway = domain.gateways[0]
    orb, stub, _ = external_client(world, domain, group, enhanced=False)
    world.await_promise(stub.call("increment", 1))
    hold_forward(gateway)  # the invocation is never multicast
    stub.call("increment", 10)
    world.run(until=world.now + 0.1)
    send_cancel_for_last_request(world, orb)
    assert gateway.stats["cancels"] == 1
    assert len(gateway._cancelled) == 1
    assert gateway._filter.pending_count == 1
    world.run(until=world.now + gateway.cancel_ttl + 1.0)
    assert gateway._cancelled == set()
    assert gateway.stats["cancels_reaped"] == 1
    assert gateway._filter.pending_count == 0
    assert gateway._reap_timer is None  # nothing left to reap
    world.audit(strict=True)


def test_oneway_pending_records_reclaimed_on_observed_delivery(world):
    """One-way requests get a ``_pending`` record (takeover re-forwards
    need it) but no response ever pops it; observing the forwarded
    INVOCATION's delivery must."""
    domain = make_domain(world, gateways=2)
    group = domain.create_group("Events", EVENTS, EventSinkServant)
    _, stub, _ = external_client(world, domain, group)
    for i in range(20):
        stub.call("emit", f"note-{i}")
    assert world.await_promise(stub.call("count"), timeout=600) == 20
    world.run(until=world.now + 1.0)
    completed = 0
    for gateway in domain.gateways:
        assert gateway._pending == {}
        completed += gateway.stats["oneways_completed"]
    # Both the forwarding gateway's records and the mirror records at
    # its peer are reclaimed the same way.
    assert completed >= 20
    world.audit(strict=True)


def test_client_gone_deferred_until_last_pending_resolves(world):
    """A client closing with an operation still in flight must not
    suppress the CLIENT_GONE broadcast forever: it fires once the last
    pending operation resolves, and every gateway then purges the
    departed client's state."""
    domain = make_domain(world, gateways=2)
    group = make_counter_group(domain)
    orb, stub, _ = external_client(world, domain, group, enhanced=False)
    world.await_promise(stub.call("increment", 1))
    origin = next(gw for gw in domain.gateways if gw._conn_ids)
    peer = next(gw for gw in domain.gateways if gw is not origin)
    held, original = hold_forward(origin)
    stub.call("increment", 10)
    world.run(until=world.now + 0.1)
    assert held
    client_id = next(iter(origin._routing))
    # The client disconnects while the operation is still pending.
    orb._connections[next(iter(orb._connections))].close()
    world.run(until=world.now + 0.5)
    # The broadcast is deferred: the peer still needs its mirror record
    # to collect the response (section 3.5).
    assert origin.stats["client_gone_deferred"] == 1
    assert client_id in origin._gone_pending
    assert origin.stats["clients_gone"] == 0
    assert (client_id, held[0].op_id) in peer._pending
    # Let the operation complete: the deferred broadcast now fires.
    origin._forward = original
    origin._forward(held[0])
    world.run(until=world.now + 1.0)
    assert origin._gone_pending == set()
    for gateway in domain.gateways:
        assert gateway.stats["clients_gone"] == 1
        assert not any(k[0] == client_id for k in gateway._pending)
        assert not any(k[0] == client_id for k in gateway._cache)
        assert client_id not in gateway._routing
    world.audit(strict=True)


def test_returning_client_voids_deferred_departure(world):
    """If the same client identifiers reconnect before the deferred
    CLIENT_GONE fires, the departure is void — a purge now would delete
    state the reissues are about to claim."""
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    gateway = domain.gateways[0]
    _, stub, _ = external_client(world, domain, group, enhanced=True)
    world.await_promise(stub.call("increment", 1))
    held, original = hold_forward(gateway)
    promise = stub.call("increment", 10)
    world.run(until=world.now + 0.1)
    assert held
    # The connection drops mid-operation; the enhanced client then
    # reconnects with the same identifiers and reissues (section 3.5).
    stub.requester.connection.close()
    world.run(until=world.now + 0.5)
    # The departure was deferred at close, then voided by the reissue.
    assert gateway.stats["client_gone_deferred"] == 1
    assert gateway._gone_pending == set()
    assert gateway.stats["clients_gone"] == 0
    gateway._forward = original
    for pending in held:
        gateway._forward(pending)
    assert world.await_promise(promise, timeout=600) == 11
    world.run(until=world.now + 1.0)
    # The client is still here: no purge may ever have fired.
    assert gateway.stats["clients_gone"] == 0
    world.audit(strict=True)


def test_cancel_after_response_delivery_leaves_no_tombstone(world):
    """A CancelRequest that loses the race against the reply (the
    response was already written back) must not leave a tombstone —
    nothing would ever consume it but the TTL."""
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    gateway = domain.gateways[0]
    orb, stub, _ = external_client(world, domain, group, enhanced=False)
    assert world.await_promise(stub.call("increment", 1)) == 1
    connection = orb._connections[next(iter(orb._connections))]
    connection.endpoint.send(encode_cancel_request(1))  # the completed call
    world.run(until=world.now + 0.5)
    assert gateway.stats["cancels"] == 1
    assert gateway._cancelled == set()
    assert gateway._reap_timer is None
    world.audit(strict=True)


def test_cancel_stat_and_counter_declared_up_front(world):
    domain = make_domain(world, gateways=1)
    gateway = domain.gateways[0]
    assert gateway.stats["cancels"] == 0
    assert gateway.metrics.counter("gateway.req.cancelled").value == 0


def test_warm_passive_primary_log_is_truncated_by_its_own_updates(world):
    """The warm-passive primary multicasts a state update per operation
    and every backup truncates on install — the primary's own log must
    shrink the same way, not grow by one entry per operation."""
    domain = make_domain(world, num_hosts=4, gateways=1)
    group = make_counter_group(domain, style=ReplicationStyle.WARM_PASSIVE,
                               replicas=3, min_replicas=2)
    domain.await_ready(group)
    _, stub, _ = external_client(world, domain, group)
    for _ in range(25):
        world.await_promise(stub.call("increment", 1), timeout=600)
    world.run(until=world.now + 1.0)
    primary = group.info().primary(domain.coordinator_rm().live_hosts)
    log = domain.rms[primary].logs[group.group_id]
    assert len(log) <= group.info().checkpoint_interval + 1
    world.audit(strict=True)
