"""E9/E17 (section 2, ablation): replication styles compared.

The paper's fault tolerance properties include the replication style
(stateless / cold passive / warm passive / active / active+voting, and
the semi-active leader-follower engine).  This ablation quantifies the
classic trade-off on identical workloads:

* steady-state cost: broadcasts per operation and executions per
  operation (active executes at n replicas, passive at 1);
* failover cost: simulated time from primary/replica crash until the
  next invocation completes, and how much replay it needed.

Expected shape: ACTIVE pays n executions but fails over instantly
(surviving replicas already have the state); WARM_PASSIVE pays a state
update per operation and a short failover; COLD_PASSIVE is cheapest in
steady state and slowest to fail over (checkpoint restore + log replay);
LEADER_FOLLOWER executes everywhere like ACTIVE (instant failover, no
replay) but multicasts only the leader's response.

E17 adds the runtime dimension: client-observed p50 latency of
leader-follower vs active-with-voting through a gateway (voting waits
for a majority; the leader answers alone), and a live ACTIVE ->
LEADER_FOLLOWER switch under in-flight traffic proving, from the
gateway's duplicate-suppression counters, that no invocation is lost
or duplicated across the style cut.
"""

import pytest

from repro import ReplicationStyle, World

from common import build_domain, counter_group, external_stub

STYLES = [
    ReplicationStyle.ACTIVE,
    ReplicationStyle.WARM_PASSIVE,
    ReplicationStyle.COLD_PASSIVE,
    ReplicationStyle.LEADER_FOLLOWER,
]
OPERATIONS = 12


def run_steady_state(style):
    world = World(seed=90, trace=False)
    domain = build_domain(world, num_hosts=4, gateways=0)
    group = counter_group(domain, style=style, replicas=3,
                          checkpoint_interval=4)
    world.await_promise(group.invoke("increment", 1), timeout=600)
    transport = domain.transport
    before_broadcasts = transport.broadcasts
    before_execs = sum(rm.stats["invocations_executed"]
                       for rm in domain.rms.values())
    for _ in range(OPERATIONS):
        world.await_promise(group.invoke("increment", 1), timeout=600)
    world.run(until=world.now + 0.5)
    execs = sum(rm.stats["invocations_executed"]
                for rm in domain.rms.values()) - before_execs
    return {
        "style": style.value,
        "broadcasts_per_op": round(
            (transport.broadcasts - before_broadcasts) / OPERATIONS, 2),
        "executions_per_op": round(execs / OPERATIONS, 2),
    }


def run_failover(style):
    world = World(seed=91, trace=False)
    domain = build_domain(world, num_hosts=4, gateways=0)
    # Interval of 5 leaves a non-empty log suffix after 12 operations
    # (checkpoints at 5 and 10), so cold-passive failover must replay.
    group = counter_group(domain, style=style, replicas=3, min_replicas=2,
                          checkpoint_interval=5)
    for _ in range(OPERATIONS):
        world.await_promise(group.invoke("increment", 1), timeout=600)
    world.run(until=world.now + 0.2)
    info = group.info()
    victim = info.primary(domain.coordinator_rm().live_hosts)
    t0 = world.now
    world.faults.crash_now(victim)
    value = world.await_promise(group.invoke("increment", 1), timeout=600)
    failover = world.now - t0
    replays = sum(rm.stats["replays"] for rm in domain.rms.values())
    return {
        "style": style.value,
        "failover_latency_s": round(failover, 4),
        "replayed_ops": replays,
        "state_correct": value == OPERATIONS + 1,
    }


@pytest.mark.parametrize("style", STYLES, ids=lambda s: s.value)
def test_styles_steady_state_cost(benchmark, style):
    row = benchmark.pedantic(run_steady_state, args=(style,), rounds=2,
                             iterations=1)
    benchmark.extra_info.update(row)
    if style.executes_everywhere:
        assert row["executions_per_op"] == 3.0       # every replica executes
    else:
        assert row["executions_per_op"] == 1.0       # primary only
    if style is ReplicationStyle.WARM_PASSIVE:
        # invocation + state update + response >= active's message count.
        assert row["broadcasts_per_op"] >= 3.0
    if style is ReplicationStyle.LEADER_FOLLOWER:
        # Hot execution without the redundant response multicasts.
        assert row["executions_per_op"] == 3.0


@pytest.mark.parametrize("style", STYLES, ids=lambda s: s.value)
def test_styles_failover(benchmark, style):
    row = benchmark.pedantic(run_failover, args=(style,), rounds=2,
                             iterations=1)
    benchmark.extra_info.update(row)
    assert row["state_correct"]
    if style.executes_everywhere:
        assert row["replayed_ops"] == 0              # nothing to replay
    if style is ReplicationStyle.COLD_PASSIVE:
        assert row["replayed_ops"] >= 1              # log suffix replayed


def test_styles_comparison_table(benchmark):
    """One row per style — the E9 summary table."""

    def run():
        return {style.value: {**run_steady_state(style), **run_failover(style)}
                for style in STYLES}

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    active = table["active"]
    cold = table["cold_passive"]
    lf = table["leader_follower"]
    # Shapes: active executes 3x more, cold replays more at failover.
    assert active["executions_per_op"] > cold["executions_per_op"]
    assert cold["replayed_ops"] >= active["replayed_ops"]
    # Leader-follower keeps active's hot state (same executions, zero
    # replay) while multicasting fewer responses per operation.
    assert lf["executions_per_op"] == active["executions_per_op"]
    assert lf["replayed_ops"] == 0
    assert lf["broadcasts_per_op"] <= active["broadcasts_per_op"]
    for style, row in table.items():
        benchmark.extra_info[style] = row


# ======================================================================
# E17: leader-follower vs voting latency, and the live style switch
# ======================================================================

def run_gateway_latency(style, replicas=3):
    """Client-observed latency through a gateway for ``style``.

    The gateway path is where the styles differ for the *client*: a
    voting group withholds each response until a majority of replica
    responses agree — one token hop after the ring-first replica's
    response — while a leader-follower group answers with the leader's
    single response.  The operations are issued as one concurrent
    burst and each completion is stamped client-side from the
    simulated clock (the latency histogram's buckets are coarser than
    a token hop, so quantiles from it would hide the difference); a
    non-trivial token hold keeps successive replica responses on
    distinct simulated instants.
    """
    import statistics

    from repro import TotemConfig
    world = World(seed=92, trace=False)
    domain = build_domain(world, num_hosts=5, gateways=1,
                          totem_config=TotemConfig(
                              token_hold=0.005, token_loss_timeout=0.12,
                              gather_timeout=0.02))
    group = counter_group(domain, style=style, replicas=replicas)
    stub, _ = external_stub(world, domain, group, enhanced=False)
    t0 = world.now
    promises = [stub.call("increment", 1) for _ in range(OPERATIONS)]
    latencies = []
    for promise in promises:
        world.scheduler.run_until(lambda p=promise: p.done, timeout=600)
        latencies.append(world.now - t0)
    world.run(until=world.now + 0.5)
    latencies.sort()
    return {
        "style": style.value,
        "p50_latency_s": round(statistics.median(latencies), 6),
        "p95_latency_s": round(latencies[int(0.95 * len(latencies))], 6),
    }


def test_styles_lf_vs_voting_latency(benchmark):
    """E17 headline: leader-follower p50 beats active-with-voting."""

    def run():
        return {
            "leader_follower": run_gateway_latency(
                ReplicationStyle.LEADER_FOLLOWER),
            "active_with_voting": run_gateway_latency(
                ReplicationStyle.ACTIVE_WITH_VOTING),
        }

    rows = benchmark.pedantic(run, rounds=2, iterations=1)
    lf, voting = rows["leader_follower"], rows["active_with_voting"]
    benchmark.extra_info["lf_p50_latency_s"] = lf["p50_latency_s"]
    benchmark.extra_info["voting_p50_latency_s"] = voting["p50_latency_s"]
    benchmark.extra_info["p50_speedup"] = round(
        voting["p50_latency_s"] / lf["p50_latency_s"], 2)
    # The leader answers alone; the voter waits for a majority.
    assert lf["p50_latency_s"] < voting["p50_latency_s"]


def run_live_switch():
    """ACTIVE -> LEADER_FOLLOWER switch with traffic in flight.

    Returns delivery accounting from the gateway's duplicate-suppression
    counters: every operation must reach the client exactly once, as a
    normal delivery or a vote-relaxation flush — never both.
    """
    world = World(seed=93, trace=False)
    domain = build_domain(world, num_hosts=4, gateways=1)
    group = counter_group(domain, style=ReplicationStyle.ACTIVE, replicas=3)
    gateway = domain.gateways[0]
    stub, _ = external_stub(world, domain, group, enhanced=False)
    promises = [stub.call("increment", 1) for _ in range(OPERATIONS)]
    world.run(until=world.now + 0.02)        # traffic on the ring
    domain.switch_style(group, ReplicationStyle.LEADER_FOLLOWER)
    world.run_until_done(promises, timeout=600)
    world.run(until=world.now + 0.5)
    values = sorted(p.value for p in promises)
    t0 = world.now
    world.await_promise(stub.call("increment", 1), timeout=600)
    return {
        "ops": OPERATIONS,
        "delivered": gateway.stats["responses_delivered"]
        + gateway.stats["votes_relaxed"],
        "duplicates_to_client": 0 if values == list(
            range(1, OPERATIONS + 1)) else -1,
        "post_switch_latency_s": round(world.now - t0, 6),
        "style_switches": sum(rm.stats["style_switches"]
                              for rm in domain.rms.values()),
    }


def test_styles_live_switch_exactly_once(benchmark):
    """E17: the STYLE_SWITCH quiesce point loses and duplicates nothing."""
    row = benchmark.pedantic(run_live_switch, rounds=2, iterations=1)
    benchmark.extra_info.update(row)
    assert row["delivered"] == row["ops"] + 1    # + the post-switch probe
    assert row["duplicates_to_client"] == 0
    assert row["style_switches"] >= 1
