"""The grand tour: every subsystem in one scenario.

An end-to-end integration test exercising, in a single world: bootstrap
via the replicated Naming Service, group creation through the CORBA
Replication Manager with FT-CORBA property maps, mixed replication
styles with nested invocations, redundant gateways with an enhanced
external client, a mid-run gateway crash, a replica host crash with
resource-manager healing, a fault-detector eviction, a rolling live
upgrade, processor restart, and fault-notifier observation — finishing
with full-consistency assertions and a coherent status report.
"""

import json

import pytest

from repro import FtClientLayer, Orb, ReplicationStyle, World
from repro.apps import (
    ACCOUNT_INTERFACE,
    AccountServant,
    COUNTER_INTERFACE,
    CounterServant,
    LEDGER_INTERFACE,
    LedgerServant,
    NAMING_INTERFACE,
    TRANSFER_INTERFACE,
    TransferAgentServant,
)
from repro.eternal import FaultKind, FaultNotifier, domain_report

from tests.helpers import make_domain


class MonitoredCounter(CounterServant):
    def __init__(self):
        super().__init__()
        self.healthy = True

    def health_check(self):
        return self.healthy


class MonitoredCounterV2(MonitoredCounter):
    pass


def test_grand_tour():
    world = World(seed=20260705, trace=False)
    domain = make_domain(world, num_hosts=5, gateways=2)
    notifier = FaultNotifier(domain)

    # --- bootstrap: naming + manager-created groups -------------------
    domain.enable_naming()
    domain.register_interface(COUNTER_INTERFACE)
    domain.register_factory("monitored_counter", MonitoredCounter)
    properties = {
        "org.omg.ft.ReplicationStyle": "active",
        "org.omg.ft.InitialNumberReplicas": "3",
        "org.omg.ft.MinimumNumberReplicas": "3",
    }
    world.await_promise(domain.invoke(
        "EternalReplicationManager", "create_object_with_properties",
        ["Inventory", "Counter", "monitored_counter",
         json.dumps(properties)]), timeout=600)
    inventory = domain.resolve("Inventory")
    domain.await_ready(inventory)
    domain._bind_name(inventory)

    # Bank trio with nested transfers, warm-passive ledger.
    accounts = domain.create_group("Accounts", ACCOUNT_INTERFACE,
                                   AccountServant)
    domain.create_group("Ledger", LEDGER_INTERFACE, LedgerServant,
                        style=ReplicationStyle.WARM_PASSIVE)
    transfers = domain.create_group("Transfers", TRANSFER_INTERFACE,
                                    TransferAgentServant)
    world.await_promise(accounts.invoke("deposit", "alice", 500),
                        timeout=600)

    # --- external client bootstraps purely by name --------------------
    browser = world.add_host("browser")
    orb = Orb(world, browser, request_timeout=None)
    layer = FtClientLayer(orb, client_uid="tourist")
    naming = layer.string_to_object(
        domain.ior_for("EternalNaming").to_string(), NAMING_INTERFACE)
    inventory_ior = world.await_promise(naming.call("resolve", "Inventory"),
                                        timeout=600)
    transfers_ior = world.await_promise(naming.call("resolve", "Transfers"),
                                        timeout=600)
    inventory_stub = layer.string_to_object(inventory_ior, COUNTER_INTERFACE)
    transfers_stub = layer.string_to_object(transfers_ior, TRANSFER_INTERFACE)

    assert world.await_promise(inventory_stub.call("increment", 10),
                               timeout=600) == 10
    assert world.await_promise(
        transfers_stub.call("transfer", "alice", "bob", 100),
        timeout=600) == 100

    # --- fault barrage -------------------------------------------------
    world.faults.crash_now(domain.gateways[0].host.name)   # gateway dies
    assert world.await_promise(inventory_stub.call("increment", 5),
                               timeout=600) == 15

    victim = inventory.info().placement[0]                 # replica host dies
    world.faults.crash_now(victim)
    world.run(until=world.now + 2.5)                       # RM heals
    assert len(inventory.info().placement) == 3

    sick = inventory.info().placement[0]                   # replica sickens
    domain.rms[sick].replicas[inventory.group_id].servant.healthy = False
    world.run(until=world.now + 2.5)                       # detector evicts

    world.faults.recover_now(victim)                       # processor back
    domain.restart_host(victim)
    domain.await_stable(timeout=60)

    # --- rolling upgrade under traffic ---------------------------------
    domain.register_factory("monitored_counter.v2", MonitoredCounterV2)
    upgrade = domain.evolution.upgrade_group("Inventory",
                                             "monitored_counter.v2")
    assert world.await_promise(inventory_stub.call("increment", 5),
                               timeout=600) == 20
    assert world.await_promise(upgrade, timeout=600) == 2

    # --- final invariants ----------------------------------------------
    assert world.await_promise(inventory_stub.call("value"),
                               timeout=600) == 20
    assert world.await_promise(accounts.invoke("balance", "alice"),
                               timeout=600) == 400
    assert world.await_promise(accounts.invoke("balance", "bob"),
                               timeout=600) == 100
    world.run(until=world.now + 1.0)

    inventory_states = set()
    for rm in domain.rms.values():
        record = rm.replicas.get(inventory.group_id)
        if record is not None and rm.alive and record.ready:
            inventory_states.add(record.servant.count)
            assert type(record.servant) is MonitoredCounterV2
    assert inventory_states == {20}

    report = domain_report(domain)
    assert report["stable"]
    by_name = {g["name"]: g for g in report["groups"]}
    assert by_name["Inventory"]["healthy"]
    assert by_name["Inventory"]["version"] == 2

    kinds = {r.kind for r in notifier.reports}
    assert FaultKind.HOST_CRASHED in kinds
    assert FaultKind.MEMBERSHIP_CHANGED in kinds
    assert FaultKind.REPLICA_REMOVED in kinds
    assert FaultKind.HOST_RECOVERED in kinds
