#!/usr/bin/env python
"""Sections 3.4 vs 3.5, side by side: what a gateway crash does to a
plain year-2000 ORB client versus an enhanced client.

Scenario (identical in both runs): the client sends an invocation; the
gateway crashes at the exact moment the replicated server's response
reaches it — the invocation has EXECUTED inside the domain, but the
reply never escapes.

* **Plain client** (section 3.4): COMM_FAILURE; the invocation's fate
  is unknown; a naive application retry through a second gateway
  re-executes the operation and corrupts server state.
* **Enhanced client** (section 3.5): the thin interception layer skips
  to the next IOR profile, reconnects, reissues with the same client id
  and request id; the domain's duplicate detection returns the original
  response — no loss, no duplication, no application involvement.

Run:  python examples/gateway_failover.py
"""

from repro import (
    CommFailure,
    FaultToleranceDomain,
    FtClientLayer,
    Orb,
    ReplicationStyle,
    World,
)
from repro.apps import COUNTER_INTERFACE, CounterServant


def build(world, mirror):
    domain = FaultToleranceDomain(world, "dom", num_hosts=3)
    domain.add_gateway(port=2809, mirror_requests=mirror)
    domain.add_gateway(port=2809, mirror_requests=mirror)
    group = domain.create_group("Counter", COUNTER_INTERFACE, CounterServant,
                                style=ReplicationStyle.ACTIVE)
    domain.await_stable()
    return domain, group


def crash_gateway_on_response(world, gateway):
    """Crash the gateway the instant the next domain response hits it."""
    def crash_instead(_msg):
        world.faults.crash_now(gateway.host.name)
    gateway._on_domain_response = crash_instead


def replica_value(domain, group):
    for rm in domain.rms.values():
        record = rm.replicas.get(group.group_id)
        if record is not None and rm.alive:
            return record.servant.count
    return None


def run_plain():
    print("=" * 64)
    print("PLAIN CLIENT, section 3.4 (no mirroring, first profile only)")
    print("=" * 64)
    world = World(seed=1)
    domain, group = build(world, mirror=False)
    host = world.add_host("browser")
    orb = Orb(world, host, request_timeout=None)
    stub = orb.string_to_object(
        domain.ior_for(group, first_gateway_only=True).to_string(),
        COUNTER_INTERFACE)
    print("increment(1) ->", world.await_promise(stub.call("increment", 1)))

    crash_gateway_on_response(world, domain.gateways[0])
    promise = stub.call("increment", 10)
    try:
        world.await_promise(promise, timeout=240)
    except CommFailure as exc:
        print(f"increment(10) -> COMM_FAILURE ({exc})")
    world.run(until=world.now + 1.0)
    print(f"  ... but the domain executed it anyway: replicas hold "
          f"{replica_value(domain, group)} (client cannot know)")

    print("application retries through the surviving gateway:")
    retry_orb = Orb(world, world.add_host("browser2"), request_timeout=None)
    retry = retry_orb.string_to_object(domain.ior_for(group).to_string(),
                                       COUNTER_INTERFACE)
    world.await_promise(retry.call("increment", 10), timeout=240)
    print(f"  replicas now hold {replica_value(domain, group)} "
          "(DUPLICATE EXECUTION: 1 + 10 + 10 = 21)")


def run_enhanced():
    print()
    print("=" * 64)
    print("ENHANCED CLIENT, section 3.5 (mirroring + interception layer)")
    print("=" * 64)
    world = World(seed=1)
    domain, group = build(world, mirror=True)
    host = world.add_host("browser")
    orb = Orb(world, host, request_timeout=None)
    layer = FtClientLayer(orb, client_uid="customer/demo")
    stub = layer.string_to_object(domain.ior_for(group).to_string(),
                                  COUNTER_INTERFACE)
    print("increment(1) ->", world.await_promise(stub.call("increment", 1)))

    crash_gateway_on_response(world, domain.gateways[0])
    result = world.await_promise(stub.call("increment", 10), timeout=240)
    print(f"increment(10) -> {result}  (transparent failover; the reissue "
          "was recognised, not re-executed)")
    world.run(until=world.now + 1.0)
    print(f"  replicas hold {replica_value(domain, group)} (1 + 10 = 11: "
          "exactly once)")
    for when, address in layer.failover_log:
        print(f"  failover at t={when:.3f}s -> gateway {address}")


if __name__ == "__main__":
    run_plain()
    run_enhanced()
