"""Integration tests: warm and cold passive replication, failover, recovery."""

import pytest

from repro import ReplicationStyle, World
from repro.eternal import GroupLog

from tests.helpers import make_counter_group, make_domain, replica_counts


def primary_of(domain, group):
    info = group.info()
    return info.primary(domain.coordinator_rm().live_hosts)


def test_warm_passive_only_primary_executes(world):
    domain = make_domain(world)
    group = make_counter_group(domain, style=ReplicationStyle.WARM_PASSIVE)
    world.await_promise(group.invoke("increment", 5))
    world.run(until=world.now + 0.1)
    primary = primary_of(domain, group)
    for host, rm in domain.rms.items():
        if group.group_id in rm.replicas:
            expected = 1 if host == primary else 0
            assert rm.stats["invocations_executed"] == expected


def test_warm_passive_backups_track_state_via_updates(world):
    domain = make_domain(world)
    group = make_counter_group(domain, style=ReplicationStyle.WARM_PASSIVE)
    for _ in range(4):
        world.await_promise(group.invoke("increment", 1))
    world.run(until=world.now + 0.2)
    # Every replica (not just the primary) holds the current state.
    assert set(replica_counts(domain, group).values()) == {4}


def test_warm_passive_failover_preserves_state(world):
    domain = make_domain(world, num_hosts=4)
    group = make_counter_group(domain, style=ReplicationStyle.WARM_PASSIVE,
                               replicas=3, min_replicas=2)
    for _ in range(5):
        world.await_promise(group.invoke("increment", 1))
    old_primary = primary_of(domain, group)
    world.faults.crash_now(old_primary)
    assert world.await_promise(group.invoke("increment", 1)) == 6
    assert primary_of(domain, group) != old_primary


def test_cold_passive_checkpoints_are_periodic(world):
    domain = make_domain(world)
    group = make_counter_group(domain, style=ReplicationStyle.COLD_PASSIVE,
                               checkpoint_interval=3)
    for _ in range(7):
        world.await_promise(group.invoke("increment", 1))
    world.run(until=world.now + 0.2)
    primary = primary_of(domain, group)
    rm = domain.rms[primary]
    assert rm.stats["checkpoints"] >= 2
    # A backup holds the checkpoint and only the log suffix.
    backup = [h for h in group.info().placement if h != primary][0]
    log = domain.rms[backup].logs[group.group_id]
    assert log.checkpoint is not None
    assert len(log) < 7


def test_cold_passive_failover_replays_log_suffix(world):
    domain = make_domain(world, num_hosts=4)
    group = make_counter_group(domain, style=ReplicationStyle.COLD_PASSIVE,
                               replicas=3, min_replicas=2,
                               checkpoint_interval=3)
    for _ in range(7):
        world.await_promise(group.invoke("increment", 1))
    world.run(until=world.now + 0.2)
    old_primary = primary_of(domain, group)
    world.faults.crash_now(old_primary)
    # The new primary restores checkpoint state (6 ops) and replays the
    # logged suffix (1 op) before executing new work.
    assert world.await_promise(group.invoke("increment", 1)) == 8
    new_primary = primary_of(domain, group)
    assert domain.rms[new_primary].stats["replays"] >= 1


def test_cold_passive_two_successive_failovers(world):
    domain = make_domain(world, num_hosts=5)
    group = make_counter_group(domain, style=ReplicationStyle.COLD_PASSIVE,
                               replicas=3, min_replicas=1,
                               checkpoint_interval=2)
    for _ in range(5):
        world.await_promise(group.invoke("increment", 1))
    world.faults.crash_now(primary_of(domain, group))
    assert world.await_promise(group.invoke("increment", 1)) == 6
    world.faults.crash_now(primary_of(domain, group))
    assert world.await_promise(group.invoke("increment", 1)) == 7


def test_passive_backup_logs_but_does_not_respond(world):
    domain = make_domain(world)
    group = make_counter_group(domain, style=ReplicationStyle.COLD_PASSIVE)
    world.await_promise(group.invoke("increment", 3))
    world.run(until=world.now + 0.1)
    primary = primary_of(domain, group)
    backups = [h for h in group.info().placement if h != primary]
    for backup in backups:
        rm = domain.rms[backup]
        assert rm.stats["invocations_executed"] == 0
        assert len(rm.logs[group.group_id]) >= 1


def test_failover_resends_responses_for_unacknowledged_ops(world):
    """If the primary dies right after executing, the new primary's
    replay re-multicasts the response; the caller's duplicate detection
    keeps exactly-once semantics."""
    domain = make_domain(world, num_hosts=4)
    group = make_counter_group(domain, style=ReplicationStyle.WARM_PASSIVE,
                               replicas=3, min_replicas=2)
    world.await_promise(group.invoke("increment", 1))
    old_primary = primary_of(domain, group)
    world.faults.crash_now(old_primary)
    # Drive past the failover; state must not double-apply the replay.
    assert world.await_promise(group.invoke("value")) == 1


def test_warm_passive_replacement_backup_receives_state(world):
    domain = make_domain(world, num_hosts=4)
    group = make_counter_group(domain, style=ReplicationStyle.WARM_PASSIVE,
                               replicas=3, min_replicas=3)
    for _ in range(3):
        world.await_promise(group.invoke("increment", 2))
    before = set(group.info().placement)
    world.faults.crash_now(group.info().placement[1])
    world.run(until=world.now + 2.0)
    info = group.info()
    assert len(info.placement) == 3
    replacement = (set(info.placement) - before).pop()
    record = domain.rms[replacement].replicas[group.group_id]
    assert record.ready
    assert record.servant.count == 6


def test_mixed_styles_coexist_in_one_domain(world):
    domain = make_domain(world, num_hosts=4)
    active = make_counter_group(domain, name="A", style=ReplicationStyle.ACTIVE)
    warm = make_counter_group(domain, name="W",
                              style=ReplicationStyle.WARM_PASSIVE)
    cold = make_counter_group(domain, name="C",
                              style=ReplicationStyle.COLD_PASSIVE)
    for group in (active, warm, cold):
        assert world.await_promise(group.invoke("increment", 4)) == 4
    world.run(until=world.now + 0.2)
    assert set(replica_counts(domain, active).values()) == {4}
