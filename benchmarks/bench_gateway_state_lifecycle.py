"""State-lifecycle churn: the gateway retention layer under load.

The functional suite proves each reclaim path works once; this
benchmark drives them in bulk and reports what the retention layer
costs and reclaims:

* one-way churn — every one-way request parks a record in ``_pending``
  (takeover re-forwards need it) that is retired on observed delivery,
  not by a response;
* cancellation churn — every CancelRequest leaves a tombstone that the
  late response consumes (or the TTL reaper, if it never comes);
* the domain-wide resource audit itself — ``world.audit()`` walks every
  registered collection, so its wall cost bounds how often a real
  deployment could afford to run it.

Each scenario ends with ``world.audit(strict=True)``: the benchmark
fails if churn leaks anything above its declared floor.
"""

from repro import Orb, Servant, World
from repro.iiop import TC_LONG, TC_STRING, TC_VOID, encode_cancel_request
from repro.orb import Interface, Operation, Param

from common import build_domain, counter_group, external_stub

EVENTS = Interface("EventSink", [
    Operation("emit", [Param("note", TC_STRING)], TC_VOID, oneway=True),
    Operation("count", [], TC_LONG),
])

ONEWAYS = 50
CANCELS = 10


class EventSinkServant(Servant):
    interface = EVENTS

    def __init__(self):
        self.notes = []

    def emit(self, note):
        self.notes.append(note)

    def count(self):
        return len(self.notes)


def plain_client(world, domain, group, host_name="browser"):
    """A plain (non-enhanced) client whose connection we can reach."""
    host = (world.network.hosts.get(host_name) or world.add_host(host_name))
    orb = Orb(world, host, request_timeout=None)
    stub = orb.string_to_object(domain.ior_for(group).to_string(),
                                group.interface)
    return orb, stub


def test_oneway_churn_reclaims_all_pending(benchmark):
    """Wall cost of a one-way burst through two mirroring gateways,
    every record retired by observed delivery — none by TTL."""

    def run():
        world = World(seed=11, trace=False)
        domain = build_domain(world, gateways=2)
        group = domain.create_group("Events", EVENTS, EventSinkServant)
        domain.await_ready(group)
        stub, _ = external_stub(world, domain, group, enhanced=False)
        for i in range(ONEWAYS):
            stub.call("emit", f"note-{i}")
        assert world.await_promise(stub.call("count"), timeout=600) == ONEWAYS
        world.run(until=world.now + 1.0)
        world.audit(strict=True)
        completed = sum(gw.stats["oneways_completed"]
                        for gw in domain.gateways)
        reaped = sum(gw.stats["oneways_reaped"] for gw in domain.gateways)
        assert all(gw._pending == {} for gw in domain.gateways)
        return {"oneways_sent": ONEWAYS, "oneways_completed": completed,
                "oneways_reaped": reaped}

    row = benchmark.pedantic(run, rounds=2, iterations=1)
    assert row["oneways_completed"] >= ONEWAYS
    assert row["oneways_reaped"] == 0
    benchmark.extra_info.update(row)


def test_cancel_churn_tombstones_consumed_by_responses(benchmark):
    """Pipelined requests cancelled in flight: the responses still
    arrive, are dropped as unroutable, and consume their tombstones —
    the TTL reaper never has to fire."""

    def run():
        world = World(seed=11, trace=False)
        domain = build_domain(world, gateways=1)
        group = counter_group(domain)
        gateway = domain.gateways[0]
        orb, stub = plain_client(world, domain, group)
        world.await_promise(stub.call("increment", 1), timeout=600)
        for _ in range(CANCELS):
            stub.call("increment", 1)
        # Cancels chase the requests down the same connection with no
        # gap, so they reach the gateway while the operations are still
        # in flight in the domain.
        connection = orb._connections[next(iter(orb._connections))]
        for request_id in list(connection.pending_request_ids()):
            connection.endpoint.send(encode_cancel_request(request_id))
        world.run(until=world.now + 2.0)
        world.audit(strict=True)
        assert gateway._cancelled == set()
        stats = dict(gateway.stats)
        return {"cancels": stats["cancels"],
                "cancels_reaped": stats["cancels_reaped"],
                "responses_unroutable": stats["responses_unroutable"]}

    row = benchmark.pedantic(run, rounds=2, iterations=1)
    assert row["cancels"] == CANCELS
    assert row["responses_unroutable"] == CANCELS
    assert row["cancels_reaped"] == 0
    benchmark.extra_info.update(row)


def test_audit_walk_cost(benchmark):
    """Wall cost of one full audit over a populated domain (every
    gateway/RM/scheduler collection snapshotted and gauged)."""
    world = World(seed=11, trace=False)
    domain = build_domain(world, gateways=2)
    group = counter_group(domain)
    stub, _ = external_stub(world, domain, group, enhanced=False)
    for _ in range(10):
        world.await_promise(stub.call("increment", 1), timeout=600)
    world.run(until=world.now + 1.0)

    report = benchmark(world.audit)
    assert report.ok
    benchmark.extra_info["collections_audited"] = len(report.rows)
