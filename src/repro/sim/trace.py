"""Event tracing for simulations.

A :class:`Tracer` collects structured trace records that tests, examples
and benchmarks can query afterwards ("how many duplicate responses did
the gateway suppress?", "when did the ring reform?").  Tracing is cheap:
records are plain tuples appended to a list, and categories can be
filtered at emit time.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Set


class TraceRecord(NamedTuple):
    time: float
    category: str
    source: str
    message: str
    data: Dict[str, Any]


class Tracer:
    """Append-only trace log with category filtering and counters.

    The contract, relied on by tests and by the metrics layer:

    * **Counters always count.**  Every ``emit`` bumps the category
      counter, regardless of ``enabled`` and of any category filter, so
      ``count()`` is a complete census of emitted events and stays
      comparable with :class:`~repro.obs.MetricsRegistry` counters.
    * **Records obey both switches.**  A record is retained only when
      the tracer is ``enabled`` *and* the category passes the filter
      (no filter means all categories pass).
    * **The cap bounds records, never counts.**  With ``max_records``
      set, ``records`` is a ring buffer keeping only the most recent
      ``max_records`` entries (soak runs stay bounded), while the
      category counters keep counting every emit.
    """

    def __init__(self, enabled: bool = True,
                 categories: Optional[Iterable[str]] = None,
                 max_records: Optional[int] = None):
        if max_records is not None and max_records < 0:
            raise ValueError("max_records must be >= 0 (or None for unbounded)")
        self.enabled = enabled
        self._allowed: Optional[Set[str]] = set(categories) if categories else None
        self.max_records = max_records
        # A deque(maxlen=N) when capped (O(1) eviction), a plain list
        # otherwise — existing callers compare ``records`` to lists, so
        # the uncapped default keeps the historical type.
        self.records = (deque(maxlen=max_records) if max_records is not None
                        else [])
        self.counters: Dict[str, int] = {}

    def emit(
        self,
        time: float,
        category: str,
        source: str,
        message: str,
        **data: Any,
    ) -> None:
        """Record one trace event.

        The category counter is bumped unconditionally; the record is
        kept only when ``enabled`` and the category passes the filter
        (see the class docstring for the full contract)."""
        self.counters[category] = self.counters.get(category, 0) + 1
        if not self.enabled:
            return
        if self._allowed is not None and category not in self._allowed:
            return
        self.records.append(TraceRecord(time, category, source, message, data))

    def count(self, category: str) -> int:
        """Total events emitted in ``category`` (counted even if filtered)."""
        return self.counters.get(category, 0)

    def select(self, category: str) -> List[TraceRecord]:
        """All retained records in ``category``, in emission order."""
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        self.records.clear()
        self.counters.clear()

    def dump(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering of the trace (most recent last).

        ``limit`` keeps only the most recent ``limit`` records; 0 keeps
        none (previously ``limit=0`` returned the *entire* log, because
        ``records[-0:]`` is the whole list)."""
        if limit is None:
            rows = list(self.records)
        elif limit <= 0:
            rows = []
        else:
            rows = list(self.records)[-limit:]
        lines = []
        for r in rows:
            extra = " ".join(f"{k}={v!r}" for k, v in r.data.items())
            lines.append(f"[{r.time:12.6f}] {r.category:<20} {r.source:<24} {r.message} {extra}".rstrip())
        return "\n".join(lines)
