"""Benchmark-session additions: print the reproduction metrics.

pytest-benchmark's table shows wall-clock timings; the numbers that
matter for the reproduction (simulated latencies, suppression counts,
byte sizes) live in each benchmark's ``extra_info``.  This hook prints
them at the end of the session so `pytest benchmarks/ --benchmark-only`
shows paper-relevant results without needing --benchmark-json.
"""

from __future__ import annotations


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    session = getattr(config, "_benchmarksession", None)
    if session is None or not getattr(session, "benchmarks", None):
        return
    rows = [(bench.name, bench.extra_info)
            for bench in session.benchmarks if bench.extra_info]
    if not rows:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep(
        "-", "reproduction metrics (simulated time / counts)")
    for name, extra in sorted(rows):
        rendered = ", ".join(f"{key}={value}" for key, value in extra.items())
        terminalreporter.write_line(f"{name}: {rendered}")
