"""Sim-clock time series: ring buffers with windowed aggregators.

Metrics (:mod:`repro.obs.metrics`) answer "what is the total now?";
this module answers "how did it evolve?".  A :class:`SeriesRegistry`
holds labeled :class:`Series` — per-group, per-gateway, per-domain —
each backed by a fixed-size ring of ``(t, value)`` samples plus three
windowed aggregators:

* :class:`SlidingRate` — events (or summed amounts) per second over a
  sliding window;
* :class:`Ewma` — a time-decayed exponentially weighted moving average
  (irregular sampling intervals are handled by deriving alpha from the
  gap, so a burst does not get extra weight);
* :class:`QuantileSketch` — a windowed streaming quantile estimate over
  the same exponential buckets as :class:`~repro.obs.metrics.Histogram`
  (two rotating half-window epochs, so an estimate covers between half
  and one full window of history).

Series come in two flavours.  *Event* series are fed directly from
instrumentation sites (``registry.observe(name, value, group="3")``).
*Sampled* series poll a callback on a periodic scheduler tick
(``registry.sample(name, fn)``); the sampler is only armed when the
registry is enabled AND at least one sampled source is registered, so
an enabled registry with purely event-driven series adds **zero**
scheduler events — the simulated event stream stays byte-identical to
a disabled run.

Laziness contract (repo convention, see ``CallbackCounter``): when the
registry is disabled — the default — instrumentation sites pay one
attribute load and one boolean test, no allocation, no metric objects.

Everything reads the simulated clock; two runs of a seeded scenario
(on either twin scheduler) export byte-identical JSON.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections import deque
from typing import (Any, Callable, Deque, Dict, List, Optional, TYPE_CHECKING,
                    Tuple)

from ..errors import ConfigurationError
from .metrics import ClockFn, Histogram, _validate_name

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .flight import FlightRecorder

SERIES_SCHEMA_VERSION = 1

LabelItems = Tuple[Tuple[str, str], ...]

_LABEL_KEY_CHARS = frozenset("abcdefghijklmnopqrstuvwxyz0123456789_")


def _label_items(labels: Dict[str, Any]) -> LabelItems:
    items: List[Tuple[str, str]] = []
    for key in sorted(labels):
        if not key or not set(key) <= _LABEL_KEY_CHARS:
            raise ConfigurationError(
                f"invalid series label key {key!r}: want lowercase [a-z0-9_]")
        items.append((key, str(labels[key])))
    return tuple(items)


def render_key(name: str, labels: LabelItems) -> str:
    """Canonical ``name{k="v",...}`` identity (labels pre-sorted)."""
    if not labels:
        return name
    rendered = ",".join(
        '%s="%s"' % (k, v.replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in labels)
    return f"{name}{{{rendered}}}"


class RingBuffer:
    """Fixed-capacity ring of ``(t, value)`` samples, oldest evicted."""

    __slots__ = ("_ring", "capacity", "appended")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.appended = 0
        self._ring: Deque[Tuple[float, float]] = deque(maxlen=capacity)

    def append(self, t: float, value: float) -> None:
        self.appended += 1
        self._ring.append((t, value))

    def items(self) -> List[Tuple[float, float]]:
        """Retained samples, oldest first."""
        return list(self._ring)

    @property
    def dropped(self) -> int:
        return self.appended - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)


class SlidingRate:
    """Events (or summed amounts) per second over a sliding window."""

    __slots__ = ("window_s", "_events")

    def __init__(self, window_s: float) -> None:
        if window_s <= 0:
            raise ConfigurationError(
                f"rate window must be positive, got {window_s}")
        self.window_s = window_s
        self._events: Deque[Tuple[float, float]] = deque()

    def _evict(self, now: float) -> None:
        horizon = now - self.window_s
        events = self._events
        while events and events[0][0] <= horizon:
            events.popleft()

    def add(self, t: float, amount: float = 1.0) -> None:
        self._evict(t)
        self._events.append((t, amount))

    def rate(self, now: float) -> float:
        """Summed amounts inside ``(now - window, now]`` per second."""
        self._evict(now)
        if not self._events:
            return 0.0
        return sum(amount for _, amount in self._events) / self.window_s


class Ewma:
    """Time-decayed EWMA: ``alpha = 1 - exp(-dt / tau)`` per update.

    Because every update is a convex combination of the previous value
    and the new observation, the estimate is always bounded by the
    min/max of the observations seen so far (a Hypothesis-checked
    property).
    """

    __slots__ = ("tau_s", "value", "_last_t")

    def __init__(self, tau_s: float) -> None:
        if tau_s <= 0:
            raise ConfigurationError(
                f"ewma time constant must be positive, got {tau_s}")
        self.tau_s = tau_s
        self.value: Optional[float] = None
        self._last_t: Optional[float] = None

    def observe(self, t: float, value: float) -> None:
        if self.value is None or self._last_t is None:
            self.value = value
        else:
            dt = max(0.0, t - self._last_t)
            alpha = 1.0 - math.exp(-dt / self.tau_s) if dt > 0 else 0.0
            self.value += alpha * (value - self.value)
        self._last_t = t


class QuantileSketch:
    """Windowed streaming quantiles over exponential buckets.

    Same bucket geometry as :class:`~repro.obs.metrics.Histogram`
    (``BASE=1e-6``, ``GROWTH=1.15``), windowed by keeping two
    half-window epochs and rotating: an estimate therefore covers
    between ``window/2`` and ``window`` of recent history.  The rank
    error of an estimate is bounded by the occupancy of the bucket the
    requested rank falls in (a Hypothesis-checked property); the value
    error by that bucket's width.
    """

    __slots__ = ("window_s", "_half", "_epoch_start", "_cur", "_prev",
                 "_cur_stats", "_prev_stats")

    _BOUNDS = Histogram._BOUNDS

    def __init__(self, window_s: float) -> None:
        if window_s <= 0:
            raise ConfigurationError(
                f"sketch window must be positive, got {window_s}")
        self.window_s = window_s
        self._half = window_s / 2.0
        self._epoch_start: Optional[float] = None
        self._cur: Dict[int, int] = {}
        self._prev: Dict[int, int] = {}
        # Per-epoch (count, min, max) so estimates clamp to observed.
        self._cur_stats: Optional[Tuple[int, float, float]] = None
        self._prev_stats: Optional[Tuple[int, float, float]] = None

    def _roll(self, t: float) -> None:
        if self._epoch_start is None:
            self._epoch_start = t
            return
        if t < self._epoch_start + self._half:
            return
        if t < self._epoch_start + 2.0 * self._half:
            self._prev, self._cur = self._cur, {}
            self._prev_stats, self._cur_stats = self._cur_stats, None
            self._epoch_start += self._half
        else:  # both epochs stale: restart the window at t
            self._cur = {}
            self._prev = {}
            self._cur_stats = None
            self._prev_stats = None
            self._epoch_start = t

    def observe(self, t: float, value: float) -> None:
        if value < 0 or value != value:  # negative or NaN (Histogram rule)
            value = 0.0
        self._roll(t)
        index = bisect_right(self._BOUNDS, value)
        self._cur[index] = self._cur.get(index, 0) + 1
        if self._cur_stats is None:
            self._cur_stats = (1, value, value)
        else:
            count, lo, hi = self._cur_stats
            self._cur_stats = (count + 1, min(lo, value), max(hi, value))

    def quantile(self, q: float, now: float) -> Optional[float]:
        """Estimated q-quantile of the current window; None when empty."""
        self._roll(now)
        merged: Dict[int, int] = dict(self._prev)
        for index, count in self._cur.items():
            merged[index] = merged.get(index, 0) + count
        total = 0
        lo: Optional[float] = None
        hi: Optional[float] = None
        for stats in (self._prev_stats, self._cur_stats):
            if stats is not None:
                total += stats[0]
                lo = stats[1] if lo is None else min(lo, stats[1])
                hi = stats[2] if hi is None else max(hi, stats[2])
        if total == 0 or lo is None or hi is None:
            return None
        rank = max(1, math.ceil(q * total))
        cumulative = 0
        for index in sorted(merged):
            in_bucket = merged[index]
            if cumulative + in_bucket >= rank:
                lower = 0.0 if index == 0 else self._BOUNDS[index - 1]
                upper = (self._BOUNDS[index] if index < len(self._BOUNDS)
                         else hi)
                fraction = (rank - cumulative) / in_bucket
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, lo), hi)
            cumulative += in_bucket
        return hi  # pragma: no cover - unreachable (counts agree)

    @property
    def count(self) -> int:
        total = 0
        for stats in (self._prev_stats, self._cur_stats):
            if stats is not None:
                total += stats[0]
        return total


class Series:
    """One labeled time series: sample ring + windowed aggregators."""

    __slots__ = ("name", "labels", "key", "ring", "last_t", "last_value",
                 "_rate", "_ewma", "_sketch", "sampled", "_fn",
                 "flight_delta")

    def __init__(self, name: str, labels: LabelItems, capacity: int,
                 window_s: float, ewma_tau_s: float) -> None:
        self.name = name
        self.labels = labels
        self.key = render_key(name, labels)
        self.ring = RingBuffer(capacity)
        self.last_t: Optional[float] = None
        self.last_value: Optional[float] = None
        self._rate = SlidingRate(window_s)
        self._ewma = Ewma(ewma_tau_s)
        self._sketch = QuantileSketch(window_s)
        self.sampled = False
        self._fn: Optional[Callable[[], float]] = None
        # Sampled series only: |value - previous| >= flight_delta emits
        # a flight-recorder event (metric-delta-over-threshold).
        self.flight_delta: Optional[float] = None

    def record(self, t: float, value: float) -> None:
        self.ring.append(t, value)
        self.last_t = t
        self.last_value = value
        self._rate.add(t, value)
        self._ewma.observe(t, value)
        self._sketch.observe(t, value)

    # -- windowed reads -------------------------------------------------

    def rate(self, now: float) -> float:
        """Summed recorded amounts per second over the window."""
        return self._rate.rate(now)

    @property
    def ewma(self) -> Optional[float]:
        return self._ewma.value

    def quantile(self, q: float, now: float) -> Optional[float]:
        return self._sketch.quantile(q, now)

    def window_count(self, now: float) -> int:
        """Observations inside the sketch's current window."""
        self._sketch._roll(now)
        return self._sketch.count

    def snapshot(self, now: float) -> Dict[str, Any]:
        return {
            "name": self.name,
            "labels": {k: v for k, v in self.labels},
            "sampled": self.sampled,
            "count": self.ring.appended,
            "dropped": self.ring.dropped,
            "last_t": self.last_t,
            "last": self.last_value,
            "rate": self.rate(now),
            "ewma": self.ewma,
            "p50": self.quantile(0.50, now),
            "p95": self.quantile(0.95, now),
            "p99": self.quantile(0.99, now),
            "points": [[t, v] for t, v in self.ring.items()],
        }


class SeriesRegistry:
    """Labeled time series sharing one simulated clock.

    Disabled (the default) the registry is inert: instrumentation sites
    guard with ``if sr.enabled:`` and never allocate.  Enabled, event
    series record on ``observe`` and sampled series poll on a periodic
    scheduler tick (armed lazily on the first ``sample()``
    registration, so purely event-driven use adds no scheduler events).
    """

    def __init__(self, clock: Optional[ClockFn] = None, enabled: bool = False,
                 capacity: int = 240, window_s: float = 1.0,
                 ewma_tau_s: Optional[float] = None,
                 sample_interval: float = 0.25,
                 flight: Optional["FlightRecorder"] = None) -> None:
        self.clock: ClockFn = clock if clock is not None else (lambda: 0.0)
        self.enabled = enabled
        self.capacity = capacity
        self.window_s = window_s
        self.ewma_tau_s = ewma_tau_s if ewma_tau_s is not None else window_s
        self.sample_interval = sample_interval
        self.flight = flight
        self._series: Dict[str, Series] = {}
        self._sampled: List[Series] = []
        self._scheduler: Optional[Any] = None
        self._armed = False

    # -- creation / lookup ----------------------------------------------

    def series(self, name: str, **labels: Any) -> Series:
        """Get-or-create the series ``name`` with these labels."""
        items = _label_items(labels)
        key = render_key(_validate_name(name), items)
        existing = self._series.get(key)
        if existing is not None:
            return existing
        created = Series(name, items, self.capacity, self.window_s,
                         self.ewma_tau_s)
        self._series[key] = created
        return created

    def get(self, name: str, **labels: Any) -> Optional[Series]:
        return self._series.get(render_key(name, _label_items(labels)))

    def keys(self) -> List[str]:
        return sorted(self._series)

    # -- recording ------------------------------------------------------

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one event sample (no-op while disabled)."""
        if not self.enabled:
            return
        self.series(name, **labels).record(self.clock(), value)

    def sample(self, name: str, fn: Callable[[], float],
               flight_delta: Optional[float] = None,
               **labels: Any) -> Optional[Series]:
        """Register a sampled source polled every ``sample_interval``.

        Arming the periodic sampler changes the simulated event stream,
        which is why sampled sources are opt-in per run (benches and
        goldens use event series only).  Returns None while disabled.
        """
        if not self.enabled:
            return None
        created = self.series(name, **labels)
        if not created.sampled:
            created.sampled = True
            created._fn = fn
            created.flight_delta = flight_delta
            self._sampled.append(created)
        self._arm()
        return created

    def attach_scheduler(self, scheduler: Any) -> None:
        """Give the registry its timer source (called by the World)."""
        self._scheduler = scheduler
        self._arm()

    def _arm(self) -> None:
        if (self._armed or not self.enabled or self._scheduler is None
                or not self._sampled):
            return
        self._armed = True
        self._scheduler.call_every(self.sample_interval, self._tick)

    def _tick(self) -> None:
        now = self.clock()
        flight = self.flight
        for entry in self._sampled:  # registration order: deterministic
            if entry._fn is None:
                continue
            value = float(entry._fn())
            previous = entry.last_value
            entry.record(now, value)
            if (flight is not None and flight.enabled
                    and entry.flight_delta is not None
                    and (previous is None
                         or abs(value - previous) >= entry.flight_delta)):
                flight.record("flight.series", series=entry.key,
                              previous=previous, value=value)

    # -- export ---------------------------------------------------------

    def snapshot(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Deterministic dump of every series, sorted by key."""
        at = self.clock() if now is None else now
        return {
            "schema": SERIES_SCHEMA_VERSION,
            "t": at,
            "window_s": self.window_s,
            "capacity": self.capacity,
            "series": {key: self._series[key].snapshot(at)
                       for key in sorted(self._series)},
        }

    def to_json(self, now: Optional[float] = None) -> str:
        from .export import canonical_json
        return canonical_json(self.snapshot(now))

    def last_values(self) -> List[Tuple[str, LabelItems, float]]:
        """(name, labels, last value) rows for the Prometheus exporter."""
        rows: List[Tuple[str, LabelItems, float]] = []
        for key in sorted(self._series):
            entry = self._series[key]
            if entry.last_value is not None:
                rows.append((entry.name, entry.labels, entry.last_value))
        return rows
