"""E9 (section 2, ablation): replication styles compared.

The paper's fault tolerance properties include the replication style
(stateless / cold passive / warm passive / active / active+voting).
This ablation quantifies the classic trade-off on identical workloads:

* steady-state cost: broadcasts per operation and executions per
  operation (active executes at n replicas, passive at 1);
* failover cost: simulated time from primary/replica crash until the
  next invocation completes, and how much replay it needed.

Expected shape: ACTIVE pays n executions but fails over instantly
(surviving replicas already have the state); WARM_PASSIVE pays a state
update per operation and a short failover; COLD_PASSIVE is cheapest in
steady state and slowest to fail over (checkpoint restore + log replay).
"""

import pytest

from repro import ReplicationStyle, World

from common import build_domain, counter_group

STYLES = [
    ReplicationStyle.ACTIVE,
    ReplicationStyle.WARM_PASSIVE,
    ReplicationStyle.COLD_PASSIVE,
]
OPERATIONS = 12


def run_steady_state(style):
    world = World(seed=90, trace=False)
    domain = build_domain(world, num_hosts=4, gateways=0)
    group = counter_group(domain, style=style, replicas=3,
                          checkpoint_interval=4)
    world.await_promise(group.invoke("increment", 1), timeout=600)
    transport = domain.transport
    before_broadcasts = transport.broadcasts
    before_execs = sum(rm.stats["invocations_executed"]
                       for rm in domain.rms.values())
    for _ in range(OPERATIONS):
        world.await_promise(group.invoke("increment", 1), timeout=600)
    world.run(until=world.now + 0.5)
    execs = sum(rm.stats["invocations_executed"]
                for rm in domain.rms.values()) - before_execs
    return {
        "style": style.value,
        "broadcasts_per_op": round(
            (transport.broadcasts - before_broadcasts) / OPERATIONS, 2),
        "executions_per_op": round(execs / OPERATIONS, 2),
    }


def run_failover(style):
    world = World(seed=91, trace=False)
    domain = build_domain(world, num_hosts=4, gateways=0)
    # Interval of 5 leaves a non-empty log suffix after 12 operations
    # (checkpoints at 5 and 10), so cold-passive failover must replay.
    group = counter_group(domain, style=style, replicas=3, min_replicas=2,
                          checkpoint_interval=5)
    for _ in range(OPERATIONS):
        world.await_promise(group.invoke("increment", 1), timeout=600)
    world.run(until=world.now + 0.2)
    info = group.info()
    victim = info.primary(domain.coordinator_rm().live_hosts)
    t0 = world.now
    world.faults.crash_now(victim)
    value = world.await_promise(group.invoke("increment", 1), timeout=600)
    failover = world.now - t0
    replays = sum(rm.stats["replays"] for rm in domain.rms.values())
    return {
        "style": style.value,
        "failover_latency_s": round(failover, 4),
        "replayed_ops": replays,
        "state_correct": value == OPERATIONS + 1,
    }


@pytest.mark.parametrize("style", STYLES, ids=lambda s: s.value)
def test_styles_steady_state_cost(benchmark, style):
    row = benchmark.pedantic(run_steady_state, args=(style,), rounds=2,
                             iterations=1)
    benchmark.extra_info.update(row)
    if style is ReplicationStyle.ACTIVE:
        assert row["executions_per_op"] == 3.0       # every replica executes
    else:
        assert row["executions_per_op"] == 1.0       # primary only
    if style is ReplicationStyle.WARM_PASSIVE:
        # invocation + state update + response >= active's message count.
        assert row["broadcasts_per_op"] >= 3.0


@pytest.mark.parametrize("style", STYLES, ids=lambda s: s.value)
def test_styles_failover(benchmark, style):
    row = benchmark.pedantic(run_failover, args=(style,), rounds=2,
                             iterations=1)
    benchmark.extra_info.update(row)
    assert row["state_correct"]
    if style is ReplicationStyle.ACTIVE:
        assert row["replayed_ops"] == 0              # nothing to replay
    if style is ReplicationStyle.COLD_PASSIVE:
        assert row["replayed_ops"] >= 1              # log suffix replayed


def test_styles_comparison_table(benchmark):
    """One row per style — the E9 summary table."""

    def run():
        return {style.value: {**run_steady_state(style), **run_failover(style)}
                for style in STYLES}

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    active = table["active"]
    cold = table["cold_passive"]
    # Shapes: active executes 3x more, cold replays more at failover.
    assert active["executions_per_op"] > cold["executions_per_op"]
    assert cold["replayed_ops"] >= active["replayed_ops"]
    for style, row in table.items():
        benchmark.extra_info[style] = row
