# reprolint: module=repro.sim.fixture_flow
"""FLOW002 good: every kind is both sent and handled somewhere."""


class MsgKind:
    PING = "ping"
    RETIRED = "retired"


class Bus:
    def __init__(self):
        self.sent = []

    def send(self, kind, payload):
        self.sent.append((kind, payload))


def emit(bus):
    bus.send(MsgKind.PING, b"x")
    bus.send(MsgKind.RETIRED, b"bye")


def deliver(kind):
    if kind is MsgKind.PING:
        return "pong"
    elif kind is MsgKind.RETIRED:
        return "late"
    else:
        return None
