"""Integration tests: gateway failure scenarios (paper sections 3.4, 3.5).

Timing notes: external clients sit one WAN hop (40 ms) from the
gateway; the SLOW_TOTEM config stretches the in-domain turnaround so a
crash can deterministically land *after* the gateway forwarded the
request but *before* the reply left for the client.
"""

import pytest

from repro import CommFailure, Orb, World
from repro.apps import COUNTER_INTERFACE

from tests.helpers import (
    SLOW_TOTEM,
    crash_gateway_on_response,
    external_client,
    make_counter_group,
    make_domain,
    replica_counts,
)


# ----------------------------------------------------------------------
# Section 3.4: plain ORBs, single gateway
# ----------------------------------------------------------------------

def test_plain_client_loses_outstanding_invocations_on_gateway_crash(world):
    domain = make_domain(world, gateways=1, mirror=False)
    group = make_counter_group(domain)
    _, stub, _ = external_client(world, domain, group, enhanced=False)
    world.await_promise(stub.call("increment", 1))
    gateway = domain.gateways[0]
    crash_gateway_on_response(world, gateway)
    promise = stub.call("increment", 10)
    with pytest.raises(CommFailure):
        world.await_promise(promise, timeout=240)
    # The fate of the invocation is unknown to the client, but the domain
    # DID execute it: the state moved without the client learning it.
    world.run(until=world.now + 1.0)
    assert set(replica_counts(domain, group).values()) == {11}


def test_plain_client_retry_through_new_gateway_duplicates_execution(world):
    """Section 3.4: with counter-assigned ids, a client (or application)
    that re-issues after a gateway failure corrupts server state."""
    domain = make_domain(world, gateways=1, mirror=False)
    group = make_counter_group(domain)
    _, stub, _ = external_client(world, domain, group, enhanced=False)
    world.await_promise(stub.call("increment", 1))
    gateway = domain.gateways[0]
    crash_gateway_on_response(world, gateway)
    promise = stub.call("increment", 10)
    with pytest.raises(CommFailure):
        world.await_promise(promise, timeout=240)
    world.run(until=world.now + 1.0)
    # Application-level retry through a newly added gateway.
    domain.add_gateway(port=2809, mirror_requests=False)
    domain.await_stable()
    _, retry_stub, _ = external_client(world, domain, group, enhanced=False,
                                       host_name="browser2")
    world.await_promise(retry_stub.call("increment", 10), timeout=240)
    # 1 + 10 (lost-but-executed) + 10 (retry) = duplicate execution.
    assert set(replica_counts(domain, group).values()) == {21}


def test_plain_client_cannot_use_backup_gateway_profiles(world):
    """A plain ORB only understands the first profile: even with a
    second gateway alive, its requests fail once gateway 0 is down."""
    domain = make_domain(world, gateways=2, mirror=False)
    group = make_counter_group(domain)
    _, stub, _ = external_client(world, domain, group, enhanced=False)
    world.await_promise(stub.call("increment", 1))
    world.faults.crash_now(domain.gateways[0].host.name)
    world.run(until=world.now + 0.5)
    with pytest.raises(CommFailure):
        world.await_promise(stub.call("increment", 1), timeout=240)


def test_response_for_unknown_client_is_unroutable_at_peer_gateway(world):
    """Without mirroring, a peer gateway receiving a response for a
    client it never saw cannot route it (section 3.4)."""
    domain = make_domain(world, gateways=2, mirror=False)
    group = make_counter_group(domain)
    peer = domain.gateways[1]
    _, stub, _ = external_client(world, domain, group, enhanced=False)
    gateway = domain.gateways[0]
    crash_gateway_on_response(world, gateway)
    promise = stub.call("increment", 5)
    with pytest.raises(CommFailure):
        world.await_promise(promise, timeout=240)
    world.run(until=world.now + 1.0)
    assert peer.stats["responses_unexpected"] >= 1
    assert peer.stats["responses_delivered"] == 0


# ----------------------------------------------------------------------
# Section 3.5: redundant gateways + enhanced client layer
# ----------------------------------------------------------------------

def test_enhanced_client_fails_over_to_next_profile(world):
    domain = make_domain(world, gateways=2)
    group = make_counter_group(domain)
    _, stub, layer = external_client(world, domain, group, enhanced=True)
    world.await_promise(stub.call("increment", 1))
    world.faults.crash_now(domain.gateways[0].host.name)
    assert world.await_promise(stub.call("increment", 1), timeout=240) == 2
    assert layer.failover_log  # the layer really did traverse profiles
    assert layer.failover_log[0][1] == (domain.gateways[1].host.name, 2809)


def test_enhanced_client_reissue_does_not_duplicate_execution(world):
    """The crux of section 3.5: the reissued invocation carries the same
    client uid and request id, so the domain's duplicate detection
    returns the original response instead of re-executing."""
    domain = make_domain(world, gateways=2)
    group = make_counter_group(domain)
    _, stub, _ = external_client(world, domain, group, enhanced=True)
    world.await_promise(stub.call("increment", 1))
    gateway = domain.gateways[0]
    crash_gateway_on_response(world, gateway)
    promise = stub.call("increment", 10)
    # The enhanced client recovers the response via the second gateway.
    assert world.await_promise(promise, timeout=240) == 11
    world.run(until=world.now + 1.0)
    assert set(replica_counts(domain, group).values()) == {11}


def test_enhanced_client_recovers_response_from_mirrored_cache(world):
    """The gateway group (not just the connected gateway) receives the
    response; after failover the second gateway can serve it directly."""
    domain = make_domain(world, gateways=2)
    group = make_counter_group(domain)
    peer = domain.gateways[1]
    _, stub, _ = external_client(world, domain, group, enhanced=True)
    world.await_promise(stub.call("increment", 1))
    crash_gateway_on_response(world, domain.gateways[0])
    promise = stub.call("increment", 10)
    assert world.await_promise(promise, timeout=240) == 11
    # The reply came either from peer's cache or via domain dedup resend;
    # in both cases the peer held the mirrored request.
    assert peer.stats["mirrors_recorded"] >= 1


def test_surviving_gateway_forwards_unforwarded_mirrored_requests(world):
    """If the first gateway dies between mirroring and forwarding, the
    surviving gateway takes over the forward (section 3.5)."""
    domain = make_domain(world, gateways=2)
    group = make_counter_group(domain)
    gateway = domain.gateways[0]
    peer = domain.gateways[1]
    _, stub, _ = external_client(world, domain, group, enhanced=True)
    world.await_promise(stub.call("increment", 1))

    # Suppress the gateway's own forward to force the takeover path: the
    # mirror is multicast, then the gateway dies before forwarding.  The
    # crash fires when the peer has observed the mirror.
    gateway._forward = lambda pending: None
    promise = stub.call("increment", 10)
    world.scheduler.run_until(lambda: peer.stats["mirrors_recorded"] >= 2,
                              timeout=240)
    world.faults.crash_now(gateway.host.name)
    assert world.await_promise(promise, timeout=240) == 11
    assert peer.stats["takeover_forwards"] >= 1
    world.run(until=world.now + 1.0)
    assert set(replica_counts(domain, group).values()) == {11}


def test_three_gateways_second_crash_also_survived(world):
    domain = make_domain(world, gateways=3)
    group = make_counter_group(domain)
    _, stub, layer = external_client(world, domain, group, enhanced=True)
    assert world.await_promise(stub.call("increment", 1)) == 1
    world.faults.crash_now(domain.gateways[0].host.name)
    assert world.await_promise(stub.call("increment", 1), timeout=240) == 2
    world.faults.crash_now(domain.gateways[1].host.name)
    assert world.await_promise(stub.call("increment", 1), timeout=240) == 3
    assert len(layer.failover_log) >= 2


def test_all_gateways_dead_enhanced_client_gives_up(world):
    domain = make_domain(world, gateways=2)
    group = make_counter_group(domain)
    _, stub, _ = external_client(world, domain, group, enhanced=True)
    world.await_promise(stub.call("increment", 1))
    for gateway in domain.gateways:
        world.faults.crash_now(gateway.host.name)
    world.run(until=world.now + 0.5)
    with pytest.raises(CommFailure):
        world.await_promise(stub.call("increment", 1), timeout=600)


def test_gateway_crash_metrics(world):
    """The failover is visible end to end in the metrics registry:
    detection latency is positive and bounded by the failure-detection
    period (token loss timeout) times a small rotation factor, recovery
    duration is recorded exactly once, and the gateway response
    counters partition receipts exactly."""
    domain = make_domain(world, gateways=2)
    group = make_counter_group(domain)
    _, stub, _ = external_client(world, domain, group, enhanced=True)
    world.await_promise(stub.call("increment", 1))
    world.faults.crash_now(domain.gateways[0].host.name)
    assert world.await_promise(stub.call("increment", 1), timeout=240) == 2
    world.run(until=world.now + 1.0)

    m = world.metrics
    detection = m.histogram("fault.detection.latency")
    loss_timeout = next(iter(domain.members.values())).config.token_loss_timeout
    assert detection.count >= 1  # every surviving ring member detects
    assert detection.min > 0
    assert detection.max < loss_timeout * 4

    recovery = m.histogram("fault.recovery.duration")
    assert recovery.count == 1  # one crash, measured exactly once
    assert 0 < recovery.min < 1.0

    received = m.value("gateway.resp.received")
    assert received == (m.value("gateway.dup.suppressed")
                        + m.value("gateway.resp.unexpected")
                        + m.value("gateway.resp.vote_pending")
                        + m.value("gateway.resp.delivered")
                        + m.value("gateway.resp.unroutable"))

    latency = m.histogram("gateway.req.latency")
    assert latency.count == m.value("gateway.resp.delivered")
    assert latency.count >= 2
    assert m.value("host.crashes") == 1


def test_gateway_crash_leaves_domain_consistent(world):
    domain = make_domain(world, gateways=2, totem_config=SLOW_TOTEM)
    group = make_counter_group(domain)
    _, stub, _ = external_client(world, domain, group, enhanced=True)
    promises = [stub.call("increment", 1) for _ in range(5)]
    world.scheduler.call_after(0.045, lambda: world.faults.crash_now(
        domain.gateways[0].host.name))
    world.run_until_done(promises, timeout=600)
    results = sorted(p.result() for p in promises)
    assert results == [1, 2, 3, 4, 5]
    world.run(until=world.now + 1.0)
    assert set(replica_counts(domain, group).values()) == {5}
