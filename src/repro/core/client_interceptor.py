"""The thin client-side interception layer of paper section 3.5.

Plain year-2000 ORBs cannot traverse multi-profile IORs or identify
themselves across connections, so a single gateway is a single point of
failure for their clients (section 3.4).  The paper's remedy — pending
its adoption into client ORBs — is a thin interception layer on the
client side that:

* connects the client to the **first** gateway profile of the stitched
  multi-profile IOR;
* inserts a **unique client identifier** into the service context of
  every IIOP request (safely ignored by ORBs that don't understand it);
* on gateway failure, **transparently skips to the next profile**,
  connects to the next operational gateway, and **reissues every
  pending invocation** with the same client identifier and the same
  request identifiers, so the new gateway (and the domain's duplicate
  detection) can recognise reinvocations and return the original
  responses without re-executing anything.

:class:`FtClientLayer` wraps a plain :class:`~repro.orb.orb.Orb`;
stubs created through it behave exactly like ordinary stubs, but
survive gateway failover.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..errors import CommFailure
from ..iiop.giop import RequestMessage, ServiceContext
from ..iiop.ior import Ior
from ..iiop.service_context import ClientIdContext, SpanContext
from ..orb.connection import IiopClientConnection
from ..orb.dispatch import decode_result
from ..orb.idl import Interface, Operation
from ..orb.orb import Orb, Requester, Stub
from ..sim.world import Promise


@dataclass
class _PendingInvocation:
    encoded: bytes
    op: Operation
    promise: Promise


class FtRequester(Requester):
    """Profile-traversing requester with reissue-on-failover."""

    def __init__(self, layer: "FtClientLayer", ior: Ior) -> None:
        self.layer = layer
        self.orb = layer.orb
        self.profiles: List[Tuple[str, int]] = [
            p.address for p in ior.iiop_profiles()]
        if not self.profiles:
            raise CommFailure("IOR carries no IIOP profiles")
        self.profile_index = 0
        self.pending: Dict[int, _PendingInvocation] = {}
        self.connection: Optional[IiopClientConnection] = None
        self._failover_scheduled = False
        self._failovers_since_reply = 0
        self.stats = {"sent": 0, "reissued": 0, "failovers": 0}
        # Open client.request root spans, keyed by request id (causal
        # tracing; empty unless the world's collector is enabled).
        self._trace_roots: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Requester interface
    # ------------------------------------------------------------------

    def service_contexts(self,
                         request_id: Optional[int] = None) -> List[ServiceContext]:
        contexts = [self.layer.context.to_service_context()]
        spans = self.orb.spans
        if request_id is not None and spans.enabled:
            # Root the invocation's trace here, at request marshalling:
            # the deterministic trace id names the originator and the
            # request, and the gateway parents its own spans under the
            # root it finds in this context.  Reissues after a failover
            # retransmit the same encoded bytes, so the whole failover
            # story lands in one trace.
            ctx = self.layer.context
            trace_id = f"{ctx.client_uid}#{ctx.incarnation}/{request_id}"
            source = f"client/{ctx.client_uid}"
            root = spans.start(trace_id, "client.request", source=source,
                               request_id=request_id)
            spans.instant(trace_id, "client.marshal", parent=root,
                          source=source)
            self._trace_roots[request_id] = root
            contexts.append(
                SpanContext(trace_id, root, hop=0).to_service_context())
        return contexts

    def send(self, stub: Stub, op: Operation, request: RequestMessage,
             encoded: bytes, promise: Promise) -> None:
        if op.oneway:
            try:
                self._ensure_connection().send_oneway(encoded)
            except CommFailure:
                self._schedule_failover()
            # One-ways complete at transmission: close the trace root
            # now (no reply will ever close it).
            self.orb.spans.end(
                self._trace_roots.pop(request.request_id, 0),
                op=op.name, oneway=True)
            promise.resolve(None)
            return
        self.pending[request.request_id] = _PendingInvocation(
            encoded=encoded, op=op, promise=promise)
        self._transmit(request.request_id)

    # ------------------------------------------------------------------
    # Transmission and failover
    # ------------------------------------------------------------------

    @property
    def current_address(self) -> Tuple[str, int]:
        return self.profiles[self.profile_index % len(self.profiles)]

    def _ensure_connection(self) -> IiopClientConnection:
        if self.connection is None or not self.connection.usable:
            self.connection = IiopClientConnection(
                self.orb.tcp, self.orb.host, self.current_address)
        return self.connection

    def _transmit(self, request_id: int) -> None:
        entry = self.pending.get(request_id)
        if entry is None or entry.promise.done:
            return
        self.stats["sent"] += 1
        connection = self._ensure_connection()

        def on_reply(reply) -> None:
            self._on_reply(request_id, reply)

        def on_failure(exc: Exception) -> None:
            self._on_request_failure(request_id, exc)

        connection.send_request(entry.encoded, request_id, on_reply, on_failure)

    def _on_reply(self, request_id: int, reply) -> None:
        entry = self.pending.pop(request_id, None)
        if entry is None or entry.promise.done:
            return
        self._failovers_since_reply = 0
        self.orb.spans.end(self._trace_roots.pop(request_id, 0),
                           op=entry.op.name)
        try:
            value = decode_result(entry.op, reply,
                                  little_endian=reply.little_endian)
        except Exception as exc:
            entry.promise.reject(exc)
        else:
            entry.promise.resolve(value)

    def _on_request_failure(self, request_id: int, exc: Exception) -> None:
        if request_id not in self.pending:
            return
        self._schedule_failover()

    def _schedule_failover(self) -> None:
        """Coalesce the per-request failure callbacks of one connection
        loss into a single profile advance + bulk reissue."""
        if self._failover_scheduled:
            return
        self._failover_scheduled = True
        self.orb.host.scheduler.call_soon(self._failover)

    def _failover(self) -> None:
        self._failover_scheduled = False
        if not self.pending:
            return
        self._failovers_since_reply += 1
        if self._failovers_since_reply > 2 * len(self.profiles):
            # Every gateway profile failed repeatedly: give up like the
            # paper's client would once the IOR is exhausted.
            error = CommFailure("all gateway profiles unreachable")
            for request_id, entry in list(self.pending.items()):
                self.orb.spans.end(self._trace_roots.pop(request_id, 0),
                                   op=entry.op.name, error="CommFailure")
                entry.promise.reject(error)
            self.pending.clear()
            return
        self.stats["failovers"] += 1
        self.profile_index = (self.profile_index + 1) % len(self.profiles)
        self.connection = None
        self.layer.on_failover(self.current_address)
        for request_id in sorted(self.pending):
            self.stats["reissued"] += 1
            self._transmit(request_id)


class MuxRequester(FtRequester):
    """An FtRequester multiplexed over the ORB's shared connection cache.

    :class:`FtRequester` opens a private TCP connection per requester —
    right for one interactive client, ruinous for a farm of 10^5–10^6
    logical clients.  This variant draws connections from
    :meth:`~repro.orb.orb.Orb.connection_to` instead, so every logical
    client homed on the same gateway shares one TCP connection while
    still stamping its own identity context on each request.  The
    gateway's per-connection member tracking keeps gone/purge handling
    correct for every multiplexed identity.

    Failover semantics are unchanged: when the shared connection dies,
    each multiplexed requester's pending invocations fail, and each
    advances to its next IOR profile and reissues — landing on the ring
    successor that inherits its key range under a gateway pool.
    """

    def _ensure_connection(self) -> IiopClientConnection:
        self.connection = self.orb.connection_to(self.current_address)
        return self.connection


class FtClientLayer:
    """Factory for fault-tolerance-aware stubs over a plain ORB."""

    _uids = itertools.count(1)

    def __init__(self, orb: Orb, client_uid: Optional[str] = None,
                 incarnation: int = 1) -> None:
        self.orb = orb
        uid = client_uid or f"ftclient/{orb.host.name}/{next(FtClientLayer._uids)}"
        self.context = ClientIdContext(client_uid=uid, incarnation=incarnation)
        self.requesters: List[FtRequester] = []
        self.failover_log: List[Tuple[float, Tuple[str, int]]] = []

    @property
    def client_uid(self) -> str:
        return self.context.client_uid

    def string_to_object(self, ior: Any, interface: Interface,
                         multiplexed: bool = False) -> Stub:
        """Create a gateway-failover-capable stub for ``ior``.

        ``multiplexed`` shares the ORB's cached connections instead of
        opening a private one per requester (farm workloads: many
        logical clients per host — see :class:`MuxRequester`).
        """
        if isinstance(ior, str):
            ior = Ior.from_string(ior)
        requester_cls = MuxRequester if multiplexed else FtRequester
        requester = requester_cls(self, ior)
        self.requesters.append(requester)
        return Stub(self.orb, ior, interface, requester=requester)

    def on_failover(self, new_address: Tuple[str, int]) -> None:
        self.failover_log.append((self.orb.host.scheduler.now, new_address))

    def restart(self) -> "FtClientLayer":
        """Model a client process restart: a new incarnation of the same
        identity (so gateways do not mistake it for the old process)."""
        return FtClientLayer(self.orb, client_uid=self.context.client_uid,
                             incarnation=self.context.incarnation + 1)
