"""The Eternal fault tolerance infrastructure (paper Figure 2).

Everything inside a fault tolerance domain: the per-processor
Replication Mechanisms over Totem, logging/recovery, the replicated
Replication Manager, the Resource and Evolution managers, the IOR
interceptor, cross-domain egress, and the domain orchestration object.
"""

from .domain import FaultToleranceDomain, GroupHandle
from .egress import DomainEgress
from .fault_detector import FaultDetector
from .fault_notifier import FaultKind, FaultNotifier, FaultReport
from .interceptor import EternalInterceptor
from .logging_recovery import Checkpoint, GroupLog
from .managers import (
    EvolutionManager,
    REPLICATION_MANAGER_INTERFACE,
    ReplicationManagerServant,
    ResourceManager,
)
from .messages import DomainMessage, MsgKind
from .naming import (
    EXTERNAL_GROUP,
    FIRST_APPLICATION_GROUP,
    GATEWAY_GROUP,
    REPLICATION_MANAGER_GROUP,
    make_object_key,
    parse_object_key,
)
from .properties import FaultToleranceProperties
from .registry import GroupInfo, GroupRegistry
from .replication import ReplicationMechanisms
from .report import domain_report, format_report
from .styles import ReplicationStyle

__all__ = [
    "Checkpoint",
    "DomainEgress",
    "DomainMessage",
    "EXTERNAL_GROUP",
    "EternalInterceptor",
    "FaultDetector",
    "FaultKind",
    "FaultNotifier",
    "FaultReport",
    "EvolutionManager",
    "FaultToleranceProperties",
    "FIRST_APPLICATION_GROUP",
    "FaultToleranceDomain",
    "GATEWAY_GROUP",
    "GroupHandle",
    "GroupInfo",
    "GroupLog",
    "GroupRegistry",
    "MsgKind",
    "REPLICATION_MANAGER_GROUP",
    "REPLICATION_MANAGER_INTERFACE",
    "ReplicationManagerServant",
    "ReplicationMechanisms",
    "ReplicationStyle",
    "ResourceManager",
    "domain_report",
    "format_report",
    "make_object_key",
    "parse_object_key",
]
