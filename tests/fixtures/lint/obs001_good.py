# reprolint: module=repro.core.fake
"""OBS001 good fixture: catalogued names, wildcard families, and
dynamic (non-literal) names, which the rule skips."""


def record(metrics, spans, trace_id, action):
    metrics.counter("gateway.req.received").inc()
    metrics.gauge("gateway.state.pending").set(0)
    metrics.counter(f"fault.injected.{action}").inc()
    spans.start(trace_id, "gateway.request")


def record_series(series, flight, histogram, name):
    series.observe("series.gateway.group.latency", 0.1, group="1")
    series.sample("series.sched.queue_depth", lambda: 0)
    flight.record("flight.fault", action="crash", target="h1")
    histogram.observe(0.25)        # float arg: not a series name
    series.observe(name, 1.0)      # dynamic name: out of scope
    flight.record("shutdown")      # undotted kind: not checked
