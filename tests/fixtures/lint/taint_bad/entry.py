# reprolint: module=repro.sim.fixture_entry
"""Deterministic entry points that reach host sinks via helpers.

No line in this file touches a sink directly — the per-file rules
(DET001/DET002/SIM001) see nothing.  Every entry point below must be
caught by the interprocedural pass instead.
"""

from fixturelib.hostglue import jitter, nap, tagged_stamp


def record_event(log):
    log.append(tagged_stamp("event"))


def pick_backoff():
    return 1.0 + jitter()


def settle():
    nap(0.01)
