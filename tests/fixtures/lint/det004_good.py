# reprolint: module=repro.obs.fake
"""DET004 good fixture: id() is fine outside the deterministic
packages (repro.obs is host-side), and stable keys are always fine."""


def cache_key(obj):
    return id(obj)


def tiebreak(a, b):
    return a if a.name < b.name else b
