"""Integration tests for the simulated TCP layer."""

import pytest

from repro.errors import CommFailure
from repro.sim import World


def make_world(**kwargs):
    return World(seed=7, **kwargs)


def establish(world, client_host, server_host, port=2809):
    """Connect client->server; returns (client_endpoint, server_endpoint)."""
    accepted = []
    world.tcp.listen(server_host, port, accepted.append)
    result = {}
    world.tcp.connect(
        client_host, (server_host.name, port),
        lambda ep: result.setdefault("client", ep),
        lambda exc: result.setdefault("error", exc),
    )
    world.scheduler.run_until(lambda: "client" in result or "error" in result)
    if "error" in result:
        raise result["error"]
    assert len(accepted) == 1
    return result["client"], accepted[0]


def test_connect_and_exchange_bytes():
    world = make_world()
    a = world.add_host("client")
    b = world.add_host("server")
    client, server = establish(world, a, b)

    received = []
    server.on_data = received.append
    client.send(b"hello gateway")
    world.run(until=world.now + 1.0)
    assert b"".join(received) == b"hello gateway"


def test_bidirectional_traffic():
    world = make_world()
    a = world.add_host("client")
    b = world.add_host("server")
    client, server = establish(world, a, b)

    to_server, to_client = [], []
    server.on_data = to_server.append
    client.on_data = to_client.append
    client.send(b"ping")
    server.send(b"pong")
    world.run(until=world.now + 1.0)
    assert b"".join(to_server) == b"ping"
    assert b"".join(to_client) == b"pong"


def test_fifo_ordering_of_many_sends():
    world = make_world()
    a = world.add_host("client")
    b = world.add_host("server")
    client, server = establish(world, a, b)

    received = []
    server.on_data = received.append
    for i in range(50):
        client.send(bytes([i]))
    world.run(until=world.now + 1.0)
    assert b"".join(received) == bytes(range(50))


def test_mtu_segmentation_preserves_stream():
    world = World(seed=1, mtu=3)
    a = world.add_host("client")
    b = world.add_host("server")
    client, server = establish(world, a, b)

    received = []
    server.on_data = received.append
    client.send(b"abcdefghij")
    world.run(until=world.now + 1.0)
    assert b"".join(received) == b"abcdefghij"
    assert len(received) > 1  # genuinely segmented


def test_connect_to_unbound_port_fails():
    world = make_world()
    a = world.add_host("client")
    world.add_host("server")
    result = {}
    world.tcp.connect(a, ("server", 9999),
                      lambda ep: result.setdefault("ok", ep),
                      lambda exc: result.setdefault("error", exc))
    world.scheduler.run_until(lambda: result)
    assert isinstance(result["error"], CommFailure)


def test_connect_to_dead_host_fails():
    world = make_world()
    a = world.add_host("client")
    b = world.add_host("server")
    world.tcp.listen(b, 2809, lambda ep: None)
    b.crash()
    result = {}
    world.tcp.connect(a, ("server", 2809),
                      lambda ep: result.setdefault("ok", ep),
                      lambda exc: result.setdefault("error", exc))
    world.scheduler.run_until(lambda: result)
    assert isinstance(result["error"], CommFailure)


def test_close_notifies_peer():
    world = make_world()
    a = world.add_host("client")
    b = world.add_host("server")
    client, server = establish(world, a, b)

    closed = []
    server.on_close = lambda: closed.append(True)
    client.close()
    world.run(until=world.now + 1.0)
    assert closed == [True]
    assert not server.open


def test_host_crash_severs_connection():
    world = make_world()
    a = world.add_host("client")
    b = world.add_host("server")
    client, server = establish(world, a, b)

    closed = []
    client.on_close = lambda: closed.append(True)
    b.crash()
    world.run(until=world.now + 1.0)
    assert closed == [True]
    with pytest.raises(CommFailure):
        client.send(b"into the void")


def test_send_on_closed_connection_raises():
    world = make_world()
    a = world.add_host("client")
    b = world.add_host("server")
    client, server = establish(world, a, b)
    client.close()
    with pytest.raises(CommFailure):
        client.send(b"x")


def test_multiple_clients_get_distinct_server_sockets():
    """The gateway pattern: one listener, one spawned socket per client."""
    world = make_world()
    server_host = world.add_host("gw")
    accepted = []
    world.tcp.listen(server_host, 2809, accepted.append)
    clients = []
    for i in range(5):
        host = world.add_host(f"client{i}")
        world.tcp.connect(host, ("gw", 2809),
                          clients.append, lambda exc: None)
    world.scheduler.run_until(lambda: len(clients) == 5 and len(accepted) == 5)
    assert len({ep.conn_id for ep in accepted}) == 5
    # Traffic on one spawned socket does not leak to another.
    received = {i: [] for i in range(5)}
    for i, ep in enumerate(accepted):
        ep.on_data = received[i].append
    clients[2].send(b"only-two")
    world.run(until=world.now + 1.0)
    assert b"".join(received[2]) == b"only-two"
    assert all(not received[i] for i in range(5) if i != 2)


def test_partition_blocks_connect():
    world = make_world()
    a = world.add_host("client")
    b = world.add_host("server")
    world.tcp.listen(b, 2809, lambda ep: None)
    world.network.partition({"client"}, {"server"})
    result = {}
    world.tcp.connect(a, ("server", 2809),
                      lambda ep: result.setdefault("ok", ep),
                      lambda exc: result.setdefault("error", exc))
    world.scheduler.run_until(lambda: result)
    assert isinstance(result["error"], CommFailure)
