"""Simulated TCP: reliable FIFO byte streams with listen/accept/close.

This is the transport the paper's *unreplicated* clients use to reach
the gateway.  The gateway's behaviour on this side is protocol-visible:
it listens on a dedicated {gateway host, gateway port}, spawns a new
socket per incoming client, and destroys it when the connection ends
(paper section 3.1) — all of which this module models faithfully.

Streams are byte-oriented: receivers get ``bytes`` chunks whose
boundaries carry no meaning.  An optional ``mtu`` slices every send into
smaller segments so that GIOP framing code is genuinely exercised
against partial reads.  Host crashes sever connections: the surviving
peer observes ``on_close`` after one propagation delay, like a RST.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import CommFailure, ConfigurationError
from .host import Host
from .network import Network

Address = Tuple[str, int]


class TcpEndpoint:
    """One side of an established simulated TCP connection."""

    _ids = itertools.count(1)

    def __init__(self, stack: "TcpStack", host: Host, local_addr: Address,
                 remote_addr: Address) -> None:
        self.stack = stack
        self.host = host
        self.local_addr = local_addr
        self.remote_addr = remote_addr
        self.conn_id = next(TcpEndpoint._ids)
        self.open = True
        self.peer: Optional["TcpEndpoint"] = None
        self.bytes_sent = 0
        self.bytes_received = 0
        # Assignable callbacks; set before any data can arrive.
        self.on_data: Callable[[bytes], None] = lambda data: None
        self.on_close: Callable[[], None] = lambda: None

    def send(self, data: bytes) -> None:
        """Queue ``data`` for in-order delivery to the peer."""
        if not self.open:
            raise CommFailure(f"send on closed connection {self.local_addr}->{self.remote_addr}")
        if not self.host.alive:
            raise CommFailure(f"send from dead host {self.host.name}")
        if not data:
            return
        self.bytes_sent += len(data)
        peer = self.peer
        if peer is None:
            return
        mtu = self.stack.mtu
        segments: List[bytes]
        if mtu is None or len(data) <= mtu:
            segments = [data]
        else:
            segments = [data[i:i + mtu] for i in range(0, len(data), mtu)]
        for segment in segments:
            self.stack.network.send(
                self.host, peer.host, segment, lambda s, p=peer: p._deliver(s),
                size=len(segment),
            )

    def _deliver(self, data: bytes) -> None:
        if not self.open:
            return
        self.bytes_received += len(data)
        self.on_data(data)

    def close(self) -> None:
        """Close both directions; peer observes on_close after latency."""
        if not self.open:
            return
        self.open = False
        self.stack._forget(self)
        peer = self.peer
        if peer is not None and self.host.alive:
            self.stack.network.send(
                self.host, peer.host, None, lambda _ : peer._peer_closed(), size=0,
            )

    def _peer_closed(self) -> None:
        if not self.open:
            return
        self.open = False
        self.stack._forget(self)
        self.on_close()

    def abort_local(self) -> None:
        """Kill this endpoint without notifying anyone (host crash path)."""
        self.open = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.open else "closed"
        return f"<TcpEndpoint #{self.conn_id} {self.local_addr}->{self.remote_addr} {state}>"


class TcpListener:
    """A passive socket bound to {host, port}, accepting connections."""

    def __init__(self, stack: "TcpStack", host: Host, port: int,
                 on_accept: Callable[[TcpEndpoint], None]) -> None:
        self.stack = stack
        self.host = host
        self.port = port
        self.on_accept = on_accept
        self.open = True
        self.accepted_count = 0

    def close(self) -> None:
        if not self.open:
            return
        self.open = False
        self.stack._listeners.pop((self.host.name, self.port), None)


class TcpStack:
    """Factory for listeners and connections over a simulated network."""

    def __init__(self, network: Network, mtu: Optional[int] = None) -> None:
        self.network = network
        self.mtu = mtu
        self._listeners: Dict[Address, TcpListener] = {}
        self._endpoints_by_host: Dict[str, List[TcpEndpoint]] = {}
        self._ephemeral = itertools.count(30000)
        network.on_host_crash(self._handle_host_crash)

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------

    def listen(self, host: Host, port: int,
               on_accept: Callable[[TcpEndpoint], None]) -> TcpListener:
        key = (host.name, port)
        if key in self._listeners:
            raise ConfigurationError(f"port {port} already bound on {host.name}")
        listener = TcpListener(self, host, port, on_accept)
        self._listeners[key] = listener
        return listener

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def connect(
        self,
        host: Host,
        address: Address,
        on_connected: Callable[[TcpEndpoint], None],
        on_error: Callable[[Exception], None],
    ) -> None:
        """Open a connection from ``host`` to ``address`` (host name, port).

        Both callbacks fire after the network round trip: ``on_connected``
        with the client-side endpoint on success, ``on_error`` with a
        :class:`CommFailure` when nothing is listening, the target host
        is dead, or a partition intervenes.
        """
        if not host.alive:
            raise CommFailure(f"connect from dead host {host.name}")
        target_name, port = address
        scheduler = self.network.scheduler
        rtt = 2 * self.network.latency_model.latency(host.name, target_name)

        def attempt() -> None:
            if not host.alive:
                return
            listener = self._listeners.get((target_name, port))
            target = self.network.hosts.get(target_name)
            reachable = (
                listener is not None
                and listener.open
                and target is not None
                and target.alive
                and self.network.can_communicate(host.name, target_name)
            )
            if not reachable:
                on_error(CommFailure(f"connection refused: {target_name}:{port}"))
                return
            local_port = next(self._ephemeral)
            client_end = TcpEndpoint(self, host, (host.name, local_port),
                                     (target_name, port))
            server_end = TcpEndpoint(self, target, (target_name, port),
                                     (host.name, local_port))
            client_end.peer = server_end
            server_end.peer = client_end
            self._endpoints_by_host.setdefault(host.name, []).append(client_end)
            self._endpoints_by_host.setdefault(target_name, []).append(server_end)
            listener.accepted_count += 1
            listener.on_accept(server_end)
            on_connected(client_end)

        scheduler.call_after(rtt, attempt)

    # ------------------------------------------------------------------
    # Failure propagation
    # ------------------------------------------------------------------

    def _handle_host_crash(self, host: Host) -> None:
        for key in [k for k in self._listeners if k[0] == host.name]:
            self._listeners[key].open = False
            del self._listeners[key]
        endpoints = self._endpoints_by_host.pop(host.name, [])
        scheduler = self.network.scheduler
        for endpoint in endpoints:
            endpoint.abort_local()
            peer = endpoint.peer
            if peer is None:
                continue
            # The crashed host cannot send a FIN, but the peer's TCP stack
            # detects the broken connection after a propagation delay
            # (RST on next probe / keepalive timeout, compressed here).
            delay = self.network.latency_model.latency(host.name, peer.host.name)

            def notify(p: TcpEndpoint = peer) -> None:
                if p.open and p.host.alive:
                    p._peer_closed()

            scheduler.call_after(delay, notify)

    def _forget(self, endpoint: TcpEndpoint) -> None:
        endpoints = self._endpoints_by_host.get(endpoint.host.name)
        if endpoints and endpoint in endpoints:
            endpoints.remove(endpoint)
