# reprolint: module=fixturelib.cleanglue
"""Sanctioned host glue: the one wall read is a justified boundary."""

import random
import time


def sanctioned_stamp():
    # A justified base-code suppression marks the sanctioned boundary
    # (the hostclock pattern); taint must NOT propagate to callers.
    # reprolint: disable=DET001 -- fixture: sanctioned host-time boundary
    return time.time()


def seeded_rng(seed):
    # Explicit seeded Random is the sanctioned pattern, not a sink.
    return random.Random(seed)


def shape(values):
    return sorted(values)
