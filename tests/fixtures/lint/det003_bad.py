# reprolint: module=repro.totem.fake
"""DET003 bad fixture: unordered set iteration in scheduling code."""


def order(hosts):
    members = {h for h in hosts}
    out = []
    for h in members:
        out.append(h)
    return out


def names(mapping, extra):
    pending = set(extra)
    return list(pending), ",".join(mapping.keys() | {"x"})
