"""A soak-style integration scenario: everything at once.

One domain runs active, warm-passive and voting groups with nested
calls; two gateways serve a mix of plain and enhanced clients; hosts
and a gateway crash mid-run; the resource manager replaces replicas.
At the end, every surviving replica of every group must agree and all
enhanced-client operations must have exactly-once effects.
"""

import pytest

from repro import FtClientLayer, Orb, ReplicationStyle, World
from repro.apps import (
    ACCOUNT_INTERFACE,
    AccountServant,
    COUNTER_INTERFACE,
    CounterServant,
    LEDGER_INTERFACE,
    LedgerServant,
    TRANSFER_INTERFACE,
    TransferAgentServant,
)

from tests.helpers import make_domain


def group_states(domain, group_id, extract):
    values = set()
    for rm in domain.rms.values():
        record = rm.replicas.get(group_id)
        if record is not None and rm.alive and record.ready:
            values.add(extract(record.servant))
    return values


@pytest.mark.parametrize("seed", [1, 7, 99])
def test_soak_everything_at_once(seed):
    world = World(seed=seed, trace=False)
    domain = make_domain(world, num_hosts=5, gateways=2)
    accounts = domain.create_group("Accounts", ACCOUNT_INTERFACE,
                                   AccountServant, num_replicas=3,
                                   min_replicas=3)
    domain.create_group("Ledger", LEDGER_INTERFACE, LedgerServant,
                        num_replicas=3)
    transfers = domain.create_group("Transfers", TRANSFER_INTERFACE,
                                    TransferAgentServant, num_replicas=3)
    counter = domain.create_group("Counter", COUNTER_INTERFACE,
                                  CounterServant,
                                  style=ReplicationStyle.WARM_PASSIVE,
                                  num_replicas=3, min_replicas=2)
    world.await_promise(accounts.invoke("deposit", "alice", 1_000),
                        timeout=600)

    # Two enhanced browsers and one plain browser.
    stubs = []
    for i, enhanced in enumerate((True, True, False)):
        host = world.add_host(f"browser{i}")
        orb = Orb(world, host, request_timeout=None)
        ior = domain.ior_for(transfers).to_string()
        if enhanced:
            layer = FtClientLayer(orb, client_uid=f"soak/{i}")
            stubs.append(layer.string_to_object(ior, TRANSFER_INTERFACE))
        else:
            stubs.append(orb.string_to_object(ior, TRANSFER_INTERFACE))

    counter_host = world.add_host("counter-browser")
    counter_orb = Orb(world, counter_host, request_timeout=None)
    counter_layer = FtClientLayer(counter_orb, client_uid="soak/counter")
    counter_stub = counter_layer.string_to_object(
        domain.ior_for(counter).to_string(), COUNTER_INTERFACE)

    # Fault schedule: a replica host dies early, a gateway dies later.
    victim_host = transfers.info().placement[0]
    world.faults.crash_host(victim_host, at=world.now + 0.15)
    world.faults.crash_host(domain.gateways[0].host.name, at=world.now + 0.35)

    # Workload: interleaved transfers (nested) and counter increments.
    completed_transfers = 0
    for round_no in range(6):
        promises = [stub.call("transfer", "alice", "bob", 10)
                    for stub in stubs[:2]]          # enhanced clients only
        promises.append(counter_stub.call("increment", 1))
        try:
            world.run_until_done(promises, timeout=600)
        except Exception:
            pass
        for promise in promises[:2]:
            if promise.done and not promise.failed:
                completed_transfers += 1

    world.run(until=world.now + 2.0)

    # Invariants: replicas agree; books balance; effects exactly once.
    balances = group_states(domain, accounts.group_id,
                            lambda s: tuple(sorted(s.balances.items())))
    assert len(balances) == 1, balances
    balance = dict(balances.pop())
    assert balance["alice"] + balance["bob"] == 1_000
    assert balance["bob"] == 10 * completed_transfers

    ledger_group = domain.resolve("Ledger")
    entries = group_states(domain, ledger_group.group_id,
                           lambda s: len(s.log))
    assert entries == {completed_transfers}

    counts = group_states(domain, counter.group_id, lambda s: s.count)
    assert counts == {6}
