"""Smoke-run every example script so the examples can never rot.

Each example is executed in-process (runpy) with stdout captured; a
non-zero amount of output and no exception is the pass criterion.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_cleanly(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    captured = capsys.readouterr()
    assert captured.out.strip(), f"{script.name} produced no output"


def test_module_entry_point(capsys):
    from repro.__main__ import main
    assert main([]) == 0
    assert "replica agreement: OK" in capsys.readouterr().out


def test_module_entry_point_metrics_flag(capsys):
    from repro.__main__ import main
    assert main(["--metrics"]) == 0
    out = capsys.readouterr().out
    assert "metrics registry:" in out
    assert "gateway.req.latency" in out


def test_module_entry_point_metrics_json_deterministic(capsys):
    from repro.__main__ import main
    assert main(["--metrics-json", "--seed", "7"]) == 0
    first = capsys.readouterr().out.splitlines()[-1]
    assert main(["--metrics-json", "--seed", "7"]) == 0
    second = capsys.readouterr().out.splitlines()[-1]
    assert first.startswith('{"metrics":')
    assert first == second
