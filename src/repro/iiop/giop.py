"""GIOP 1.0 messages: headers, Request, Reply, framing.

The gateway's job (paper section 3.2) is to pick complete IIOP messages
off a TCP byte stream, interpret just enough of them (object key,
request id, service contexts) to route and deduplicate, and forward the
*whole message* into or out of the fault tolerance domain.  This module
provides exactly that: message encode/decode plus an incremental
:class:`GiopFramer` that tolerates arbitrary segmentation of the byte
stream.

GIOP 1.0 is used because it is what 1999/2000-era ORBs spoke; its
Request header carries the ``principal`` field and a boolean byte-order
flag, both encoded here faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import MarshalError
from .cdr import CdrInputStream, CdrOutputStream

GIOP_MAGIC = b"GIOP"
GIOP_HEADER_SIZE = 12


class MsgType:
    """GIOP message type octet values."""

    REQUEST = 0
    REPLY = 1
    CANCEL_REQUEST = 2
    LOCATE_REQUEST = 3
    LOCATE_REPLY = 4
    CLOSE_CONNECTION = 5
    MESSAGE_ERROR = 6


class ReplyStatus:
    """GIOP reply status values."""

    NO_EXCEPTION = 0
    USER_EXCEPTION = 1
    SYSTEM_EXCEPTION = 2
    LOCATION_FORWARD = 3


@dataclass
class ServiceContext:
    """One entry of a GIOP service context list.

    The paper's enhanced client layer (section 3.5) uses a vendor
    service context to carry the unique TCP client identifier; standard
    ORBs ignore contexts they do not understand, which is the property
    the paper relies on.
    """

    context_id: int
    data: bytes


@dataclass
class RequestMessage:
    """GIOP 1.0 Request (header fields + opaque body bytes)."""

    request_id: int
    response_expected: bool
    object_key: bytes
    operation: str
    service_contexts: List[ServiceContext] = field(default_factory=list)
    principal: bytes = b""
    body: bytes = b""
    little_endian: bool = False  # wire byte order, set by decode_request

    def find_context(self, context_id: int) -> Optional[bytes]:
        for ctx in self.service_contexts:
            if ctx.context_id == context_id:
                return ctx.data
        return None


@dataclass
class ReplyMessage:
    """GIOP 1.0 Reply (header fields + opaque body bytes)."""

    request_id: int
    status: int
    service_contexts: List[ServiceContext] = field(default_factory=list)
    body: bytes = b""
    little_endian: bool = False  # wire byte order, set by decode_reply


def _write_service_contexts(out: CdrOutputStream,
                            contexts: List[ServiceContext]) -> None:
    out.write_ulong(len(contexts))
    for ctx in contexts:
        out.write_ulong(ctx.context_id)
        out.write_octets(ctx.data)


def _read_service_contexts(stream: CdrInputStream) -> List[ServiceContext]:
    count = stream.read_ulong()
    if count > 1024:
        raise MarshalError(f"implausible service context count {count}")
    contexts = []
    for _ in range(count):
        context_id = stream.read_ulong()
        data = stream.read_octets()
        contexts.append(ServiceContext(context_id, data))
    return contexts


def _giop_header(message_type: int, size: int, little_endian: bool) -> bytes:
    header = bytearray()
    header.extend(GIOP_MAGIC)
    header.append(1)  # major
    header.append(0)  # minor
    header.append(1 if little_endian else 0)
    header.append(message_type)
    header.extend(size.to_bytes(4, "little" if little_endian else "big"))
    return bytes(header)


def _finalise(out: CdrOutputStream, message_type: int,
              little_endian: bool) -> bytes:
    """Patch the real header over the reserved 12-byte slot and return
    the complete message in a single copy."""
    size = len(out) - GIOP_HEADER_SIZE
    out.patch_raw(0, _giop_header(message_type, size, little_endian))
    return out.getvalue()


def encode_request(msg: RequestMessage, little_endian: bool = False) -> bytes:
    """Encode a complete GIOP 1.0 Request message (header + body)."""
    out = CdrOutputStream(little_endian=little_endian)
    # Body alignment in GIOP is relative to the start of the message;
    # the 12-byte header keeps 4- and 8-byte alignment congruent, so we
    # reserve the header slot up front and patch the real header in
    # place once the body length is known.
    out.write_raw(b"\x00" * GIOP_HEADER_SIZE)
    _write_service_contexts(out, msg.service_contexts)
    out.write_ulong(msg.request_id)
    out.write_boolean(msg.response_expected)
    out.write_octets(msg.object_key)
    out.write_string(msg.operation)
    out.write_octets(msg.principal)
    # Deviation from strict GIOP 1.0, applied consistently on both
    # paths: the body starts on an 8-byte boundary so argument bytes can
    # be marshalled in a standalone buffer (offset 0) and spliced in.
    out.align(8)
    out.write_raw(msg.body)
    return _finalise(out, MsgType.REQUEST, little_endian)


def encode_reply(msg: ReplyMessage, little_endian: bool = False) -> bytes:
    """Encode a complete GIOP 1.0 Reply message (header + body)."""
    out = CdrOutputStream(little_endian=little_endian)
    out.write_raw(b"\x00" * GIOP_HEADER_SIZE)
    _write_service_contexts(out, msg.service_contexts)
    out.write_ulong(msg.request_id)
    out.write_ulong(msg.status)
    out.align(8)  # body alignment, see encode_request
    out.write_raw(msg.body)
    return _finalise(out, MsgType.REPLY, little_endian)


class LocateStatus:
    """GIOP LocateReply status values."""

    UNKNOWN_OBJECT = 0
    OBJECT_HERE = 1
    OBJECT_FORWARD = 2


# reprolint: disable=FLOW002 -- client-side encoder: in-tree ORBs only decode LocateRequests; plain-ORB test clients emit them
def encode_locate_request(request_id: int, object_key: bytes,
                          little_endian: bool = False) -> bytes:
    """GIOP 1.0 LocateRequest: 'is this object here?' probes that real
    ORBs send before (or instead of) a first request."""
    out = CdrOutputStream(little_endian=little_endian)
    out.write_raw(b"\x00" * GIOP_HEADER_SIZE)
    out.write_ulong(request_id)
    out.write_octets(object_key)
    return _finalise(out, MsgType.LOCATE_REQUEST, little_endian)


def decode_locate_request(message: bytes) -> Tuple[int, bytes]:
    """Returns (request_id, object_key)."""
    message_type, little_endian, size = parse_header(message)
    if message_type != MsgType.LOCATE_REQUEST:
        raise MarshalError(f"not a LocateRequest (type {message_type})")
    stream = _body_stream(message, little_endian)
    request_id = stream.read_ulong()
    object_key = stream.read_octets()
    return request_id, object_key


def encode_locate_reply(request_id: int, status: int,
                        little_endian: bool = False,
                        forward_ior=None) -> bytes:
    """GIOP LocateReply.  An ``OBJECT_FORWARD`` status carries the IOR
    the client should retry against as the reply body, exactly as GIOP
    1.0 specifies; ``decode_locate_reply`` reads only the two leading
    ulongs, so readers unaware of the body remain compatible."""
    out = CdrOutputStream(little_endian=little_endian)
    out.write_raw(b"\x00" * GIOP_HEADER_SIZE)
    out.write_ulong(request_id)
    out.write_ulong(status)
    if forward_ior is not None:
        forward_ior.encode(out)
    return _finalise(out, MsgType.LOCATE_REPLY, little_endian)


def decode_locate_reply(message: bytes) -> Tuple[int, int]:
    """Returns (request_id, locate_status)."""
    message_type, little_endian, size = parse_header(message)
    if message_type != MsgType.LOCATE_REPLY:
        raise MarshalError(f"not a LocateReply (type {message_type})")
    stream = _body_stream(message, little_endian)
    return stream.read_ulong(), stream.read_ulong()


# reprolint: disable=FLOW002,FLOW003 -- client-side decoder for the OBJECT_FORWARD body that encode_locate_reply(forward_ior=...) emits; re-homed plain-ORB test clients call it
def decode_locate_forward(message: bytes):
    """Decode the forwarding IOR from an ``OBJECT_FORWARD`` LocateReply;
    ``None`` when the reply carries another status (or no body)."""
    from .ior import Ior  # giop does not depend on ior at import time
    message_type, little_endian, size = parse_header(message)
    if message_type != MsgType.LOCATE_REPLY:
        raise MarshalError(f"not a LocateReply (type {message_type})")
    stream = _body_stream(message, little_endian)
    stream.read_ulong()  # request_id
    if stream.read_ulong() != LocateStatus.OBJECT_FORWARD:
        return None
    return Ior.decode(stream)


# reprolint: disable=FLOW002 -- client-side encoder: in-tree gateways only decode CancelRequests; test clients emit them
def encode_cancel_request(request_id: int, little_endian: bool = False) -> bytes:
    """GIOP CancelRequest: best-effort 'stop working on request N'."""
    out = CdrOutputStream(little_endian=little_endian)
    out.write_raw(b"\x00" * GIOP_HEADER_SIZE)
    out.write_ulong(request_id)
    return _finalise(out, MsgType.CANCEL_REQUEST, little_endian)


def decode_cancel_request(message: bytes) -> int:
    """Returns the cancelled request_id."""
    message_type, little_endian, size = parse_header(message)
    if message_type != MsgType.CANCEL_REQUEST:
        raise MarshalError(f"not a CancelRequest (type {message_type})")
    stream = _body_stream(message, little_endian)
    return stream.read_ulong()


# reprolint: disable=FLOW002,FLOW003 -- header-only message (no body to decode); we never originate CloseConnection but peer ORBs may, and the client connection handles it
def encode_close_connection(little_endian: bool = False) -> bytes:
    return _giop_header(MsgType.CLOSE_CONNECTION, 0, little_endian)


# reprolint: disable=FLOW003 -- header-only message: MESSAGE_ERROR carries no body, parse_header is its decoder
def encode_message_error(little_endian: bool = False) -> bytes:
    return _giop_header(MsgType.MESSAGE_ERROR, 0, little_endian)


def parse_header(data) -> Tuple[int, bool, int]:
    """Parse a 12-byte GIOP header -> (message_type, little_endian, size).

    Accepts any bytes-like buffer (``bytes``, ``bytearray``,
    ``memoryview``) so callers can parse borrowed views in place.
    """
    if len(data) < GIOP_HEADER_SIZE:
        raise MarshalError("short GIOP header")
    if data[:4] != GIOP_MAGIC:
        raise MarshalError(f"bad GIOP magic {data[:4]!r}")
    major, minor = data[4], data[5]
    if major != 1:
        raise MarshalError(f"unsupported GIOP version {major}.{minor}")
    little_endian = bool(data[6] & 1)
    message_type = data[7]
    size = int.from_bytes(data[8:12], "little" if little_endian else "big")
    return message_type, little_endian, size


def _body_stream(message: bytes, little_endian: bool) -> CdrInputStream:
    """Stream over the whole message with the cursor past the header,
    preserving message-relative alignment."""
    stream = CdrInputStream(message, little_endian=little_endian)
    stream.read_raw(GIOP_HEADER_SIZE)
    return stream


def decode_request(message: bytes) -> RequestMessage:
    """Decode a complete Request message (as produced by the framer)."""
    message_type, little_endian, size = parse_header(message)
    if message_type != MsgType.REQUEST:
        raise MarshalError(f"not a Request message (type {message_type})")
    if len(message) != GIOP_HEADER_SIZE + size:
        raise MarshalError("Request size mismatch")
    stream = _body_stream(message, little_endian)
    contexts = _read_service_contexts(stream)
    request_id = stream.read_ulong()
    response_expected = stream.read_boolean()
    object_key = stream.read_octets()
    operation = stream.read_string()
    principal = stream.read_octets()
    stream.align(8)
    body = stream.read_raw(stream.remaining)
    return RequestMessage(
        request_id=request_id,
        response_expected=response_expected,
        object_key=object_key,
        operation=operation,
        service_contexts=contexts,
        principal=principal,
        body=body,
        little_endian=little_endian,
    )


def decode_reply(message: bytes) -> ReplyMessage:
    """Decode a complete Reply message (as produced by the framer)."""
    message_type, little_endian, size = parse_header(message)
    if message_type != MsgType.REPLY:
        raise MarshalError(f"not a Reply message (type {message_type})")
    if len(message) != GIOP_HEADER_SIZE + size:
        raise MarshalError("Reply size mismatch")
    stream = _body_stream(message, little_endian)
    contexts = _read_service_contexts(stream)
    request_id = stream.read_ulong()
    status = stream.read_ulong()
    stream.align(8)
    body = stream.read_raw(stream.remaining)
    return ReplyMessage(request_id=request_id, status=status,
                        service_contexts=contexts, body=body,
                        little_endian=little_endian)


def body_input_stream(message: bytes, header_kind: str) -> CdrInputStream:
    """Open a CDR stream positioned at the start of a message's *body*
    (after the request/reply header), preserving alignment.

    ``header_kind`` is ``"request"`` or ``"reply"``.  Used by the ORB to
    unmarshal operation arguments/results after header decoding.
    """
    message_type, little_endian, _ = parse_header(message)
    stream = _body_stream(message, little_endian)
    _read_service_contexts(stream)
    stream.read_ulong()  # request id
    if header_kind == "request":
        stream.read_boolean()  # response expected
        stream.read_octets()   # object key
        stream.read_string()   # operation
        stream.read_octets()   # principal
    elif header_kind == "reply":
        stream.read_ulong()    # status
    else:
        raise MarshalError(f"unknown header kind {header_kind!r}")
    stream.align(8)
    return stream


class GiopFramer:
    """Incremental GIOP message framer over a byte stream.

    Feed arbitrary chunks; complete messages (header + body bytes) come
    out.  Keeps at most one partial message buffered.

    The hot path is zero-copy: messages wholly contained in the fed
    chunk are sliced straight out of it via :class:`memoryview` (and
    when a chunk *is* exactly one message — the overwhelmingly common
    case on the simulated connections — the chunk object itself is
    returned untouched).  Only bytes that straddle chunk boundaries are
    staged in the partial-message buffer, and the header of that
    pending message is parsed once and cached in ``_need`` rather than
    re-parsed on every subsequent call.

    ``zero_copy_bytes`` counts the bytes delivered straight from fed
    chunks without passing through the staging buffer; assign an
    ``repro.obs`` counter to ``counter`` to export it as
    ``giop.bytes.zero_copy``.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        # Total (header + body) size of the buffered partial message,
        # or None while fewer than 12 bytes are buffered.  Invariant:
        # _need is None  iff  len(_buffer) < GIOP_HEADER_SIZE.
        self._need: Optional[int] = None
        self.zero_copy_bytes = 0
        self.counter = None  # optional repro.obs Counter

    def feed(self, data: bytes) -> List[bytes]:
        """Add stream bytes; return every newly completed message."""
        messages: List[bytes] = []
        view = memoryview(data)
        n = len(view)
        offset = 0
        buf = self._buffer
        if buf:
            # Finish the pending partial message first.
            if self._need is None:
                take = min(GIOP_HEADER_SIZE - len(buf), n)
                buf += view[:take]
                offset = take
                if len(buf) < GIOP_HEADER_SIZE:
                    return messages
                _, _, size = parse_header(buf)
                self._need = GIOP_HEADER_SIZE + size
            take = min(self._need - len(buf), n - offset)
            buf += view[offset:offset + take]
            offset += take
            if len(buf) < self._need:
                return messages
            messages.append(bytes(buf))
            buf.clear()
            self._need = None
        fast_path_bytes = 0
        while n - offset >= GIOP_HEADER_SIZE:
            _, _, size = parse_header(view[offset:offset + GIOP_HEADER_SIZE])
            total = GIOP_HEADER_SIZE + size
            if n - offset < total:
                break
            if offset == 0 and total == n and type(data) is bytes:
                # The chunk is exactly one message: hand it back as-is.
                messages.append(data)
            else:
                messages.append(bytes(view[offset:offset + total]))
            fast_path_bytes += total
            offset += total
        if offset < n:
            # Stage the trailing fragment; cache its size if the header
            # is already complete so later calls never re-parse it.
            buf += view[offset:]
            if len(buf) >= GIOP_HEADER_SIZE:
                _, _, size = parse_header(buf)
                self._need = GIOP_HEADER_SIZE + size
        if fast_path_bytes:
            self.zero_copy_bytes += fast_path_bytes
            if self.counter is not None:
                self.counter.inc(fast_path_bytes)
        return messages

    @property
    def buffered(self) -> int:
        return len(self._buffer)
