"""The Fault Notifier: a structured stream of fault reports.

FT-CORBA pairs its FaultDetectors with a Fault Notifier that fans fault
reports out to interested consumers (the Replication Manager being the
primary one).  This reproduction's equivalent collects every fault-
relevant event in one place — processor crashes and recoveries, ring
membership changes, replica removals (both crash-pruned and health-
detected), groups dropping below their minimum — as typed records that
operational tooling and tests can subscribe to or query.

The notifier is an *observer*: it never changes system behaviour, so it
can be attached to any domain without perturbing the experiments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .domain import FaultToleranceDomain


class FaultKind(enum.Enum):
    HOST_CRASHED = "host_crashed"
    HOST_RECOVERED = "host_recovered"
    MEMBERSHIP_CHANGED = "membership_changed"
    REPLICA_REMOVED = "replica_removed"
    GROUP_DEGRADED = "group_degraded"        # below its minimum replicas
    GROUP_RESTORED = "group_restored"        # back at/above its minimum


@dataclass(frozen=True)
class FaultReport:
    time: float
    kind: FaultKind
    subject: str                              # host or group name
    detail: Dict[str, Any] = field(default_factory=dict)


class FaultNotifier:
    """Per-domain collector/distributor of :class:`FaultReport`s."""

    def __init__(self, domain: "FaultToleranceDomain") -> None:
        self.domain = domain
        self.reports: List[FaultReport] = []
        self._consumers: List[Callable[[FaultReport], None]] = []
        self._degraded: set = set()
        self._placements: Dict[int, set] = {}
        self._last_members: Tuple[str, ...] = ()
        network = domain.world.network
        network.on_host_crash(self._on_host_crash)
        network.on_host_recovery(self._on_host_recovery)
        # Observe membership through whichever RM survives; seed the
        # baseline from the current view so the first change after
        # attachment reports a correct joined/left diff.
        for rm in domain.rms.values():
            rm.on_membership_change(self._on_membership)
        try:
            self._last_members = tuple(sorted(
                domain.coordinator_rm().live_hosts))
        except Exception:
            self._last_members = ()
        # Slow poll: catches replica removals that do not change the
        # ring membership (e.g. a fault detector evicting a sick
        # replica on a live processor).
        self._poll_interval = 0.25
        self._schedule_poll()

    def _schedule_poll(self) -> None:
        if any(host.alive for host in self.domain.hosts):
            self.domain.world.scheduler.call_after(self._poll_interval,
                                                   self._poll)

    def _poll(self) -> None:
        self._check_group_health()
        self._schedule_poll()

    # ------------------------------------------------------------------
    # Subscription and queries
    # ------------------------------------------------------------------

    def subscribe(self, consumer: Callable[[FaultReport], None]) -> None:
        """Register a push consumer for future fault reports."""
        self._consumers.append(consumer)

    def history(self, kind: Optional[FaultKind] = None) -> List[FaultReport]:
        if kind is None:
            return list(self.reports)
        return [r for r in self.reports if r.kind is kind]

    # ------------------------------------------------------------------
    # Event sources
    # ------------------------------------------------------------------

    def _emit(self, kind: FaultKind, subject: str, **detail: Any) -> None:
        report = FaultReport(time=self.domain.world.now, kind=kind,
                             subject=subject, detail=detail)
        self.reports.append(report)
        for consumer in list(self._consumers):
            consumer(report)

    def _domain_host_names(self) -> set:
        return {host.name for host in self.domain.hosts}

    def _on_host_crash(self, host) -> None:
        if host.name in self._domain_host_names():
            self._emit(FaultKind.HOST_CRASHED, host.name)

    def _on_host_recovery(self, host) -> None:
        if host.name in self._domain_host_names():
            self._emit(FaultKind.HOST_RECOVERED, host.name)

    def _on_membership(self, live_hosts: Tuple[str, ...]) -> None:
        members = tuple(sorted(live_hosts))
        if members == self._last_members:
            self._check_group_health()
            return
        previous, self._last_members = self._last_members, members
        joined = sorted(set(members) - set(previous))
        left = sorted(set(previous) - set(members))
        self._emit(FaultKind.MEMBERSHIP_CHANGED, self.domain.name,
                   members=list(members), joined=joined, left=left)
        self._check_group_health()

    def _check_group_health(self) -> None:
        try:
            rm = self.domain.coordinator_rm()
        # reprolint: disable=EXC001 -- no coordinator RM while the domain is still wiring (or fully down); the health check simply waits for the next membership event
        except Exception:
            return
        live = set(rm.live_hosts)
        for info in rm.registry.all_groups():
            if not info.factory_name:
                continue
            # Placement shrinkage = replicas lost (crash-pruned or
            # removed by a fault detector).
            previous_placement = self._placements.get(info.group_id)
            current_placement = set(info.placement)
            if previous_placement is not None:
                for host_name in sorted(previous_placement
                                        - current_placement):
                    self._emit(FaultKind.REPLICA_REMOVED, info.name,
                               host=host_name)
            self._placements[info.group_id] = current_placement
            alive = sum(1 for h in info.placement if h in live)
            degraded = alive < info.min_replicas
            if degraded and info.group_id not in self._degraded:
                self._degraded.add(info.group_id)
                self._emit(FaultKind.GROUP_DEGRADED, info.name,
                           alive=alive, minimum=info.min_replicas)
            elif not degraded and info.group_id in self._degraded:
                self._degraded.discard(info.group_id)
                self._emit(FaultKind.GROUP_RESTORED, info.name,
                           alive=alive, minimum=info.min_replicas)
