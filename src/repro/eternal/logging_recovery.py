"""Logging-Recovery Mechanisms: message logs, checkpoints, state transfer.

Paper section 2.2: "The Replication Mechanisms, operating in concert
with the Logging-Recovery Mechanisms, provide for strongly consistent
replication ... and for state transfer to new and recovering replicas
for both actively and passively replicated objects."

Each Replication Mechanisms instance keeps one :class:`GroupLog` per
group it hosts:

* the **invocation log** — every delivered invocation for the group,
  in total order, with its delivery timestamp.  Passive backups replay
  the suffix after the last checkpoint/state update on failover; cold
  passive recovery replays after the last periodic checkpoint.
* the **checkpoint** — the newest known state snapshot and the
  timestamp up to which it covers; installing one truncates the log.

Replaying is deterministic because logged invocations carry their
original timestamps: replayed nested invocations regenerate the *same*
operation identifiers (Figure 6) and are therefore deduplicated at
their targets rather than re-executed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .messages import DomainMessage


@dataclass
class Checkpoint:
    state: Dict[str, Any]
    ts: int
    version: int = 1


class GroupLog:
    """Per-group invocation log plus latest checkpoint.

    ``metrics`` is the optional world registry; when supplied, appends
    and checkpoint installations are counted domain-wide.
    """

    def __init__(self, group_id: int, metrics: Any = None) -> None:
        self.group_id = group_id
        self.invocations: List[DomainMessage] = []
        self.checkpoint: Optional[Checkpoint] = None
        self.ops_since_checkpoint = 0
        self._m_appends = (
            metrics.counter("eternal.log.appends") if metrics is not None else None)
        self._m_checkpoints = (
            metrics.counter("eternal.checkpoint.installs") if metrics is not None else None)

    def record_invocation(self, message: DomainMessage) -> None:
        """Append a delivered invocation (caller already deduplicated)."""
        self.invocations.append(message)
        self.ops_since_checkpoint += 1
        if self._m_appends is not None:
            self._m_appends.inc()

    def install_checkpoint(self, state: Dict[str, Any], ts: int,
                           version: int = 1) -> None:
        """Adopt a newer checkpoint and truncate the covered log prefix."""
        if self.checkpoint is not None and ts < self.checkpoint.ts:
            return  # stale checkpoint: a replayed control message
        self.checkpoint = Checkpoint(state=state, ts=ts, version=version)
        self.invocations = [m for m in self.invocations if m.timestamp > ts]
        self.ops_since_checkpoint = 0
        if self._m_checkpoints is not None:
            self._m_checkpoints.inc()

    def adopt_live_state(self, state: Dict[str, Any], ts: int,
                         version: int = 1) -> None:
        """Seed the checkpoint from a live servant during a style switch.

        Same truncation semantics as :meth:`install_checkpoint`, but a
        handoff from a running replica is not a recovery installation —
        it does not count toward ``eternal.checkpoint.installs``, and a
        tie with the current checkpoint timestamp is adopted (the live
        servant is at least as new as any checkpoint at the same cut).
        """
        if self.checkpoint is not None and ts < self.checkpoint.ts:
            return
        self.checkpoint = Checkpoint(state=state, ts=ts, version=version)
        self.invocations = [m for m in self.invocations if m.timestamp > ts]
        self.ops_since_checkpoint = 0

    def truncate_covered(self, ts: int) -> int:
        """Drop log entries already covered by state installed elsewhere
        (the warm-passive primary's own update): truncation only — no
        checkpoint adoption, no install accounting.  The primary's
        servant already holds this state, so the entries can never be
        needed for a local replay; keeping them grows the primary's log
        by one entry per operation, forever."""
        before = len(self.invocations)
        self.invocations = [m for m in self.invocations if m.timestamp > ts]
        self.ops_since_checkpoint = len(self.invocations)
        return before - len(self.invocations)

    def replay_after(self, ts: int) -> List[DomainMessage]:
        """Invocations with delivery timestamp strictly greater than ts."""
        return [m for m in self.invocations if m.timestamp > ts]

    def latest_covered_ts(self) -> int:
        """Timestamp below which state is captured by the checkpoint."""
        return self.checkpoint.ts if self.checkpoint is not None else 0

    def __len__(self) -> int:
        return len(self.invocations)
