# reprolint: module=repro.core.fake
"""OBS001 good fixture: catalogued names, wildcard families, and
dynamic (non-literal) names, which the rule skips."""


def record(metrics, spans, trace_id, action):
    metrics.counter("gateway.req.received").inc()
    metrics.gauge("gateway.state.pending").set(0)
    metrics.counter(f"fault.injected.{action}").inc()
    spans.start(trace_id, "gateway.request")
