#!/usr/bin/env python
"""The Eternal Evolution Manager: upgrading a live replicated object.

Figure 2 of the paper lists the Evolution Manager, which "exploits
object replication to support upgrades to the CORBA application
objects": because a group has several replicas, its code can be swapped
one replica at a time — with state transfer keeping the new code's
replicas consistent — while the group keeps serving invocations.

This example upgrades a pricing policy from v1 (flat fee) to v2
(percentage fee) while a client keeps trading, then prints the domain
status report showing version 2 everywhere.

Run:  python examples/live_upgrade.py
"""

from repro import FaultToleranceDomain, Orb, ReplicationStyle, Servant, World
from repro.eternal import domain_report, format_report
from repro.iiop import TC_LONG, TC_STRING
from repro.orb import Interface, Operation, Param

PRICING = Interface("Pricing", [
    Operation("fee_for", [Param("amount", TC_LONG)], TC_LONG),
    Operation("policy", [], TC_STRING),
])


class FlatFeePricing(Servant):
    """v1: every trade costs 50 cents."""

    interface = PRICING

    def __init__(self):
        self.quotes_served = 0

    def fee_for(self, amount):
        self.quotes_served += 1
        return 50

    def policy(self):
        return "flat-fee-v1"


class PercentFeePricing(FlatFeePricing):
    """v2: 1% of the trade, minimum 30 cents. Inherits v1's state shape."""

    def fee_for(self, amount):
        self.quotes_served += 1
        return max(30, amount // 100)

    def policy(self):
        return "percent-fee-v2"


def main():
    world = World(seed=31337)
    domain = FaultToleranceDomain(world, "pricing", num_hosts=4)
    domain.add_gateway(port=2809)
    group = domain.create_group("Pricing", PRICING, FlatFeePricing,
                                style=ReplicationStyle.ACTIVE, num_replicas=3)
    domain.await_stable()

    browser = world.add_host("client")
    orb = Orb(world, browser, request_timeout=None)
    stub = orb.string_to_object(domain.ior_for(group).to_string(), PRICING)

    print("before upgrade:")
    print("  policy      ->", world.await_promise(stub.call("policy")))
    print("  fee_for(1e4)->", world.await_promise(stub.call("fee_for", 10_000)))

    print("\nrolling upgrade to percent-fee-v2 (one replica at a time,")
    print("state transferred, group stays available) ...")
    domain.register_factory("factory.pricing.v2", PercentFeePricing)
    upgrade = domain.evolution.upgrade_group("Pricing", "factory.pricing.v2")

    # The client keeps invoking while the upgrade rolls.
    during = [world.await_promise(stub.call("fee_for", 10_000), timeout=600)
              for _ in range(4)]
    version = world.await_promise(upgrade, timeout=600)
    print(f"  fees served during the roll: {during} (service uninterrupted)")
    print(f"  upgrade complete: group version {version}")

    print("\nafter upgrade:")
    print("  policy      ->", world.await_promise(stub.call("policy")))
    print("  fee_for(1e4)->", world.await_promise(stub.call("fee_for", 10_000)))
    served = {rm.replicas[group.group_id].servant.quotes_served
              for rm in domain.rms.values() if group.group_id in rm.replicas}
    print(f"  quotes_served preserved across the upgrade: {served}")

    world.run(until=world.now + 0.5)
    print("\n" + format_report(domain_report(domain)))


if __name__ == "__main__":
    main()
