"""Seeded-mutation regressions: each new rule family must catch its
canonical bug when it is deliberately introduced into the real tree.

Each test copies ``src/`` to a temp dir, applies one surgical mutation
(the kind of slip the rules exist to catch), runs the full lint
pipeline, and asserts the expected code fires at the mutated module —
proving the whole chain (extraction, resolution, taint, suppression
routing) works on the production sources, not just on fixtures.
"""

from __future__ import annotations

import pathlib
import shutil

import pytest

from repro.analysis.lint import default_config, lint_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"


@pytest.fixture
def mutated(tmp_path):
    """Copy src/, hand the copy to the test's mutator, lint it."""
    def run(mutate):
        dst = tmp_path / "src"
        shutil.copytree(SRC, dst, ignore=shutil.ignore_patterns(
            "__pycache__"))
        mutate(dst)
        # Real config (with the docs/ catalogue); tmp root only affects
        # how violation paths are relativised.
        return lint_paths([dst], config=default_config(REPO_ROOT),
                          root=tmp_path)
    return run


def rewrite(path, old, new):
    source = path.read_text(encoding="utf-8")
    assert source.count(old) == 1, f"mutation anchor drifted in {path}"
    path.write_text(source.replace(old, new), encoding="utf-8")


def codes_with_messages(result):
    return [(v.code, v.path, v.message) for v in result.violations]


def test_removing_a_dispatch_entry_fires_sm001(mutated):
    """Dropping one MsgKind branch from the replication dispatch table
    must fail lint, not fall through at delivery time."""
    result = mutated(lambda dst: rewrite(
        dst / "repro/eternal/replication.py",
        "            MsgKind.CHECKPOINT: self._apply_checkpoint,\n", ""))
    hits = [v for v in result.violations if v.code == "SM001"]
    assert any("CHECKPOINT" in v.message
               and v.path.endswith("replication.py") for v in hits), \
        codes_with_messages(result)


def test_orphaning_a_handler_fires_flow002(mutated):
    """Deleting the only send site of REPLICA_READY leaves its handler
    unreachable; the dead-handler check must notice."""
    result = mutated(lambda dst: rewrite(
        dst / "repro/eternal/replication.py",
        "kind=MsgKind.REPLICA_READY,", "kind=ready_kind,"))
    hits = [v for v in result.violations if v.code == "FLOW002"]
    assert any("MsgKind.REPLICA_READY" in v.message
               and "dead handler" in v.message for v in hits), \
        codes_with_messages(result)


def test_new_unused_kind_fires_flow002_and_sm001(mutated):
    """Adding a MsgKind member without wiring it anywhere trips both
    the dead-kind check and the dispatch-table exhaustiveness check."""
    result = mutated(lambda dst: rewrite(
        dst / "repro/eternal/messages.py",
        "    INVOCATION = \"invocation\"\n",
        "    INVOCATION = \"invocation\"\n    PHANTOM = \"phantom\"\n"))
    flow = [v for v in result.violations if v.code == "FLOW002"]
    assert any("MsgKind.PHANTOM" in v.message
               and "dead message kind" in v.message for v in flow), \
        codes_with_messages(result)
    sm = [v for v in result.violations if v.code == "SM001"]
    assert any("PHANTOM" in v.message
               and v.path.endswith("replication.py") for v in sm), \
        codes_with_messages(result)


def test_routing_a_helper_through_wall_time_fires_det101(mutated):
    """A deterministic function calling an out-of-scope helper that
    reads the wall clock must be flagged at the call edge with the
    full witness chain."""
    def mutate(dst):
        hostclock = dst / "repro/obs/hostclock.py"
        hostclock.write_text(
            hostclock.read_text(encoding="utf-8")
            + "\n\ndef fixture_fresh_stamp():\n"
              "    return _time.time()\n", encoding="utf-8")
        headers = dst / "repro/core/headers.py"
        headers.write_text(
            headers.read_text(encoding="utf-8")
            + "\n\nfrom ..obs.hostclock import fixture_fresh_stamp\n"
              "\n\ndef fixture_mark():\n"
              "    return fixture_fresh_stamp()\n", encoding="utf-8")
    result = mutated(mutate)
    hits = [v for v in result.violations if v.code == "DET101"]
    assert len(hits) == 1, codes_with_messages(result)
    violation = hits[0]
    assert violation.path.endswith("headers.py")
    assert "fixture_mark" in violation.message
    assert ("fixture_fresh_stamp -> time.time" in violation.message)
    # The helper's own frame is the base rule's job, not DET101's.
    assert any(v.code == "DET001" and v.path.endswith("hostclock.py")
               for v in result.violations)


def test_unmutated_copy_stays_clean(mutated):
    """Control: the copy/relint harness itself introduces nothing."""
    result = mutated(lambda dst: None)
    assert result.violations == []
    assert result.parse_errors == []
