# reprolint: module=repro.core.fake
"""OBS001 bad fixture: a metric series missing from the catalogue."""


def record(metrics, spans, trace_id):
    metrics.counter("definitely.not.in.catalogue").inc()
    spans.start(trace_id, "mystery.span")
