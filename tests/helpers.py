"""Shared helpers for the test suite."""

from __future__ import annotations

from repro import (
    FaultToleranceDomain,
    FtClientLayer,
    Orb,
    ReplicationStyle,
    TotemConfig,
    World,
)
from repro.apps import COUNTER_INTERFACE, CounterServant




def make_domain(world, name="dom", num_hosts=3, gateways=0, mirror=True,
                totem_config=None):
    """A stable domain with ``gateways`` gateways attached."""
    domain = FaultToleranceDomain(world, name, num_hosts=num_hosts,
                                  totem_config=totem_config)
    for _ in range(gateways):
        domain.add_gateway(port=2809, mirror_requests=mirror)
    domain.await_stable()
    return domain


def make_counter_group(domain, style=ReplicationStyle.ACTIVE, replicas=3,
                       name="Counter", **kwargs):
    return domain.create_group(name, COUNTER_INTERFACE, CounterServant,
                               style=style, num_replicas=replicas, **kwargs)


def external_client(world, domain, group, enhanced=True, host_name="browser",
                    first_gateway_only=False):
    """Returns (orb, stub) for an unreplicated client outside the domain."""
    host = (world.network.hosts.get(host_name)
            or world.add_host(host_name))
    orb = Orb(world, host, request_timeout=None)
    ior = domain.ior_for(group, first_gateway_only=first_gateway_only)
    if enhanced:
        layer = FtClientLayer(orb)
        stub = layer.string_to_object(ior.to_string(), group.interface)
        return orb, stub, layer
    stub = orb.string_to_object(ior.to_string(), group.interface)
    return orb, stub, None


def replica_counts(domain, group):
    """Counter values at every live replica of ``group``."""
    values = {}
    for host_name, rm in domain.rms.items():
        record = rm.replicas.get(group.group_id)
        if record is not None and rm.alive:
            values[host_name] = record.servant.count
    return values


SLOW_TOTEM = TotemConfig(token_hold=0.005, token_loss_timeout=0.12,
                         gather_timeout=0.02)
"""A deliberately slow ring (with a matching loss timeout): widens the
request-in-flight window for crash-timing tests."""


def crash_gateway_on_response(world, gateway):
    """Arrange for ``gateway`` to crash at the exact instant the next
    domain response reaches it -- after the invocation executed inside
    the domain, before the reply can leave for the client.  This is the
    precise failure window sections 3.4/3.5 reason about."""

    def crash_instead(msg):
        world.faults.crash_now(gateway.host.name)

    gateway._on_domain_response = crash_instead
