"""Gateway farm: shard one domain's client population across a pool.

The paper's section 3.5 introduces *redundant* gateways for fault
tolerance; this module scales the same mechanism out for capacity.  A
:class:`GatewayPool` fronts one fault tolerance domain with N gateways
and partitions the external client population across them:

* **Consistent-hash partitioning** — every routing key (the enhanced
  client's ``uid#incarnation``, or the connecting host name for plain
  ORBs) hashes onto a ring of virtual nodes (CRC32, never Python's
  randomised ``hash()``), so adding or removing one gateway moves only
  ~1/N of the keys and every component computes the same owner.
* **Pool-aware IORs** — :meth:`ior_for` publishes a multi-profile IOR
  whose profiles *walk the ring from the client's home gateway*, so an
  enhanced client's normal profile traversal (section 3.5) lands it on
  exactly the sibling that inherits its key range after a failure —
  rebalancing without any coordination message.
* **Admission control** — pool gateways are constructed with a bounded
  in-flight window plus overflow queue (see
  :class:`~repro.core.gateway.Gateway`); beyond both, requests are shed
  with a TRANSIENT exception.
* **Circuit breakers** — each gateway's shed/served signals feed a
  per-gateway :class:`CircuitBreaker`.  A tripped breaker takes the
  gateway out of routing until a lazy reset timeout admits a bounded
  number of half-open probes; sustained successes re-close it.

Plain year-2000 ORBs cannot traverse profiles, so the pool re-homes
them with the GIOP-standard redirect instead: a LocateRequest answered
``OBJECT_FORWARD`` carrying the home gateway's IOR
(:meth:`locate_forward`, used by ``Gateway._on_locate_request``).

Exactly-once semantics across all of this come from the machinery the
farm reuses unchanged: request mirroring, the
:class:`~repro.core.duplicates.DuplicateSuppressor`, and the response
cache — a client rerouted mid-operation reissues to its new gateway and
collects the original response, never a re-execution.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..iiop.ior import Ior
from .gateway import Gateway
from .identifiers import ClientId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..eternal.domain import FaultToleranceDomain
    from ..orb.connection import IiopServerConnection


def ring_hash(key: str) -> int:
    """Deterministic ring position for a routing key (CRC32, stable
    across processes and runs — Python's builtin ``hash`` is neither)."""
    return zlib.crc32(key.encode("utf-8"))


class CircuitBreaker:
    """Per-gateway overload breaker with lazy clock-driven transitions.

    CLOSED -> OPEN after ``failure_threshold`` consecutive failures (or
    immediately via :meth:`force_open` when the gateway's host dies);
    OPEN -> HALF_OPEN once ``reset_timeout`` simulated seconds elapse
    (evaluated lazily at the next :meth:`allow` — no timer event, so a
    pool changes nothing about event ordering); HALF_OPEN admits up to
    ``probe_quota`` probe requests and closes after ``close_after``
    of them succeed, or re-opens on any probe failure.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, clock, failure_threshold: int = 8,
                 reset_timeout: float = 0.25, probe_quota: int = 4,
                 close_after: int = 2, listener=None) -> None:
        self._clock = clock
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.probe_quota = probe_quota
        self.close_after = close_after
        self._listener = listener or (lambda event: None)
        self._state = CircuitBreaker.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes_left = 0
        self._probe_successes = 0

    @property
    def state(self) -> str:
        if (self._state == CircuitBreaker.OPEN
                and self._clock() - self._opened_at >= self.reset_timeout):
            self._state = CircuitBreaker.HALF_OPEN
            self._probes_left = self.probe_quota
            self._probe_successes = 0
        return self._state

    def can_accept(self) -> bool:
        """May a new request be routed to this gateway right now?
        Pure check — consuming a half-open probe slot happens only when
        the gateway is actually *selected* (:meth:`note_routed`)."""
        state = self.state
        if state == CircuitBreaker.CLOSED:
            return True
        return state == CircuitBreaker.HALF_OPEN and self._probes_left > 0

    def note_routed(self) -> None:
        """A request was routed here; in HALF_OPEN that uses one probe."""
        if self.state == CircuitBreaker.HALF_OPEN and self._probes_left > 0:
            self._probes_left -= 1
            self._listener("probe")

    def record_success(self) -> None:
        if self._state == CircuitBreaker.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.close_after:
                self._state = CircuitBreaker.CLOSED
                self._failures = 0
                self._listener("close")
        else:
            self._failures = 0

    def record_failure(self) -> None:
        state = self.state
        if state == CircuitBreaker.HALF_OPEN:
            # A failed probe: the gateway is still sick, back off again.
            self._open("reopen")
            return
        if state == CircuitBreaker.OPEN:
            return
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._open("trip")

    def force_open(self) -> None:
        """Trip immediately (the gateway's host died)."""
        if self.state != CircuitBreaker.OPEN:
            self._open("trip")

    def _open(self, event: str) -> None:
        self._state = CircuitBreaker.OPEN
        self._opened_at = self._clock()
        self._failures = 0
        self._listener(event)


class GatewayPool:
    """N gateways sharding one domain's client population.

    Construct over a domain (adopting its existing gateways and adding
    more via :meth:`FaultToleranceDomain.add_gateway` until ``size``),
    then hand out references with :meth:`ior_for` and route open-loop
    load with :meth:`route`.  Adoption installs ``gateway.pool`` so the
    gateways themselves consult the pool for locate re-homing, reroute
    tracing, and breaker feedback.
    """

    def __init__(self, domain: "FaultToleranceDomain",
                 size: Optional[int] = None,
                 admission_window: int = 64,
                 admission_queue_limit: int = 64,
                 virtual_nodes: int = 32,
                 failure_threshold: int = 8,
                 reset_timeout: float = 0.25,
                 probe_quota: int = 4,
                 close_after: int = 2) -> None:
        self.domain = domain
        self.admission_window = admission_window
        self.admission_queue_limit = admission_queue_limit
        self.virtual_nodes = virtual_nodes
        self.gateways: List[Gateway] = []
        # Ring of (point, gateway) pairs, sorted by point; rebuilt only
        # when membership changes (never per request).
        self._ring: List[Tuple[int, Gateway]] = []
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breaker_config = (failure_threshold, reset_timeout,
                                probe_quota, close_after)

        m = domain.world.metrics
        self._m_route_owner = m.counter("pool.route.owner")
        self._m_route_reroutes = m.counter("pool.route.reroutes")
        self._m_route_fallback = m.counter("pool.route.fallback")
        self._m_route_unroutable = m.counter("pool.route.unroutable")
        self._m_breaker_trips = m.counter("pool.breaker.trips")
        self._m_breaker_probes = m.counter("pool.breaker.probes")
        self._m_breaker_closes = m.counter("pool.breaker.closes")
        self._m_breaker_reopens = m.counter("pool.breaker.reopens")
        self._m_locate_forwards = m.counter("pool.locate.forwards")
        self._m_ior_issued = m.counter("pool.ior.issued")
        self._m_shed = m.counter("pool.admission.shed")
        self._m_served = m.counter("pool.admission.served")

        for gateway in list(domain.gateways):
            self.adopt(gateway)
        while size is not None and len(self.gateways) < size:
            self.add_gateway()

        self._register_audit()

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def adopt(self, gateway: Gateway) -> Gateway:
        """Bring an existing gateway under pool management."""
        if gateway in self.gateways:
            return gateway
        gateway.pool = self
        if gateway.admission_window is None:
            # Adopted gateways predate the pool; arm their gate so the
            # farm's backpressure story is uniform.  (Metrics for the
            # gate were created lazily at construction; arming late
            # keeps counting in ``stats`` only, which the pool accepts
            # for adopted legacy gateways.)
            gateway.admission_window = self.admission_window
            gateway.admission_queue_limit = self.admission_queue_limit
            if gateway._m_adm_admitted is None:
                m = gateway.metrics
                gateway._m_adm_admitted = m.counter("gateway.adm.admitted")
                gateway._m_adm_queued = m.counter("gateway.adm.queued")
                gateway._m_adm_shed = m.counter("gateway.adm.shed")
        self.gateways.append(gateway)
        host_name = gateway.host.name
        self._breakers[host_name] = CircuitBreaker(
            clock=lambda: self.domain.world.scheduler.now,
            failure_threshold=self._breaker_config[0],
            reset_timeout=self._breaker_config[1],
            probe_quota=self._breaker_config[2],
            close_after=self._breaker_config[3],
            listener=lambda event, hn=host_name: self._on_breaker(hn, event))
        self._rebuild_ring()
        return gateway

    def add_gateway(self, port: int = 2809) -> Gateway:
        """Grow the pool by one gateway processor."""
        gateway = self.domain.add_gateway(
            port=port,
            admission_window=self.admission_window,
            admission_queue_limit=self.admission_queue_limit)
        return self.adopt(gateway)

    def _rebuild_ring(self) -> None:
        ring: List[Tuple[int, Gateway]] = []
        for gateway in self.gateways:
            for v in range(self.virtual_nodes):
                ring.append((ring_hash(f"{gateway.host.name}#{v}"), gateway))
        # Ties between virtual nodes (CRC32 collisions) break on the
        # deterministic host name, never on object identity.
        ring.sort(key=lambda pair: (pair[0], pair[1].host.name))
        self._ring = ring

    # ------------------------------------------------------------------
    # Availability and breaker feedback
    # ------------------------------------------------------------------

    def breaker(self, gateway: Gateway) -> CircuitBreaker:
        return self._breakers[gateway.host.name]

    def _on_breaker(self, host_name: str, event: str) -> None:
        counter = {"trip": self._m_breaker_trips,
                   "probe": self._m_breaker_probes,
                   "close": self._m_breaker_closes,
                   "reopen": self._m_breaker_reopens}[event]
        counter.inc()

    def _available(self, gateway: Gateway) -> bool:
        """Live and admitting: routing skips everything else.  A dead
        host trips the breaker on sight (lazy fault detection — the
        pool never subscribes to membership events)."""
        if not gateway.alive or not gateway.host.alive:
            self._breakers[gateway.host.name].force_open()
            return False
        return self._breakers[gateway.host.name].can_accept()

    def on_shed(self, gateway: Gateway) -> None:
        """Gateway callback: a request was shed (window + queue full)."""
        self._m_shed.inc()
        self._breakers[gateway.host.name].record_failure()

    def on_served(self, gateway: Gateway) -> None:
        """Gateway callback: an admitted request resolved (response,
        cancel, or purge) — the success signal that heals breakers."""
        self._m_served.inc()
        self._breakers[gateway.host.name].record_success()

    @staticmethod
    def _load(gateway: Gateway) -> Tuple[int, int]:
        """Queue-then-window load, for least-connections comparisons."""
        return (len(gateway._admission_queue), gateway._own_inflight)

    def _saturated(self, gateway: Gateway) -> bool:
        window = gateway.admission_window
        if window is None:
            return False
        return (gateway._own_inflight >= window
                and len(gateway._admission_queue)
                >= gateway.admission_queue_limit // 2)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _ring_walk(self, key: str) -> List[Gateway]:
        """All distinct gateways in ring order from ``key``'s position;
        the first entry is the key's hash owner."""
        ring = self._ring
        if not ring:
            return []
        point = ring_hash(key)
        # Binary search would be O(log n); the ring is tiny (pools of
        # 1-16 gateways) and rebuilds are rare, so a scan keeps it
        # simple and allocation-free.
        start = 0
        for i, (node_point, _) in enumerate(ring):
            if node_point >= point:
                start = i
                break
        walk: List[Gateway] = []
        for i in range(len(ring)):
            gateway = ring[(start + i) % len(ring)][1]
            if gateway not in walk:
                walk.append(gateway)
        return walk

    def hash_owner(self, key: str) -> Optional[Gateway]:
        """The key's ring owner, dead or alive (pure hash, no health)."""
        walk = self._ring_walk(key)
        return walk[0] if walk else None

    def route(self, key: str) -> Optional[Gateway]:
        """Pick the gateway that should serve ``key``'s next request.

        Walk the ring from the key's position, skipping dead gateways
        and open breakers; if the first available gateway is saturated
        (window full, queue half full), fall back to the least-loaded
        available gateway instead of queueing behind a hot shard.
        Returns None (and counts ``pool.route.unroutable``) when no
        gateway can take the request.
        """
        walk = self._ring_walk(key)
        selected: Optional[Gateway] = None
        rerouted = False
        for i, gateway in enumerate(walk):
            if self._available(gateway):
                selected, rerouted = gateway, i > 0
                break
        if selected is None:
            self._m_route_unroutable.inc()
            return None
        if self._saturated(selected):
            candidates = [gw for gw in walk
                          if gw is selected or self._available(gw)]
            least = min(candidates,
                        key=lambda gw: (self._load(gw), gw.host.name))
            if least is not selected:
                self._m_route_fallback.inc()
                self.breaker(least).note_routed()
                return least
        if rerouted:
            self._m_route_reroutes.inc()
        else:
            self._m_route_owner.inc()
        self.breaker(selected).note_routed()
        return selected

    def is_hash_owner(self, gateway: Gateway, client_id: ClientId,
                      connection: "IiopServerConnection") -> bool:
        """Is ``gateway`` the consistent-hash home of this client?  Used
        by the gateway's tracing hook to mark rerouted invocations."""
        owner = self.hash_owner(self._routing_key(client_id, connection))
        return owner is None or owner is gateway

    @staticmethod
    def _routing_key(client_id: ClientId,
                     connection: "IiopServerConnection") -> str:
        if isinstance(client_id, str):
            # Enhanced client: uid#incarnation travels in the service
            # context, stable across connections and failovers.
            return client_id
        # Plain ORB: counter-assigned ids differ per gateway, so key on
        # the connecting host instead (stable for the client process).
        return connection.endpoint.remote_addr[0]

    # ------------------------------------------------------------------
    # References
    # ------------------------------------------------------------------

    def _walk_addresses(self, key: str) -> List[Tuple[str, int]]:
        return [(gw.host.name, gw.port) for gw in self._ring_walk(key)]

    def ior_for(self, group: Any, client_key: str) -> Ior:
        """A pool-aware IOR for ``client_key``: profiles ordered by the
        ring walk from the key's home gateway, so profile traversal
        after a gateway failure lands on the shard that inherits the
        key range."""
        handle = self.domain.resolve(group)
        self._m_ior_issued.inc()
        return self.domain.interceptor.published_ior(
            handle.group_id, handle.interface.repo_id,
            addresses=self._walk_addresses(client_key))

    def locate_forward(self, gateway: Gateway, group_id: int,
                       connection: "IiopServerConnection") -> Optional[Ior]:
        """Re-home a plain ORB via GIOP OBJECT_FORWARD.

        Called from the gateway's LocateRequest handler: if the probing
        client's hash home is an *available* different gateway, answer
        with an IOR rooted at that home; otherwise None (serve here —
        re-homing onto a dead or tripped gateway would bounce the
        client straight back).
        """
        key = connection.endpoint.remote_addr[0]
        walk = self._ring_walk(key)
        for candidate in walk:
            if candidate is gateway:
                return None
            if not self._available(candidate):
                continue
            info = gateway.rm.registry.get(group_id)
            type_id = ""
            if info is not None and info.interface_name:
                interface = self.domain.interfaces.get(info.interface_name)
                if interface is not None:
                    type_id = interface.repo_id
            self._m_locate_forwards.inc()
            return self.domain.interceptor.published_ior(
                group_id, type_id,
                addresses=[(gw.host.name, gw.port) for gw in walk
                           if gw is candidate or self._available(gw)])
        return None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _register_audit(self) -> None:
        """The pool's own tables are bounded by membership, never by
        client activity: declare exact floors so the leak audit sees
        them (AUD001) without ever flagging them."""
        scope = self.domain.world.audit_scope
        owner = f"pool@{self.domain.name}"
        scope.register("pool.gateways", lambda: len(self.gateways),
                       floor=lambda: len(self.gateways), owner=owner,
                       gauge="pool.state.gateways")
        scope.register("pool.ring", lambda: len(self._ring),
                       floor=lambda: len(self.gateways) * self.virtual_nodes,
                       owner=owner, gauge="pool.state.ring")
        scope.register("pool.breakers", lambda: len(self._breakers),
                       floor=lambda: len(self.gateways), owner=owner,
                       gauge="pool.state.breakers")

    def describe(self) -> Dict[str, Any]:
        """Deterministic snapshot for tests and bench extra_info."""
        return {
            "size": len(self.gateways),
            "breakers": {name: self._breakers[name].state
                         for name in sorted(self._breakers)},
            "inflight": {gw.host.name: gw._own_inflight
                         for gw in self.gateways},
            "queued": {gw.host.name: len(gw._admission_queue)
                       for gw in self.gateways},
        }
