# reprolint: module=fixturelib.hostglue
"""Out-of-scope host glue that deterministic fixture code leans on.

The module is outside every reprolint scope, so only the transitive
rules (DET101/DET102/SIM101) can see what it does to its callers.
"""

import random
import time


def stamp():
    return time.time()


def tagged_stamp(tag):
    # One extra hop: taint must flow through intermediate frames.
    return tag, stamp()


def jitter():
    return random.random()


def nap(seconds):
    time.sleep(seconds)
