#!/usr/bin/env python
"""Exhaustive single- and double-fault sweep over the gateway scenario.

Usage:
    python tools/chaos_sweep.py [--double] [--grid-ms 10] [--ops 4]

For every processor of a standard domain (4 replica hosts, 2 gateways)
and every crash instant on a time grid, runs the fixed enhanced-client
workload and checks the exactly-once invariants.  With ``--double``,
additionally sweeps ordered pairs of faults (victim A at t1, victim B
at t2 > t1) — quadratic, so expect a few minutes.

Prints a summary and exits non-zero if any scenario violated an
invariant.  Every world runs with the flight recorder armed (it is
purely passive, so arming it never perturbs the schedule); a failing
scenario dumps its black box — the last high-signal events before the
violation — as deterministic canonical JSON to
``flight-<scenario>.json`` (``--flight-dir``, default the current
directory), which CI uploads as an artifact.  This is the campaign
behind ``tests/test_chaos_sweep.py``'s bounded grid.
"""

from __future__ import annotations

import argparse
import itertools
import os
import re
import sys
import time

sys.path.insert(0, "src")

from repro import FtClientLayer, Orb, World  # noqa: E402
from repro.apps import COUNTER_INTERFACE, CounterServant  # noqa: E402
from repro.eternal import FaultToleranceDomain, ReplicationStyle  # noqa: E402


def build(seed):
    world = World(seed=seed, trace=False, flight=True)
    domain = FaultToleranceDomain(world, "dom", num_hosts=4)
    domain.add_gateway(port=2809)
    domain.add_gateway(port=2809)
    domain.await_stable()
    group = domain.create_group("Counter", COUNTER_INTERFACE, CounterServant,
                                style=ReplicationStyle.ACTIVE,
                                num_replicas=3, min_replicas=2)
    domain.await_ready(group)
    host = world.add_host("browser")
    orb = Orb(world, host, request_timeout=None)
    layer = FtClientLayer(orb, client_uid="chaos")
    stub = layer.string_to_object(domain.ior_for(group).to_string(),
                                  COUNTER_INTERFACE)
    return world, domain, group, stub


def run(faults, operations, seed=5, audit=False):
    """faults: list of (victim host name index, delay seconds).

    Returns ``(ok, detail, world)`` — the world so a failing caller can
    dump its flight recorder.  With ``audit=True`` the scenario
    additionally runs the world's resource-leak audit at quiescence
    (see repro.obs.audit) and fails if any live component holds state
    above its declared floor."""
    world, domain, group, stub = build(seed)
    ok, detail = _run_checks(world, domain, group, stub, faults,
                             operations, audit)
    return ok, detail, world


def _run_checks(world, domain, group, stub, faults, operations, audit):
    victims = [h.name for h in domain.hosts]
    gateway_hosts = {gw.host.name for gw in domain.gateways}
    chosen = {victims[index % len(victims)] for index, _ in faults}
    all_gateways_die = gateway_hosts <= chosen
    for index, delay in faults:
        victim = victims[index % len(victims)]
        world.scheduler.call_after(delay,
                                   lambda v=victim: world.faults.crash_now(v))
    results = []
    try:
        for _ in range(operations):
            results.append(world.await_promise(stub.call("increment", 1),
                                               timeout=600))
    except Exception as exc:
        if all_gateways_die:
            # With every gateway dead, a clean COMM_FAILURE is the
            # *correct* outcome (no entry point remains) — provided the
            # domain itself stayed consistent.
            world.run(until=world.now + 2.0)
            counts = set()
            for rm in domain.rms.values():
                record = rm.replicas.get(group.group_id)
                if record is not None and rm.alive and record.ready:
                    counts.add(record.servant.count)
            if len(counts) <= 1:
                if audit:
                    leak = _audit_detail(world)
                    if leak is not None:
                        return False, leak
                return True, "all gateways dead: clean failure"
        return False, f"client error: {type(exc).__name__}: {exc}"
    world.run(until=world.now + 2.0)
    counts = set()
    for rm in domain.rms.values():
        record = rm.replicas.get(group.group_id)
        if record is not None and rm.alive and record.ready:
            counts.add(record.servant.count)
    if results != list(range(1, operations + 1)):
        return False, f"results {results}"
    if counts != {operations}:
        return False, f"replica divergence {counts}"
    if audit:
        leak = _audit_detail(world)
        if leak is not None:
            return False, leak
    return True, "ok"


def _dump_flight(world, scenario, flight_dir):
    """Write the failing scenario's black box; return the path."""
    slug = re.sub(r"[^a-z0-9]+", "-", scenario.lower()).strip("-")
    path = os.path.join(flight_dir, f"flight-{slug}.json")
    os.makedirs(flight_dir, exist_ok=True)
    with open(path, "w") as f:
        f.write(world.flight_json())
        f.write("\n")
    return path


def _audit_detail(world):
    """None when the audit is clean, else a one-line leak description."""
    report = world.audit()
    if report.ok:
        return None
    return "resource leak: " + "; ".join(
        f"{row.owner}/{row.name} size={row.size} > floor={row.floor}"
        for row in report.violations)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--double", action="store_true",
                        help="also sweep ordered fault pairs")
    parser.add_argument("--grid-ms", type=int, default=50)
    parser.add_argument("--ops", type=int, default=4)
    parser.add_argument("--audit", action="store_true",
                        help="also run the resource-leak audit at "
                             "quiescence of every scenario")
    parser.add_argument("--flight-dir", default=".",
                        help="directory for flight-<scenario>.json dumps "
                             "of failing scenarios (default: .)")
    args = parser.parse_args()

    grid = [t / 1000.0 for t in range(10, 600, args.grid_ms)]
    processors = 6  # 4 replica hosts + 2 gateways
    failures = []
    started = time.time()
    total = 0

    print(f"single-fault sweep: {processors} victims x {len(grid)} instants")
    for index, delay in itertools.product(range(processors), grid):
        total += 1
        ok, detail, world = run([(index, delay)], args.ops,
                                audit=args.audit)
        if not ok:
            name = f"single victim={index} t={delay}"
            dump = _dump_flight(world, name, args.flight_dir)
            failures.append((name, f"{detail} [flight: {dump}]"))

    if args.double:
        print("double-fault sweep (this takes a while) ...")
        for (i1, t1), (i2, t2) in itertools.product(
                itertools.product(range(processors), grid[::2]), repeat=2):
            if t2 <= t1 or i1 == i2:
                continue
            total += 1
            ok, detail, world = run([(i1, t1), (i2, t2)], args.ops,
                                    audit=args.audit)
            if not ok:
                name = f"double ({i1}@{t1}, {i2}@{t2})"
                dump = _dump_flight(world, name, args.flight_dir)
                failures.append((name, f"{detail} [flight: {dump}]"))

    elapsed = time.time() - started
    print(f"\n{total} scenarios in {elapsed:.1f}s wall; "
          f"{len(failures)} invariant violations")
    for name, detail in failures[:20]:
        print(f"  FAIL {name}: {detail}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
