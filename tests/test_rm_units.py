"""Focused unit tests of Replication Mechanisms internals and edges."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import NoResponse, ReplicationStyle, World
from repro.core import OperationId
from repro.errors import ConfigurationError
from repro.eternal.replication import _deterministic_request_id

from tests.helpers import external_client, make_counter_group, make_domain


def test_deterministic_request_id_is_stable_and_spreads():
    a = _deterministic_request_id(OperationId(100, 3))
    b = _deterministic_request_id(OperationId(100, 3))
    c = _deterministic_request_id(OperationId(101, 3))
    d = _deterministic_request_id(OperationId(100, 4))
    assert a == b
    assert len({a, c, d}) == 3
    assert 0 <= a < 2**32


@given(st.integers(1, 2**24 - 1), st.integers(1, 255),
       st.integers(1, 2**24 - 1), st.integers(1, 255))
def test_deterministic_request_id_injective_in_range_property(t1, s1, t2, s2):
    """Within the masked ranges (24-bit timestamps, 8-bit child counts)
    the derivation is injective — distinct ops, distinct request ids."""
    id1 = _deterministic_request_id(OperationId(t1, s1))
    id2 = _deterministic_request_id(OperationId(t2, s2))
    assert (id1 == id2) == ((t1, s1) == (t2, s2))


def test_votes_needed_by_style(world):
    domain = make_domain(world)
    plain = make_counter_group(domain, name="Plain")
    voting = make_counter_group(domain, name="Voting",
                                style=ReplicationStyle.ACTIVE_WITH_VOTING)
    domain.await_ready(plain)
    domain.await_ready(voting)
    rm = domain.coordinator_rm()
    assert rm._votes_needed(rm.registry.get(plain.group_id)) == 1
    assert rm._votes_needed(rm.registry.get(voting.group_id)) == 2


def test_external_invoke_unknown_group_rejects(world):
    domain = make_domain(world)
    rm = domain.coordinator_rm()
    promise = rm.external_invoke(424242, "value", [], "tester", 1)
    with pytest.raises(ConfigurationError):
        promise.result()


def test_external_invoke_oneway_resolves_immediately(world):
    from repro.iiop import TC_STRING, TC_VOID, TC_LONG
    from repro.orb import Interface, Operation, Param, Servant

    SINK = Interface("Sink", [
        Operation("emit", [Param("s", TC_STRING)], TC_VOID, oneway=True),
        Operation("count", [], TC_LONG),
    ])

    class SinkServant(Servant):
        interface = SINK

        def __init__(self):
            self.n = 0

        def emit(self, s):
            self.n += 1

        def count(self):
            return self.n

    domain = make_domain(world)
    group = domain.create_group("Sink", SINK, SinkServant)
    domain.await_ready(group)
    rm = domain.coordinator_rm()
    promise = rm.external_invoke(group.group_id, "emit", ["x"], "t", 1)
    assert promise.done and promise.result() is None
    world.run(until=world.now + 0.5)
    assert world.await_promise(group.invoke("count")) == 1


def test_invocation_after_group_removal_gets_object_not_exist(world):
    """Once GROUP_REMOVE propagates, the gateway's registry no longer
    knows the object key: the client gets OBJECT_NOT_EXIST, exactly what
    a CORBA client expects of a destroyed object."""
    from repro.errors import CorbaSystemException
    from repro.eternal import DomainMessage, MsgKind
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    _, stub, _ = external_client(world, domain, group)
    world.await_promise(stub.call("increment", 1))
    domain.coordinator_rm().multicast(DomainMessage(
        kind=MsgKind.GROUP_REMOVE, source_group=0, target_group=0,
        data={"group_id": group.group_id}))
    world.run(until=world.now + 0.5)
    with pytest.raises(CorbaSystemException) as excinfo:
        world.await_promise(stub.call("value"), timeout=600)
    assert "ObjectNotExist" in str(excinfo.value)


def test_uppercase_hex_ior_accepted():
    from repro.iiop import Ior
    ior = Ior.for_endpoints("IDL:x:1.0", [("h", 1)], b"k")
    text = ior.to_string()
    upper = "IOR:" + text[4:].upper()
    assert Ior.from_string(upper).primary_profile().address == ("h", 1)


def test_rm_stats_shape(world):
    domain = make_domain(world)
    group = make_counter_group(domain)
    world.await_promise(group.invoke("increment", 1))
    world.run(until=world.now + 0.3)
    rm = domain.coordinator_rm()
    for key in ("invocations_executed", "responses_delivered",
                "responses_suppressed", "invocations_duplicate",
                "state_transfers_sent", "replays"):
        assert key in rm.stats
        assert rm.stats[key] >= 0


def test_dedup_table_is_bounded(world, monkeypatch):
    import repro.eternal.replication as replication_module
    monkeypatch.setattr(replication_module, "DEDUP_TABLE_LIMIT", 5)
    domain = make_domain(world)
    group = make_counter_group(domain)
    for _ in range(12):
        world.await_promise(group.invoke("increment", 1))
    world.run(until=world.now + 0.3)
    rm = next(r for r in domain.rms.values()
              if group.group_id in r.replicas)
    assert len(rm._invocations_seen[group.group_id]) <= 5
    # Eviction never broke correctness: state reflects all 12 ops.
    assert world.await_promise(group.invoke("value")) == 12
