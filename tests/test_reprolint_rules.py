"""Per-rule tests for the reprolint rule pack, over committed fixtures.

Every rule gets a bad fixture (must flag) and a good fixture (must not),
both under ``tests/fixtures/lint/``.  Fixtures carry a
``# reprolint: module=...`` directive so the repo-aware scoping (which
packages are deterministic / sim-only / audited) applies to files that
live outside ``src/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.lint import default_config, lint_source

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "lint"
CONFIG = default_config(REPO_ROOT)


def lint_fixture(name):
    path = FIXTURES / name
    return lint_source(path.read_text(encoding="utf-8"), path=str(path),
                       config=CONFIG)


def codes(result):
    return sorted({v.code for v in result.violations})


@pytest.mark.parametrize("code,bad,good", [
    ("DET001", "det001_bad.py", "det001_good.py"),
    ("DET002", "det002_bad.py", "det002_good.py"),
    ("DET003", "det003_bad.py", "det003_good.py"),
    ("DET004", "det004_bad.py", "det004_good.py"),
    ("SIM001", "sim001_bad.py", "sim001_good.py"),
    ("OBS001", "obs001_bad.py", "obs001_good.py"),
    ("AUD001", "aud001_bad.py", "aud001_good.py"),
    ("EXC001", "exc001_bad.py", "exc001_good.py"),
    ("SM001", "sm001_bad.py", "sm001_good.py"),
    ("FLOW001", "flow001_bad.py", "flow001_good.py"),
    ("FLOW002", "flow002_bad.py", "flow002_good.py"),
    ("FLOW003", "flow003_bad.py", "flow003_good.py"),
])
def test_rule_flags_bad_and_passes_good(code, bad, good):
    bad_result = lint_fixture(bad)
    assert code in codes(bad_result), \
        f"{bad} should trip {code}, got {codes(bad_result)}"
    good_result = lint_fixture(good)
    assert code not in codes(good_result), \
        f"{good} unexpectedly tripped {code}: " \
        f"{[v.describe() for v in good_result.violations]}"


def test_bad_fixtures_flag_every_offending_construct():
    """Spot-check counts so a rule that silently stops matching one of
    its constructs cannot hide behind the any-violation assertion."""
    det1 = lint_fixture("det001_bad.py")
    assert len([v for v in det1.violations if v.code == "DET001"]) >= 3
    sim1 = lint_fixture("sim001_bad.py")
    assert len([v for v in sim1.violations if v.code == "SIM001"]) >= 3
    obs1 = lint_fixture("obs001_bad.py")
    flagged = {v.message for v in obs1.violations if v.code == "OBS001"}
    assert any("definitely.not.in.catalogue" in m for m in flagged)
    assert any("mystery.span" in m for m in flagged)
    assert any("series.not.in.catalogue" in m for m in flagged)
    assert any("series.also.uncatalogued" in m for m in flagged)
    assert any("flight.mystery.kind" in m for m in flagged)
    aud1 = lint_fixture("aud001_bad.py")
    flagged = {v.message for v in aud1.violations if v.code == "AUD001"}
    assert any("_forgotten" in m for m in flagged)
    assert not any("_pending" in m for m in flagged)
    exc1 = lint_fixture("exc001_bad.py")
    assert len([v for v in exc1.violations if v.code == "EXC001"]) == 2
    sm1 = lint_fixture("sm001_bad.py")
    flagged = {v.message for v in sm1.violations if v.code == "SM001"}
    assert any("`Phase` misses OPERATIONAL" in m for m in flagged)
    assert any("`Valve` misses HALF" in m for m in flagged)
    assert any("dict dispatch over `Phase`" in m for m in flagged)
    flow2 = lint_fixture("flow002_bad.py")
    flagged = {v.message for v in flow2.violations if v.code == "FLOW002"}
    assert any("MsgKind.RETIRED" in m and "dead handler" in m
               for m in flagged)
    assert any("MsgKind.GHOST" in m and "dead message kind" in m
               for m in flagged)


def test_rules_scope_to_their_packages():
    """The same wall-clock read is a violation only inside the
    deterministic packages."""
    source = ("# reprolint: module={module}\n"
              "import time\n\n\n"
              "def stamp():\n"
              "    return time.time()\n")
    sim = lint_source(source.format(module="repro.sim.fake"),
                      config=CONFIG)
    assert "DET001" in codes(sim)
    # DET001 guards *all* repro modules (hostclock is the one boundary),
    # but SIM001's blocking-I/O rules are scoped to sim-driven packages:
    blocking = ("# reprolint: module={module}\n\n\n"
                "def read(path):\n"
                "    return open(path).read()\n")
    assert "SIM001" in codes(
        lint_source(blocking.format(module="repro.core.fake"),
                    config=CONFIG))
    assert "SIM001" not in codes(
        lint_source(blocking.format(module="repro.obs.fake"),
                    config=CONFIG))


def test_suppression_end_of_line_and_next_line_forms():
    base = ("# reprolint: module=repro.sim.fake\n"
            "import time\n\n\n"
            "def stamp():\n"
            "    return time.time(){eol}\n")
    flagged = lint_source(base.format(eol=""), config=CONFIG)
    assert "DET001" in codes(flagged)
    eol = lint_source(
        base.format(eol="  # reprolint: disable=DET001 -- fixture"),
        config=CONFIG)
    assert eol.violations == []
    assert len(eol.suppressed) == 1
    prev = lint_source(
        "# reprolint: module=repro.sim.fake\n"
        "import time\n\n\n"
        "def stamp():\n"
        "    # reprolint: disable=DET001 -- fixture\n"
        "    return time.time()\n", config=CONFIG)
    assert prev.violations == []
    assert len(prev.suppressed) == 1


def test_file_level_suppression_and_unused_tracking():
    result = lint_source(
        "# reprolint: module=repro.sim.fake\n"
        "# reprolint: disable-file=DET001 -- fixture\n"
        "import time\n\n\n"
        "def stamp():\n"
        "    return time.time()\n", config=CONFIG)
    assert result.violations == []
    assert result.suppressed
    unused = lint_source(
        "# reprolint: module=repro.sim.fake\n"
        "# reprolint: disable-file=DET002 -- matches nothing\n"
        "X = 1\n", config=CONFIG)
    assert [s.used for s in unused.suppressions] == [False]


def test_suppression_syntax_in_docstrings_is_ignored():
    """Directives quoted in docstrings (the framework documents its own
    syntax) must be neither suppressions nor unused-suppression noise."""
    result = lint_source(
        '"""Use ``# reprolint: disable=DET001`` to suppress."""\n'
        "X = 1\n", config=CONFIG)
    assert result.suppressions == []


def test_unjustified_suppression_is_counted():
    result = lint_source(
        "# reprolint: module=repro.sim.fake\n"
        "import time\n\n\n"
        "def stamp():\n"
        "    return time.time()  # reprolint: disable=DET001\n",
        config=CONFIG)
    assert result.violations == []
    used = [s for s in result.suppressions if s.used]
    assert len(used) == 1 and not used[0].justification
