"""A minimal stateful application: a replicated counter.

Used by the quickstart example and by tests that need the simplest
possible deterministic stateful servant.
"""

from __future__ import annotations

from ..errors import InvocationFailure
from ..iiop.types import TC_LONG, TC_VOID
from ..orb.idl import Interface, Operation, Param
from ..orb.servant import Servant

COUNTER_INTERFACE = Interface("Counter", [
    Operation("increment", [Param("amount", TC_LONG)], TC_LONG),
    Operation("decrement", [Param("amount", TC_LONG)], TC_LONG),
    Operation("value", [], TC_LONG),
    Operation("reset", [], TC_VOID),
    Operation("fail_if_negative", [], TC_VOID),
])


class CounterServant(Servant):
    """A counter with a guard operation that raises a user exception."""

    interface = COUNTER_INTERFACE

    def __init__(self) -> None:
        self.count = 0

    def increment(self, amount: int) -> int:
        self.count += amount
        return self.count

    def decrement(self, amount: int) -> int:
        self.count -= amount
        return self.count

    def value(self) -> int:
        return self.count

    def reset(self) -> None:
        self.count = 0

    def fail_if_negative(self) -> None:
        if self.count < 0:
            raise InvocationFailure("IDL:repro/NegativeCounter:1.0",
                                    f"count is {self.count}")
