# reprolint: module=repro.sim.fixture_sm
"""SM001 good: exhaustive dispatches, explicit defaults, non-dispatch
shapes the rule must leave alone."""

import enum


class Phase(enum.Enum):
    GATHER = "gather"
    COMMIT = "commit"
    OPERATIONAL = "operational"


def describe(phase):
    # Exhaustive: every member tested.
    if phase is Phase.GATHER:
        return "gathering"
    elif phase is Phase.COMMIT:
        return "committing"
    elif phase is Phase.OPERATIONAL:
        return "operational"
    return "?"


def describe_defaulted(phase):
    # Non-exhaustive but carries an explicit else: the author opted in
    # to a default, so the dispatch cannot silently fall through.
    if phase is Phase.GATHER:
        return "gathering"
    elif phase is Phase.COMMIT:
        return "committing"
    else:
        return "running"


def is_gathering(phase):
    # A single guard is a predicate, not a dispatch.
    if phase is Phase.GATHER:
        return True
    return False


def _on_gather(msg):
    return msg


def _on_commit(msg):
    return msg


def _on_operational(msg):
    return msg


# Exhaustive handler table.
HANDLERS = {
    Phase.GATHER: _on_gather,
    Phase.COMMIT: _on_commit,
    Phase.OPERATIONAL: _on_operational,
}

# String labels are not handlers: a partial *labelling* dict is fine.
LABELS = {
    Phase.GATHER: "gathering",
    Phase.COMMIT: "committing",
}
