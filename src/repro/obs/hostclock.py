"""The one sanctioned wall-clock boundary of the reproduction.

Everything simulated reads the deterministic scheduler clock; the only
legitimate consumers of *host* time are throughput measurements — wall
metrics (``wall=True``), benchmarks, and tools.  All of them must go
through this module, which exists precisely so that ``reprolint``'s
DET001 rule can forbid ``time.time`` / ``time.perf_counter`` /
``datetime.now`` everywhere else: a wall-clock read outside this file
is, by construction, a determinism bug (see docs/STATIC_ANALYSIS.md).

The clock is injectable: tests exercise wall-metric code paths against
a scripted fake clock instead of asserting "some positive float came
out", and a frozen clock makes even ``include_wall=True`` snapshots
reproducible.
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager
from typing import Callable, Iterator

WallClockFn = Callable[[], float]

# reprolint: disable=DET001 -- this IS the sanctioned host-time boundary
_default_wall_clock: WallClockFn = _time.perf_counter
_wall_clock: WallClockFn = _default_wall_clock


def wall_clock() -> float:
    """Read the host's monotonic wall clock (or the injected override)."""
    return _wall_clock()


def current_wall_clock() -> WallClockFn:
    """The callable :func:`wall_clock` currently delegates to."""
    return _wall_clock


def set_wall_clock(fn: WallClockFn) -> WallClockFn:
    """Replace the process-wide wall clock; returns the previous one.

    Prefer the scoped :func:`override_wall_clock` in tests.
    """
    global _wall_clock
    previous = _wall_clock
    _wall_clock = fn
    return previous


def reset_wall_clock() -> None:
    """Restore the real host clock (``time.perf_counter``)."""
    global _wall_clock
    _wall_clock = _default_wall_clock


@contextmanager
def override_wall_clock(fn: WallClockFn) -> Iterator[WallClockFn]:
    """Scoped injection: ``with override_wall_clock(fake): ...``."""
    previous = set_wall_clock(fn)
    try:
        yield fn
    finally:
        set_wall_clock(previous)
