"""Tests for the Eternal Interceptor's address interposition (section 3.1)."""

import pytest

from repro import Orb, World
from repro.apps import COUNTER_INTERFACE, CounterServant
from repro.errors import ConfigurationError

from tests.helpers import make_counter_group, make_domain


def test_published_ior_points_at_gateway_not_replicas(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    domain.await_ready(group)
    ior = domain.ior_for(group)
    profile = ior.primary_profile()
    gateway = domain.gateways[0]
    assert profile.address == (gateway.host.name, gateway.port)


def test_published_ior_object_key_encodes_group(world):
    from repro.eternal import parse_object_key
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    ior = domain.ior_for(group)
    parsed = parse_object_key(ior.primary_profile().object_key)
    assert parsed == (domain.name, group.group_id)


def test_multi_profile_ior_lists_all_gateways(world):
    domain = make_domain(world, gateways=3)
    group = make_counter_group(domain)
    ior = domain.ior_for(group)
    hosts = {p.host for p in ior.iiop_profiles()}
    assert hosts == {gw.host.name for gw in domain.gateways}


def test_first_gateway_only_ior_has_single_profile(world):
    domain = make_domain(world, gateways=3)
    group = make_counter_group(domain)
    ior = domain.ior_for(group, first_gateway_only=True)
    assert len(ior.iiop_profiles()) == 1


def test_live_gateways_lead_the_profile_list(world):
    domain = make_domain(world, gateways=2)
    group = make_counter_group(domain)
    world.faults.crash_now(domain.gateways[0].host.name)
    ior = domain.ior_for(group)
    profiles = ior.iiop_profiles()
    assert profiles[0].host == domain.gateways[1].host.name
    assert profiles[1].host == domain.gateways[0].host.name


def test_domain_without_gateway_cannot_publish(world):
    domain = make_domain(world, gateways=0)
    group = make_counter_group(domain)
    with pytest.raises(ConfigurationError):
        domain.ior_for(group)


def test_interpose_orb_overrides_published_address(world):
    """The getsockname()/sysinfo() seam: a plain ORB whose address query
    is interposed publishes the gateway's address in its IORs."""
    domain = make_domain(world, gateways=1)
    gateway = domain.gateways[0]
    server_host = world.add_host("legacy-server")
    orb = Orb(world, server_host)
    orb.listen(9000)
    # Without interposition the ORB publishes its own address.
    plain_ior = orb.activate_object(CounterServant())
    assert plain_ior.primary_profile().address == ("legacy-server", 9000)
    # With Eternal's interceptor attached, the same call publishes the
    # gateway address — no IOR-string parsing involved (section 3.1).
    domain.interceptor.interpose_orb(orb)
    intercepted_ior = orb.activate_object(CounterServant())
    assert intercepted_ior.primary_profile().address == (
        gateway.host.name, gateway.port)
