"""Deterministic discrete-event scheduler.

Every moving part of the reproduction — simulated TCP, Totem token
rotation, replica execution, crash/recovery fault injection — runs on a
single instance of :class:`Scheduler`.  Events scheduled for the same
simulated time fire in the order they were scheduled (a monotonically
increasing tie-break counter), which makes every run exactly
reproducible for a given seed and script of events.

The scheduler is intentionally minimal: ``call_at`` / ``call_after``
return :class:`Timer` handles that can be cancelled, and ``run`` drives
the event loop until a time bound, an event budget, or quiescence.

Two hot-path refinements keep protocol timer churn cheap without
changing any observable ordering:

* ``reschedule`` moves a pending timer to a new time **in place**.  It
  draws a fresh tie-break — exactly what a cancel + ``call_at`` pair
  would have consumed — so the timer fires at precisely the same
  ``(time, tiebreak)`` position the slow path would have produced, but
  without pushing a second heap entry per move: the old entry is
  recognised as stale when it surfaces and is either dropped or
  re-pushed at the timer's authoritative key.
* cancelled entries are counted, and when they outnumber half the
  queue the heap is compacted in one pass, so pathological
  cancel-heavy workloads cannot make every pop wade through garbage.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError

# Compaction only pays for itself once the queue is non-trivial.
_COMPACT_MIN_QUEUE = 64


class Timer:
    """Handle for a scheduled callback; cancellable until it fires.

    ``_key`` is the authoritative ``(time, tiebreak)`` position of the
    timer; ``_queued_key`` is the key of the newest heap entry pushed
    for it.  The two differ only while a lazy ``reschedule`` to a later
    time is pending, in which case the stale entry re-pushes the timer
    at ``_key`` when it surfaces.
    """

    __slots__ = ("time", "fn", "args", "cancelled", "fired",
                 "_key", "_queued_key", "_sched")

    def __init__(self, time: float, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self._key: Tuple[float, int] = (time, -1)
        self._queued_key: Tuple[float, int] = self._key
        self._sched: Optional["Scheduler"] = None

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already fired)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sched is not None:
            self._sched._note_cancelled()

    @property
    def active(self) -> bool:
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Timer t={self.time:.6f} {name} {state}>"


class Scheduler:
    """Priority-queue event loop with deterministic same-time ordering."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Timer]] = []
        self._tiebreak = itertools.count()
        self._events_processed = 0
        self._running = False
        self._cancelled_in_queue = 0
        self.timers_rescheduled = 0
        self.queue_compactions = 0
        self._m_rescheduled = None  # optional repro.obs counters
        self._m_compactions = None

    def attach_metrics(self, registry) -> None:
        """Export reschedule/compaction counts through a metrics registry."""
        self._m_rescheduled = registry.counter("sched.timers.rescheduled")
        self._m_compactions = registry.counter("sched.queue.compactions")

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        timer = Timer(time, fn, args)
        timer._sched = self
        key = (time, next(self._tiebreak))
        timer._key = key
        timer._queued_key = key
        heapq.heappush(self._queue, (key[0], key[1], timer))
        return timer

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` after a relative ``delay`` (>= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        # Inlined call_at body: every simulated event passes through
        # here, so the extra frame is worth avoiding.  ``delay >= 0``
        # already guarantees ``time >= now``.
        time = self.now + delay
        timer = Timer(time, fn, args)
        timer._sched = self
        key = (time, next(self._tiebreak))
        timer._key = key
        timer._queued_key = key
        heapq.heappush(self._queue, (time, key[1], timer))
        return timer

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at the current time (after pending events)."""
        return self.call_at(self.now, fn, *args)

    def reschedule(self, timer: Timer, time: float) -> Timer:
        """Move a pending timer to absolute ``time`` without re-allocating.

        Exactly equivalent — including same-time ordering — to
        ``timer.cancel()`` followed by ``call_at(time, timer.fn,
        *timer.args)``: one fresh tie-break is drawn at this moment, so
        the timer fires at the same position in the event order the
        cancel-and-recreate idiom would have given it.  The heap entry
        is only re-pushed immediately when the timer moves *earlier*;
        moves to a later time ride along until the stale entry
        surfaces, which amortises a burst of M reschedules into a
        single extra push.
        """
        if not timer.active:
            raise SimulationError(f"cannot reschedule inactive timer {timer!r}")
        if timer._sched is not self:
            raise SimulationError("timer belongs to a different scheduler")
        if time < self.now:
            raise SimulationError(
                f"cannot reschedule event to t={time} before now={self.now}"
            )
        timer.time = time
        timer._key = (time, next(self._tiebreak))
        if time < timer._queued_key[0]:
            # Moving earlier: the queued entry would surface too late,
            # so push the authoritative key now and let the old entry
            # be dropped as a duplicate when it eventually pops.
            timer._queued_key = timer._key
            heapq.heappush(self._queue, (time, timer._key[1], timer))
        self.timers_rescheduled += 1
        if self._m_rescheduled is not None:
            self._m_rescheduled.inc()
        return timer

    def reschedule_after(self, timer: Timer, delay: float) -> Timer:
        """Move a pending timer to ``now + delay``; see ``reschedule``.

        Inlined body of ``reschedule`` — this is the once-per-token-pass
        loss-timer path, and ``delay >= 0`` makes ``time >= now``.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        if timer.cancelled or timer.fired:
            raise SimulationError(f"cannot reschedule inactive timer {timer!r}")
        if timer._sched is not self:
            raise SimulationError("timer belongs to a different scheduler")
        time = self.now + delay
        timer.time = time
        timer._key = (time, next(self._tiebreak))
        if time < timer._queued_key[0]:
            timer._queued_key = timer._key
            heapq.heappush(self._queue, (time, timer._key[1], timer))
        self.timers_rescheduled += 1
        if self._m_rescheduled is not None:
            self._m_rescheduled.inc()
        return timer

    def rearm_after(self, timer: Timer, delay: float) -> Timer:
        """Re-schedule a timer that has already *fired*, reusing the
        object.  Draws a fresh tie-break at this moment — exactly what
        ``call_after(delay, timer.fn, *timer.args)`` would consume — so
        event ordering is identical to recreating the timer; only the
        allocation is saved.  Meant for strictly periodic hot-path
        timers (e.g. the Totem token hold timer)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        if timer.cancelled or not timer.fired:
            raise SimulationError(f"can only rearm a fired timer, got {timer!r}")
        if timer._sched is not self:
            raise SimulationError("timer belongs to a different scheduler")
        timer.fired = False
        time = self.now + delay
        timer.time = time
        key = (time, next(self._tiebreak))
        timer._key = key
        timer._queued_key = key
        heapq.heappush(self._queue, (time, key[1], timer))
        return timer

    # ------------------------------------------------------------------
    # Queue hygiene
    # ------------------------------------------------------------------

    def _note_cancelled(self) -> None:
        self._cancelled_in_queue += 1
        if (len(self._queue) >= _COMPACT_MIN_QUEUE
                and self._cancelled_in_queue > len(self._queue) // 2):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled/duplicate entries and normalise pending lazy
        reschedules to their authoritative keys, in one heapify."""
        live: List[Tuple[float, int, Timer]] = []
        for time, tiebreak, timer in self._queue:
            if not timer.active:
                continue
            if (time, tiebreak) != timer._queued_key:
                continue  # superseded duplicate from an earlier-move push
            key = timer._key
            timer._queued_key = key
            live.append((key[0], key[1], timer))
        heapq.heapify(live)
        self._queue = live
        self._cancelled_in_queue = 0
        self.queue_compactions += 1
        if self._m_compactions is not None:
            self._m_compactions.inc()

    def _pop_stale(self, time: float, tiebreak: int, timer: Timer) -> None:
        """Bookkeeping for a popped garbage entry (cancelled, superseded,
        or lazily rescheduled).  The pop loops test liveness inline —
        ``timer.cancelled or (time, tiebreak) != timer._key`` — and only
        call here on the rare stale path."""
        if timer.cancelled:
            if self._cancelled_in_queue:
                self._cancelled_in_queue -= 1
            return
        if (time, tiebreak) == timer._queued_key:
            # Lazy reschedule to a later time: push the authoritative
            # key now that the stale entry surfaced.
            key = timer._key
            timer._queued_key = key
            heapq.heappush(self._queue, (key[0], key[1], timer))

    # ------------------------------------------------------------------
    # Driving the loop
    # ------------------------------------------------------------------

    @property
    def pending_events(self) -> int:
        """Number of queued events, including cancelled ones not yet popped."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        while self._queue:
            time, tiebreak, timer = heapq.heappop(self._queue)
            if timer.cancelled or (time, tiebreak) != timer._key:
                self._pop_stale(time, tiebreak, timer)
                continue
            self.now = time
            timer.fired = True
            self._events_processed += 1
            timer.fn(*timer.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 10_000_000,
    ) -> int:
        """Run events until quiescence, ``until`` time, or ``max_events``.

        Returns the number of events processed by this call.  When
        ``until`` is given the clock is advanced to ``until`` even if the
        queue drains earlier, so follow-up ``call_after`` calls measure
        from the bound.
        """
        if self._running:
            raise SimulationError("scheduler re-entered: run() called from an event")
        self._running = True
        processed = 0
        heappop = heapq.heappop
        try:
            # NOTE: self._queue is re-read every iteration on purpose —
            # a compaction triggered inside an event handler rebinds it.
            while self._queue and processed < max_events:
                time, tiebreak, timer = self._queue[0]
                if until is not None and time > until:
                    break
                heappop(self._queue)
                if timer.cancelled or (time, tiebreak) != timer._key:
                    self._pop_stale(time, tiebreak, timer)
                    continue
                self.now = time
                timer.fired = True
                self._events_processed += 1
                processed += 1
                timer.fn(*timer.args)
            if processed >= max_events:
                raise SimulationError(
                    f"event budget exhausted ({max_events} events): likely a livelock"
                )
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        return processed

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 60.0,
        max_events: int = 10_000_000,
    ) -> None:
        """Run until ``predicate()`` is true; raise on simulated timeout."""
        deadline = self.now + timeout
        processed = 0
        while not predicate():
            if not self._queue:
                raise SimulationError(
                    "simulation quiesced before condition became true"
                )
            time, tiebreak, timer = heapq.heappop(self._queue)
            if timer.cancelled or (time, tiebreak) != timer._key:
                self._pop_stale(time, tiebreak, timer)
                continue
            if time > deadline:
                raise SimulationError(
                    f"condition not reached within {timeout}s of simulated time"
                )
            self.now = time
            timer.fired = True
            self._events_processed += 1
            processed += 1
            if processed > max_events:
                raise SimulationError("event budget exhausted in run_until")
            timer.fn(*timer.args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Scheduler now={self.now:.6f} queued={len(self._queue)}>"
