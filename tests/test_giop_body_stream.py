"""Tests for body_input_stream and remaining dispatch/duplicates units."""

import pytest

from repro.core import DuplicateSuppressor
from repro.errors import MarshalError
from repro.iiop import (
    ReplyMessage,
    RequestMessage,
    ServiceContext,
    body_input_stream,
    encode_reply,
    encode_request,
)
from repro.iiop.cdr import CdrOutputStream


def make_request_with_body():
    body = CdrOutputStream()
    body.write_long(7)
    body.write_string("arg")
    return encode_request(RequestMessage(
        request_id=3, response_expected=True, object_key=b"key",
        operation="op",
        service_contexts=[ServiceContext(0x45540001, b"\x00ctx")],
        principal=b"p", body=body.getvalue()))


def test_body_input_stream_positions_after_request_header():
    message = make_request_with_body()
    stream = body_input_stream(message, "request")
    assert stream.read_long() == 7
    assert stream.read_string() == "arg"
    assert stream.remaining == 0


def test_body_input_stream_positions_after_reply_header():
    body = CdrOutputStream()
    body.write_string("result")
    message = encode_reply(ReplyMessage(request_id=3, status=0,
                                        body=body.getvalue()))
    stream = body_input_stream(message, "reply")
    assert stream.read_string() == "result"


def test_body_input_stream_rejects_unknown_kind():
    message = make_request_with_body()
    with pytest.raises(MarshalError):
        body_input_stream(message, "neither")


def test_forget_where_clears_pending_and_delivered():
    suppressor = DuplicateSuppressor()
    suppressor.expect(("g", "client-a", 1))
    suppressor.expect(("g", "client-b", 1))
    suppressor.offer(("g", "client-a", 1), b"r")   # delivered
    removed = suppressor.forget_where(lambda key: key[1] == "client-a")
    assert removed == 1
    # client-a's key can be served fresh again...
    suppressor.expect(("g", "client-a", 1))
    verdict, _ = suppressor.offer(("g", "client-a", 1), b"r2")
    assert verdict == DuplicateSuppressor.DELIVER
    # ...while client-b's expectation was untouched.
    assert suppressor.is_expected(("g", "client-b", 1))


def test_forget_where_on_pending_expectations():
    suppressor = DuplicateSuppressor()
    suppressor.expect(("g", "client-a", 1), votes_needed=2)
    suppressor.offer(("g", "client-a", 1), b"r", responder="r0")  # pending
    removed = suppressor.forget_where(lambda key: True)
    assert removed == 1
    assert suppressor.offer(("g", "client-a", 1), b"r")[0] == \
        DuplicateSuppressor.UNEXPECTED
