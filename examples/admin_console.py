#!/usr/bin/env python
"""Administering a fault tolerance domain from outside, via the gateway.

The paper notes (section 2) that the Replication Manager, Resource
Manager and Evolution Manager "are themselves implemented as collections
of CORBA objects and, thus, can themselves be replicated and thereby
benefit from Eternal's fault tolerance."  Consequence: an unreplicated
admin console outside the domain can drive the *replicated* Replication
Manager through the gateway exactly like any application object —
creating groups, inspecting fault tolerance properties, removing them —
and the console survives gateway failures like any enhanced client.

Run:  python examples/admin_console.py
"""

import json

from repro import FaultToleranceDomain, FtClientLayer, Orb, World
from repro.apps import COUNTER_INTERFACE, CounterServant
from repro.eternal import REPLICATION_MANAGER_GROUP, domain_report, format_report
from repro.eternal.managers import REPLICATION_MANAGER_INTERFACE


def main():
    world = World(seed=8080)
    domain = FaultToleranceDomain(world, "prod", num_hosts=4)
    domain.add_gateway(port=2809)
    domain.add_gateway(port=2809)
    domain.register_interface(COUNTER_INTERFACE)
    domain.register_factory("counter_factory", CounterServant)
    domain.await_stable()

    # The admin console: an unreplicated enhanced client outside 'prod'.
    console_host = world.add_host("ops-laptop")
    orb = Orb(world, console_host, request_timeout=None)
    layer = FtClientLayer(orb, client_uid="ops/alice")
    manager_ior = domain.interceptor.published_ior(
        REPLICATION_MANAGER_GROUP, REPLICATION_MANAGER_INTERFACE.repo_id)
    manager = layer.string_to_object(manager_ior.to_string(),
                                     REPLICATION_MANAGER_INTERFACE)

    print("creating object groups through the replicated manager ...")
    for name, style, replicas in (("orders", "active", 3),
                                  ("sessions", "warm_passive", 3),
                                  ("audit", "cold_passive", 2)):
        ior = world.await_promise(manager.call(
            "create_object", name, "Counter", "counter_factory",
            style, replicas, 2), timeout=600)
        print(f"  {name:<10} {style:<14} -> {ior[:40]}...")

    print("\nfault tolerance properties, as the manager reports them:")
    for name in ("orders", "sessions", "audit"):
        props = json.loads(world.await_promise(
            manager.call("get_properties", name), timeout=600))
        print(f"  {name:<10} {props}")

    print("\ncrashing gateway 0; console continues via gateway 1 ...")
    world.faults.crash_now(domain.gateways[0].host.name)
    world.await_promise(manager.call("remove_object", "audit"), timeout=600)
    print("  removed group 'audit' through the surviving gateway")
    print("  console failovers:", layer.failover_log)

    world.run(until=world.now + 0.5)
    print("\n" + format_report(domain_report(domain)))


if __name__ == "__main__":
    main()
