"""The gateway: entry point of a fault tolerance domain (paper section 3).

A gateway is *not* a CORBA object: it is infrastructure that bridges
two worlds whose semantics it alone understands —

* **outside**: unreplicated IIOP clients over TCP/IP, addressing the
  gateway's {host, port} (placed into published IORs by the Eternal
  Interceptor) and believing it to be the server;
* **inside**: the reliable totally-ordered multicast of the fault
  tolerance domain, where replicated objects are addressed by group id.

Per Figure 5, for every complete IIOP request picked off a client
socket the gateway: obtains the TCP client identifier (from the
section 3.5 service context if the client is enhanced, otherwise from
the per-server-group counter of section 3.2), maps the socket to that
identifier, generates the operation identifier, builds the Figure 4
header, and multicasts header + IIOP message into the domain.  For
every multicast response it: extracts the operation identifier, filters
duplicates (one response arrives per server replica — section 3.3),
finds the socket for the TCP client identifier, and forwards the IIOP
reply bytes verbatim.

With ``mirror_requests`` (section 3.5), each request is first multicast
to the *gateway group* so every redundant gateway records it; the
gateway group — not the connected gateway alone — receives the
response, so any gateway can serve the reply after a failover, and a
surviving gateway re-forwards requests a crashed peer had accepted but
not yet forwarded.  Gateways also tell their peers when a client goes
away so per-client state can be deleted everywhere.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from ..errors import ObjectNotExist, TransientError
from ..iiop.giop import MsgType, decode_request, parse_header
from ..iiop.service_context import extract_client_id, extract_trace_context
from ..orb.connection import IiopServerConnection
from ..orb.dispatch import reply_for_exception
from ..sim.host import Host, Process
from ..sim.tcp import TcpEndpoint
from .duplicates import DuplicateSuppressor
from .identifiers import ClientId, OperationId, external_operation_id

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..eternal.domain import FaultToleranceDomain
    from ..eternal.messages import DomainMessage


@dataclass
class _PendingRequest:
    """A client request forwarded into the domain, awaiting its response."""

    client_id: ClientId
    op_id: OperationId
    target_group: int
    iiop: bytes
    forwarder: str
    forwarded: bool = False
    response_expected: bool = True
    # Simulated receipt time at the gateway that read the request off its
    # client socket; None for records reconstructed from mirrors (the
    # mirror observer never saw the request arrive).
    received_at: float = None  # type: ignore[assignment]
    # The INVOCATION message built on first forward and reused for
    # takeover re-forwards: its payload (marshalled request bytes and
    # header fields) never changes between forwards, so there is no
    # reason to rebuild and re-weigh it per forward.
    forward_message: "DomainMessage" = None  # type: ignore[assignment]
    # Causal tracing (repro.obs.tracing): the invocation's trace id,
    # hop count, container span (gateway.request, receipt -> egress)
    # and the open ordering-wait span of the last forward.  All zero
    # when tracing is disabled or the record came from an untraced
    # mirror.
    trace_id: str = ""
    trace_hop: int = 0
    trace_span: int = 0
    order_span: int = 0
    # True while this request occupies a slot of the gateway's bounded
    # admission window (gateway-farm backpressure); always False when
    # admission control is disabled or on mirror-reconstructed records.
    admitted: bool = False


class Gateway(Process):
    """One gateway processor on the edge of a fault tolerance domain."""

    _indexes = itertools.count(0)

    def __init__(self, domain: "FaultToleranceDomain", host: Host, port: int,
                 mirror_requests: bool = True,
                 response_cache_limit: int = 10_000,
                 cancel_ttl: float = 30.0,
                 oneway_ttl: float = 30.0,
                 admission_window: Optional[int] = None,
                 admission_queue_limit: int = 64) -> None:
        super().__init__(host, f"gateway@{host.name}:{port}")
        self.domain = domain
        self.port = port
        self.mirror_requests = mirror_requests
        self.response_cache_limit = response_cache_limit
        self.index = next(Gateway._indexes)
        self.rm = domain.rms[host.name]
        self.rm.attach_gateway(self)
        self.rm.on_membership_change(self._on_membership)
        self.tracer = domain.world.tracer
        # World-shared causal-trace collector, cached off the property
        # for the hot path; every hook below checks ``.enabled`` first.
        self._span_collector = host.network.spans

        self._listener = None
        # Per-server-group client-id counters (section 3.2); the counter
        # space is partitioned per gateway so concurrent gateways never
        # accidentally alias (a crash/restart still reuses ids, which is
        # the section 3.4 weakness the paper analyses).
        self._counters: Dict[int, itertools.count] = {}
        self._conn_ids: Dict[IiopServerConnection, ClientId] = {}
        # Every ClientId a connection has carried: one TCP connection
        # may multiplex many logical clients (farm workloads), and each
        # of them needs gone/purge handling when the socket closes.
        self._conn_members: Dict[IiopServerConnection, Set[ClientId]] = {}
        self._routing: Dict[ClientId, IiopServerConnection] = {}
        self._pending: Dict[Tuple[ClientId, OperationId], _PendingRequest] = {}
        self._cache: Dict[Tuple[ClientId, OperationId], bytes] = {}
        self._cancelled: set = set()
        self._filter = DuplicateSuppressor()
        # Clients that closed their connection while operations were
        # still pending: the CLIENT_GONE broadcast is deferred until the
        # last pending operation resolves, so peers keep the mirror
        # records they need to collect the in-flight responses
        # (section 3.5) and the records themselves are reclaimed.
        self._gone_pending: set = set()
        # Retention layer: cancel tombstones and one-way pending records
        # have no response to resolve them, so each is reaped after a
        # TTL.  One on-demand timer serves the whole expiry heap;
        # nothing is armed while the heap is empty.
        self.cancel_ttl = cancel_ttl
        self.oneway_ttl = oneway_ttl
        self._reap_heap: list = []
        self._reap_seq = itertools.count()
        self._reap_timer = None

        # Admission control (gateway farm, paper section 3.3 scaled
        # out): a bounded in-flight window for two-way requests plus a
        # bounded overflow queue.  ``None`` disables the gate entirely —
        # the pre-farm behaviour, byte-identical event ordering.
        self.admission_window = admission_window
        self.admission_queue_limit = admission_queue_limit
        self._admission_queue: Deque[
            Tuple[Any, bytes, IiopServerConnection, float]] = deque()
        self._own_inflight = 0
        # Back-reference installed by GatewayPool.adopt(); None outside
        # a pool.
        self.pool = None

        # reprolint: disable=AUD001 -- fixed key set, bounded by construction
        self.stats = {
            "requests_received": 0,
            "requests_forwarded": 0,
            "cache_replays": 0,
            "responses_delivered": 0,
            "duplicates_suppressed": 0,
            "responses_unroutable": 0,
            "responses_unexpected": 0,
            "mirrors_recorded": 0,
            "takeover_forwards": 0,
            "clients_connected": 0,
            "clients_gone": 0,
            "bad_object_key": 0,
            "cancels": 0,
            "cancels_reaped": 0,
            "oneways_completed": 0,
            "oneways_reaped": 0,
            "client_gone_deferred": 0,
            "requests_queued": 0,
            "requests_shed": 0,
            "queued_dropped": 0,
            "requests_unservable": 0,
            "votes_relaxed": 0,
        }

        # Style-era metrics (live style switching, unservable voting
        # targets) are created on first use so pre-existing scenarios
        # keep their exact metric key set.
        # reprolint: disable=AUD001 -- metric-object cache, bounded by the fixed name set
        self._lazy_counters: Dict[str, Any] = {}

        # World-shared metrics (one registry per world; every gateway of
        # the world aggregates into the same series).  The response
        # counters partition gateway.resp.received exactly:
        # received == suppressed + unexpected + vote_pending
        #             + delivered + unroutable.
        m = self.metrics
        # Per-group / per-gateway time series (repro.obs.series); the
        # registry is disabled by default, making every hook below one
        # attribute load plus one boolean test.
        self._series = host.network.series
        self._m_req_latency = m.histogram("gateway.req.latency", unit="s")
        self._m_req_received = m.counter("gateway.req.received")
        self._m_req_forwarded = m.counter("gateway.req.forwarded")
        self._m_cache_replays = m.counter("gateway.cache.replays")
        self._m_resp_received = m.counter("gateway.resp.received")
        self._m_resp_delivered = m.counter("gateway.resp.delivered")
        self._m_dup_suppressed = m.counter("gateway.dup.suppressed")
        self._m_resp_unexpected = m.counter("gateway.resp.unexpected")
        self._m_resp_unroutable = m.counter("gateway.resp.unroutable")
        self._m_resp_vote_pending = m.counter("gateway.resp.vote_pending")
        self._m_mirrors = m.counter("gateway.mirror.recorded")
        self._m_takeovers = m.counter("gateway.takeover.forwards")
        self._m_clients = m.counter("gateway.clients.connected")
        self._m_clients_gone = m.counter("gateway.clients.gone")
        self._m_bad_key = m.counter("gateway.req.bad_object_key")
        self._m_req_cancelled = m.counter("gateway.req.cancelled")
        self._m_reap_cancelled = m.counter("gateway.reap.cancelled")
        self._m_oneway_completed = m.counter("gateway.oneway.completed")
        self._m_reap_oneway = m.counter("gateway.reap.oneway")
        self._m_gone_deferred = m.counter("gateway.clients.gone_deferred")
        # Admission counters are created only when the gate is armed, so
        # farm-free scenarios keep their exact metric key set (and the
        # bench extra_info snapshots stay baseline-comparable).
        if admission_window is not None:
            self._m_adm_admitted = m.counter("gateway.adm.admitted")
            self._m_adm_queued = m.counter("gateway.adm.queued")
            self._m_adm_shed = m.counter("gateway.adm.shed")
        else:
            self._m_adm_admitted = None
            self._m_adm_queued = None
            self._m_adm_shed = None

        self._register_audit()

    def _register_audit(self) -> None:
        """Declare every per-client collection to the world audit scope
        (see :mod:`repro.obs.audit`) with its quiescence floor."""
        scope, owner = self.audit, self.name

        def alive() -> bool:
            return self.alive

        scope.register("gateway.pending", lambda: len(self._pending),
                       floor=0, owner=owner, active=alive,
                       gauge="gateway.state.pending")
        scope.register("gateway.cache", lambda: len(self._cache),
                       floor=lambda: self.response_cache_limit,
                       owner=owner, active=alive,
                       gauge="gateway.state.cache")
        scope.register("gateway.cancelled", lambda: len(self._cancelled),
                       floor=0, owner=owner, active=alive,
                       gauge="gateway.state.cancelled")
        scope.register("gateway.routing", lambda: len(self._routing),
                       floor=lambda: sum(
                           1 for c in self._routing.values() if c.open),
                       owner=owner, active=alive,
                       gauge="gateway.state.routing")
        scope.register("gateway.conn_ids", lambda: len(self._conn_ids),
                       floor=lambda: sum(1 for c in self._conn_ids if c.open),
                       owner=owner, active=alive,
                       gauge="gateway.state.conn_ids")
        scope.register("gateway.conn_members",
                       lambda: sum(len(s)
                                   for s in self._conn_members.values()),
                       floor=lambda: sum(
                           len(s) for c, s in self._conn_members.items()
                           if c.open),
                       owner=owner, active=alive,
                       gauge="gateway.state.conn_members")
        scope.register("gateway.admission_queue",
                       lambda: len(self._admission_queue),
                       floor=0, owner=owner, active=alive,
                       gauge="gateway.state.admission_queue")
        scope.register("gateway.admission_inflight",
                       lambda: self._own_inflight,
                       floor=0, owner=owner, active=alive,
                       gauge="gateway.state.admission_inflight")
        scope.register("gateway.gone_pending",
                       lambda: len(self._gone_pending),
                       floor=0, owner=owner, active=alive,
                       gauge="gateway.state.gone_pending")
        # The reap heap is lazily drained, so it may hold entries whose
        # target is already resolved: snapshot-only.
        scope.register("gateway.reap_queue", lambda: len(self._reap_heap),
                       floor=None, owner=owner, active=alive,
                       gauge="gateway.state.reap_queue")
        # One client-id counter per server group ever addressed through
        # this gateway: bounded by the directory, snapshot-only.
        scope.register("gateway.counters", lambda: len(self._counters),
                       floor=None, owner=owner, active=alive)
        self._filter.register_audit(scope, owner=owner, active=alive,
                                    prefix="gateway.filter",
                                    gauge_prefix="gateway.state.filter")

    # ==================================================================
    # Lifecycle
    # ==================================================================

    def handle_start(self) -> None:
        self._listener = self.domain.world.tcp.listen(
            self.host, self.port, self._on_accept)

    def handle_stop(self) -> None:
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        # On a *graceful* stop, close client connections so clients
        # detect the retirement promptly.  On a host crash the TCP stack
        # itself severs them (closing here would unregister the
        # endpoints before the stack can notify the peers).
        if self.host.alive:
            for connection in list(self._conn_ids):
                connection.close()

    def drain(self, poll_interval: float = 0.01, grace: float = 0.25):
        """Graceful shutdown: stop accepting new clients, serve out the
        requests already in flight, then stop the gateway.

        ``grace`` covers requests already travelling toward the gateway
        when the drain starts (the gateway cannot see bytes still on the
        wire); it should exceed one client round-trip time.

        Returns a promise resolved once the gateway has stopped.  With
        redundant gateways this lets an operator retire a gateway with
        zero client-visible failures (enhanced clients reconnect to the
        remaining profiles on their next invocation).
        """
        from ..sim.world import Promise
        promise = Promise()
        if self._listener is not None:
            self._listener.close()
            self._listener = None

        def check_drained() -> None:
            if not self.alive:
                promise.resolve(None)
                return
            own_pending = [p for p in self._pending.values()
                           if p.forwarder == self.host.name
                           and p.response_expected]
            if not own_pending and not self._admission_queue:
                self.stop()
                promise.resolve(None)
            else:
                self.after(poll_interval, check_drained)

        self.after(grace, check_drained)
        return promise

    # ==================================================================
    # TCP side (outside the domain)
    # ==================================================================

    def _on_accept(self, endpoint: TcpEndpoint) -> None:
        self.stats["clients_connected"] += 1
        self._m_clients.inc()
        IiopServerConnection(endpoint, self._on_client_message,
                             on_close=self._on_client_close)

    def _on_client_message(self, message: bytes,
                           connection: IiopServerConnection) -> None:
        message_type, _, _ = parse_header(message)
        if message_type == MsgType.CLOSE_CONNECTION:
            connection.close()
            return
        if message_type == MsgType.LOCATE_REQUEST:
            self._on_locate_request(message, connection)
            return
        if message_type == MsgType.CANCEL_REQUEST:
            self._on_cancel_request(message, connection)
            return
        if message_type != MsgType.REQUEST:
            return
        request = decode_request(message)
        self.stats["requests_received"] += 1
        self._m_req_received.inc()
        self._process_request(request, message, connection,
                              self.scheduler.now)

    def _process_request(self, request, message: bytes,
                         connection: IiopServerConnection,
                         received_at: float,
                         from_queue: bool = False) -> None:
        """Figure 5a pipeline for one decoded Request.

        ``from_queue`` marks re-entry from the admission overflow queue:
        the entry was already counted on receipt and the caller
        (``_release_admission``) guarantees a free window slot, so the
        admission gate is bypassed.  ``received_at`` is always the
        original socket receipt time, so the latency histogram includes
        queueing delay.
        """
        from ..eternal.naming import parse_object_key
        parsed = parse_object_key(request.object_key)
        info = None
        if parsed is not None and parsed[0] == self.domain.name:
            info = self.rm.registry.get(parsed[1])
        if info is None:
            self.stats["bad_object_key"] += 1
            self._m_bad_key.inc()
            if request.response_expected:
                connection.send(reply_for_exception(
                    request.request_id,
                    ObjectNotExist(f"no such object: {request.object_key!r}")))
            return
        target_group = info.group_id

        client_id = self._identify_client(request, connection, target_group)
        # A returning client (e.g. an egress successor reusing the same
        # identifiers) voids any deferred departure broadcast: purging
        # now would delete the state the reissues are about to claim.
        self._gone_pending.discard(client_id)
        # "Map socket to client identifier" (Figure 5a).
        self._routing[client_id] = connection
        op_id = external_operation_id(request.request_id)
        cache_key = (client_id, op_id)

        # Causal tracing: continue the trace carried in the request's
        # service context (enhanced clients), or root a gateway-owned
        # trace for plain clients.  The container span covers this
        # gateway's whole handling of the invocation, receipt to egress.
        spans = self._span_collector
        trace_id, trace_hop, container = "", 0, 0
        if spans.enabled:
            tctx = extract_trace_context(request)
            if tctx is not None:
                trace_id, parent, trace_hop = (tctx.trace_id, tctx.span_id,
                                               tctx.hop)
            else:
                trace_id, parent = (
                    f"gw/{self.name}/{client_id}/{request.request_id}", 0)
            container = spans.start(
                trace_id, "gateway.request", parent=parent, source=self.name,
                op=request.operation, client=str(client_id), hop=trace_hop)
            spans.instant(trace_id, "gateway.ingress", parent=container,
                          source=self.name)
            if self.pool is not None and not self.pool.is_hash_owner(
                    self, client_id, connection):
                # The client's consistent-hash owner is another pool
                # gateway: this invocation arrived here via failover,
                # locate re-homing, or least-connections fallback.
                spans.instant(trace_id, "pool.reroute", parent=container,
                              source=self.name)

        cached = self._cache.get(cache_key)
        if cached is not None:
            # A reinvocation whose response we already hold (the client
            # failed over to us, or retried): answer locally.
            self.stats["cache_replays"] += 1
            self._m_cache_replays.inc()
            connection.send(cached)
            if container:
                spans.instant(trace_id, "gateway.cache.replay",
                              parent=container, source=self.name)
                spans.end(container, outcome="cache_replay")
            return

        # Unservable fail-fast: a voting target with zero live replicas
        # can never assemble a majority, so a two-way request to it
        # would pin a pending record (and an admission slot) until the
        # client gives up.  Fail it now with the standard CORBA "try
        # again later" signal.  Checked before mirroring so peer
        # gateways never record a request that was never forwarded.
        votes = self._votes_for(info)
        if votes is None and request.response_expected:
            self.stats["requests_unservable"] += 1
            self._lazy_counter("gateway.req.unservable").inc()
            if container:
                spans.end(container, outcome="unservable")
            if connection.open:
                connection.send(reply_for_exception(
                    request.request_id,
                    TransientError(
                        f"server group {target_group} has no live "
                        f"replicas")))
            return

        # Admission gate (gateway farm): two-way requests occupy one
        # slot of the bounded in-flight window; overflow queues up to
        # ``admission_queue_limit`` and beyond that is shed with a
        # TRANSIENT system exception — the standard CORBA "try again
        # elsewhere/later" signal, which enhanced clients surface and
        # open-loop workloads count as lost offered load.  Cache
        # replays (above) are always served: a failed-over client
        # re-collecting a response must never be bounced.
        admitted = False
        if self.admission_window is not None and request.response_expected:
            if not from_queue and self._own_inflight >= self.admission_window:
                if len(self._admission_queue) < self.admission_queue_limit:
                    self._admission_queue.append(
                        (request, message, connection, received_at))
                    self.stats["requests_queued"] += 1
                    self._m_adm_queued.inc()
                    if container:
                        spans.end(container, outcome="queued")
                    return
                self.stats["requests_shed"] += 1
                self._m_adm_shed.inc()
                sr = self._series
                if sr.enabled:
                    sr.observe("series.gateway.group.shed", 1.0,
                               group=target_group)
                if container:
                    spans.end(container, outcome="shed")
                if connection.open:
                    connection.send(reply_for_exception(
                        request.request_id,
                        TransientError(
                            "gateway admission window and queue full")))
                if self.pool is not None:
                    self.pool.on_shed(self)
                return
            self._own_inflight += 1
            admitted = True
            self._m_adm_admitted.inc()

        pending = _PendingRequest(
            client_id=client_id, op_id=op_id, target_group=target_group,
            iiop=message, forwarder=self.host.name,
            response_expected=request.response_expected,
            received_at=received_at, admitted=admitted,
            trace_id=trace_id, trace_hop=trace_hop, trace_span=container)
        if container:
            # IIOP -> Totem translation (Figure 5a: identify, build the
            # Figure 4 header) happens here, within the receipt event.
            spans.instant(trace_id, "gateway.translate", parent=container,
                          source=self.name, group=target_group)
        self._pending[cache_key] = pending
        if request.response_expected:
            self._filter.expect((target_group, client_id, op_id),
                                votes_needed=votes or 1)
        else:
            # One-way: no response will ever pop this record.  It is
            # dropped when the forwarded INVOCATION is observed
            # delivered, or by TTL if the forward is lost.
            self._schedule_reap("oneway", cache_key, pending,
                                self.oneway_ttl)

        from ..eternal.messages import DomainMessage, MsgKind
        from ..eternal.naming import GATEWAY_GROUP
        if self.mirror_requests:
            # Section 3.5: record the request group-wide before forwarding.
            data = {"target_group": target_group,
                    "forwarder": self.host.name}
            if not request.response_expected:
                # Key present only for one-ways, so the mirror's weight
                # (and the totem byte metrics) is unchanged for the
                # common two-way case.
                data["response_expected"] = False
            mirror = DomainMessage(
                kind=MsgKind.GATEWAY_MIRROR,
                source_group=GATEWAY_GROUP,
                target_group=GATEWAY_GROUP,
                client_id=client_id,
                op_id=op_id,
                iiop=message,
                data=data,
            )
            if container:
                # Out-of-band: lets peer gateways keep tracing the
                # invocation after a takeover (weightless, see
                # DomainMessage.trace).
                mirror.trace = (trace_id, container, trace_hop)
            self.rm.multicast(mirror)
        self._forward(pending)

    def _on_locate_request(self, message: bytes,
                           connection: IiopServerConnection) -> None:
        """Answer ORB location probes: the gateway claims to *be* every
        object of its domain (the client must keep believing the
        endpoint in the IOR is the server — section 3.1)."""
        from ..eternal.naming import parse_object_key
        from ..iiop.giop import (LocateStatus, decode_locate_request,
                                 encode_locate_reply)
        request_id, object_key = decode_locate_request(message)
        parsed = parse_object_key(object_key)
        here = (parsed is not None and parsed[0] == self.domain.name
                and self.rm.registry.get(parsed[1]) is not None)
        if here and self.pool is not None:
            # Pool re-homing for plain ORBs: if this client's
            # consistent-hash home is another pool gateway, answer
            # OBJECT_FORWARD with an IOR ordered from that home — the
            # GIOP-standard redirect that needs no client enhancement.
            forward = self.pool.locate_forward(self, parsed[1], connection)
            if forward is not None:
                connection.send(encode_locate_reply(
                    request_id, LocateStatus.OBJECT_FORWARD,
                    forward_ior=forward))
                return
        status = LocateStatus.OBJECT_HERE if here else LocateStatus.UNKNOWN_OBJECT
        connection.send(encode_locate_reply(request_id, status))

    def _on_cancel_request(self, message: bytes,
                           connection: IiopServerConnection) -> None:
        """Best-effort CancelRequest: drop the gateway's routing intent
        for the request so a late response is not written to the socket.
        The invocation may already have executed inside the domain (the
        CORBA spec makes no promise there, and neither does the paper)."""
        from ..iiop.giop import decode_cancel_request
        cancelled_id = decode_cancel_request(message)
        client_id = self._conn_ids.get(connection)
        if client_id is None:
            return
        op_id = external_operation_id(cancelled_id)
        key = (client_id, op_id)
        record = self._pending.pop(key, None)
        self.stats["cancels"] += 1
        self._m_req_cancelled.inc()
        if record is None and key in self._cache:
            # The cancel raced the reply over the WAN and lost: the
            # response was already written back.  A tombstone now could
            # never be consumed — late duplicates are suppressed by the
            # delivered-filter before the tombstone is consulted — and
            # would sit until its TTL.
            return
        self._cancelled.add(key)
        # The tombstone is discarded when the late response arrives
        # (_on_domain_response) or, if no response ever comes, by TTL.
        self._schedule_reap("cancel", key, record, self.cancel_ttl)
        if record is not None:
            self._release_admission(record)

    def _forward(self, pending: _PendingRequest) -> None:
        from ..eternal.messages import DomainMessage, MsgKind
        from ..eternal.naming import GATEWAY_GROUP
        self.stats["requests_forwarded"] += 1
        self._m_req_forwarded.inc()
        message = pending.forward_message
        if message is None:
            message = pending.forward_message = DomainMessage(
                kind=MsgKind.INVOCATION,
                source_group=GATEWAY_GROUP,
                target_group=pending.target_group,
                client_id=pending.client_id,
                op_id=pending.op_id,
                iiop=pending.iiop,
            )
            if pending.trace_span:
                message.trace = (pending.trace_id, pending.trace_span,
                                 pending.trace_hop)
        if pending.trace_span:
            # Ordering wait: multicast into the ring until this
            # gateway observes the agreed delivery (ended in
            # observe_delivered); a takeover re-forward opens a fresh
            # one, so the dead forwarder's wait stays truthfully open.
            pending.order_span = self._span_collector.start(
                pending.trace_id, "totem.order.invocation",
                parent=pending.trace_span, source=self.name)
        self.rm.multicast(message)

    def _identify_client(self, request, connection: IiopServerConnection,
                         target_group: int) -> ClientId:
        """Enhanced clients carry their identity; plain clients get a
        counter for the target server group (section 3.2)."""
        ctx = extract_client_id(request)
        if ctx is not None:
            client_id = f"{ctx.client_uid}#{ctx.incarnation}"
            self._conn_ids[connection] = client_id
            members = self._conn_members.get(connection)
            if members is None:
                self._conn_members[connection] = {client_id}
            else:
                members.add(client_id)
            return client_id
        known = self._conn_ids.get(connection)
        if known is not None:
            return known
        counter = self._counters.setdefault(target_group, itertools.count(1))
        client_id = self.index * 1_000_000 + next(counter)
        self._conn_ids[connection] = client_id
        self._conn_members[connection] = {client_id}
        return client_id

    def _lazy_counter(self, name: str):
        """Counter created on first use: keeps the metric key set of
        scenarios that never exercise the style-era paths unchanged."""
        counter = self._lazy_counters.get(name)
        if counter is None:
            counter = self._lazy_counters[name] = self.metrics.counter(name)
        return counter

    def _votes_for(self, info) -> Optional[int]:
        """Majority size for a voting target; 1 for non-voting styles.

        ``None`` means the voting group has no live replica at all: no
        majority can ever form, so the invocation is unservable and the
        caller must fail fast instead of registering an expectation that
        can never resolve.  Before the first membership view (bootstrap)
        the static placement stands in for liveness.
        """
        if not info.style.needs_voting:
            return 1
        live_hosts = self.rm.live_hosts
        live = (len(info.live_replicas(live_hosts)) if live_hosts
                else len(info.placement))
        if live == 0:
            return None
        return live // 2 + 1

    def _release_admission(self, record: _PendingRequest) -> None:
        """Free the window slot an admitted request held and pull queued
        requests into the freed capacity.

        Queue drains happen inside the event that resolved the slot
        (response delivery, cancel, client purge), so admission keeps
        the deterministic same-event ordering the rest of the gateway
        relies on.  Queued entries whose client connection has since
        closed are dropped — their reply could never be written.
        """
        if not record.admitted:
            return
        record.admitted = False
        self._own_inflight -= 1
        if self.pool is not None:
            self.pool.on_served(self)
        queue = self._admission_queue
        window = self.admission_window
        while queue and self._own_inflight < window:
            request, message, connection, received_at = queue.popleft()
            if not connection.open:
                self.stats["queued_dropped"] += 1
                continue
            self._process_request(request, message, connection,
                                  received_at, from_queue=True)

    def _on_client_close(self, connection: IiopServerConnection) -> None:
        members = self._conn_members.pop(connection, None)
        client_id = self._conn_ids.pop(connection, None)
        if members is None:
            if client_id is None:
                return
            members = {client_id}
        # A multiplexed connection carried many logical clients; each
        # departs independently (sorted for deterministic broadcast
        # order — ids are ints or strings, never mixed on one socket).
        for cid in sorted(members, key=str):
            if self._routing.get(cid) is connection:
                del self._routing[cid]
            has_pending = any(k[0] == cid for k in self._pending)
            if has_pending:
                # Operations are still in flight: defer the domain-wide
                # purge until the last one resolves, so peers keep the
                # mirror records they need to collect the responses
                # (section 3.5).  Without the deferral those records
                # leak — CLIENT_GONE is never re-sent once suppressed
                # here.
                self._gone_pending.add(cid)
                self.stats["client_gone_deferred"] += 1
                self._m_gone_deferred.inc()
            else:
                self._broadcast_client_gone(cid)

    def _broadcast_client_gone(self, client_id: ClientId) -> None:
        """Tell the other gateways the client is gone so they delete any
        state stored on its behalf (section 3.5)."""
        from ..eternal.messages import DomainMessage, MsgKind
        from ..eternal.naming import GATEWAY_GROUP
        self.rm.multicast(DomainMessage(
            kind=MsgKind.CLIENT_GONE,
            source_group=GATEWAY_GROUP,
            target_group=GATEWAY_GROUP,
            client_id=client_id,
        ))

    def _maybe_flush_client_gone(self, client_id: ClientId) -> None:
        """Fire a deferred CLIENT_GONE once the departed client's last
        pending operation has resolved."""
        if client_id not in self._gone_pending:
            return
        if any(cid == client_id for (cid, _) in self._pending):
            return
        self._gone_pending.discard(client_id)
        self._broadcast_client_gone(client_id)

    # ==================================================================
    # Multicast side (inside the domain)
    # ==================================================================

    def observe_delivered(self, msg: "DomainMessage") -> None:
        """Called by the co-located Replication Mechanisms for every
        delivered message; the gateway reacts to the kinds it owns."""
        from ..eternal.messages import MsgKind
        from ..eternal.naming import GATEWAY_GROUP
        kind = msg.kind
        if kind is MsgKind.RESPONSE and msg.target_group == GATEWAY_GROUP:
            self._on_domain_response(msg)
        elif kind is MsgKind.GATEWAY_MIRROR:
            self._on_mirror(msg)
        elif kind is MsgKind.INVOCATION and msg.source_group == GATEWAY_GROUP:
            key = (msg.client_id, msg.op_id)
            record = self._pending.get(key)
            if record is not None:
                if record.order_span:
                    # The forwarding gateway saw its own multicast come
                    # back in the total order: the ordering wait is over.
                    self._span_collector.end(record.order_span,
                                             seq=msg.timestamp)
                    record.order_span = 0
                record.forwarded = True
                if not record.response_expected:
                    # One-way: the delivered forward *is* the operation's
                    # completion — no response will ever pop the record.
                    del self._pending[key]
                    self.stats["oneways_completed"] += 1
                    self._m_oneway_completed.inc()
                    self._maybe_flush_client_gone(msg.client_id)
        elif kind is MsgKind.STYLE_SWITCH:
            self._on_style_switch(msg)
        elif kind is MsgKind.CLIENT_GONE:
            self._purge_client(msg.client_id)
        else:
            # Group-management, logging, and ordering kinds are owned by
            # the Replication Mechanisms; the gateway reacts only to the
            # five kinds above.
            return

    def _on_domain_response(self, msg: "DomainMessage") -> None:
        self._m_resp_received.inc()
        spans = self._span_collector
        tr = msg.trace if spans.enabled else None
        if tr is not None and msg._trace_order:
            # First gateway to observe the agreed response ends the
            # responder's ordering-wait span (end() is first-close-wins,
            # so the remaining gateways' observations are no-ops).
            spans.end(msg._trace_order, seq=msg.timestamp)
        filter_key = (msg.source_group, msg.client_id, msg.op_id)
        verdict, payload = self._filter.offer(
            filter_key, msg.iiop, responder=msg.data.get("responder"))
        if tr is not None:
            # One duplicate-suppression event per gateway per response
            # (Figure 3): the verdicts across gateways partition
            # gateway.resp.received exactly like the metric counters.
            spans.instant(tr[0], "gateway.response", parent=tr[1],
                          source=self.name, verdict=str(verdict),
                          responder=str(msg.data.get("responder")))
        if verdict == DuplicateSuppressor.DUPLICATE:
            self.stats["duplicates_suppressed"] += 1
            self._m_dup_suppressed.inc()
            return
        if verdict == DuplicateSuppressor.UNEXPECTED:
            # No record of this client here: with plain counter-assigned
            # client ids and no mirroring, a response surviving its
            # gateway cannot be routed (section 3.4).
            self.stats["responses_unexpected"] += 1
            self._m_resp_unexpected.inc()
            return
        if verdict != DuplicateSuppressor.DELIVER:
            self._m_resp_vote_pending.inc()
            return  # voting still pending
        cache_key = (msg.client_id, msg.op_id)
        self._cache[cache_key] = payload
        while len(self._cache) > self.response_cache_limit:
            # FIFO eviction: the oldest responses are the least likely
            # to be reclaimed by a reissue (bounded gateway memory).
            self._cache.pop(next(iter(self._cache)))
        record = self._pending.pop(cache_key, None)
        if record is not None:
            # Resolving the slot *before* routing the reply lets the
            # freed window capacity pull queued work in this same event.
            self._release_admission(record)
        container = (record.trace_span if record is not None
                     and record.trace_span else (tr[1] if tr else 0))
        if cache_key in self._cancelled:
            # The client withdrew interest (CancelRequest): keep the
            # cached response (a reissue may still claim it) but do not
            # write to the socket.  The tombstone has now served its
            # purpose — discard it, or it pins this (client, op) pair
            # forever.
            self._cancelled.discard(cache_key)
            self.stats["responses_unroutable"] += 1
            self._m_resp_unroutable.inc()
            if tr is not None:
                spans.end(container, outcome="cancelled", by=self.name)
            self._maybe_flush_client_gone(msg.client_id)
            return
        connection = self._routing.get(msg.client_id)
        if connection is not None and connection.open:
            connection.send(payload)
            self.stats["responses_delivered"] += 1
            self._m_resp_delivered.inc()
            if record is not None and record.received_at is not None:
                # Socket receipt to socket write: the latency an
                # unreplicated client observes at this gateway.
                elapsed = self.scheduler.now - record.received_at
                self._m_req_latency.observe(elapsed)
                sr = self._series
                if sr.enabled:
                    sr.observe("series.gateway.group.latency", elapsed,
                               group=record.target_group)
                    sr.observe("series.gateway.latency", elapsed,
                               gateway=self.name)
            if tr is not None:
                # The egress instant and the container close share this
                # event's clock with the latency observation above, so
                # metrics and trace are provably consistent
                # (tests/test_obs_tracing.py).
                spans.instant(tr[0], "gateway.egress", parent=container,
                              source=self.name)
                spans.end(container, outcome="delivered", by=self.name)
            self.tracer.emit(self.scheduler.now, "gateway.deliver", self.name,
                             "response delivered",
                             client=msg.client_id, op=str(msg.op_id))
        else:
            self.stats["responses_unroutable"] += 1
            self._m_resp_unroutable.inc()
            if (tr is not None and record is not None and record.trace_span
                    and record.forwarder == self.host.name):
                # Only the gateway that owned the request closes here;
                # mirror observers without the client socket routinely
                # take this branch and must not close the container the
                # routing gateway is about to stamp its egress into.
                spans.end(container, outcome="unroutable", by=self.name)
        self._maybe_flush_client_gone(msg.client_id)

    def _on_mirror(self, msg: "DomainMessage") -> None:
        if not self.mirror_requests:
            return
        self.stats["mirrors_recorded"] += 1
        self._m_mirrors.inc()
        cache_key = (msg.client_id, msg.op_id)
        response_expected = msg.data.get("response_expected", True)
        info = self.rm.registry.get(msg.data["target_group"])
        if (response_expected and info is not None
                and self._votes_for(info) is None):
            # A two-way mirror for a voting target with zero live
            # replicas, delivered after the membership sweep already
            # failed the request: reconstructing a pending record (or a
            # filter expectation) here would pin state that no response
            # and no later sweep will ever resolve.
            return
        if cache_key not in self._pending and cache_key not in self._cache:
            tr = msg.trace
            record = _PendingRequest(
                client_id=msg.client_id, op_id=msg.op_id,
                target_group=msg.data["target_group"], iiop=msg.iiop,
                forwarder=msg.data["forwarder"],
                response_expected=response_expected,
                # Mirrored trace linkage: a takeover re-forward keeps
                # reporting into the original invocation's container.
                trace_id=tr[0] if tr else "",
                trace_span=tr[1] if tr else 0,
                trace_hop=tr[2] if tr else 0)
            self._pending[cache_key] = record
            if not response_expected:
                self._schedule_reap("oneway", cache_key, record,
                                    self.oneway_ttl)
        if not response_expected:
            # One-way mirrors never get a response: registering a filter
            # expectation would pin an entry that can never resolve.
            # The record is dropped when the forwarded INVOCATION is
            # observed delivered, or by TTL if it never is.
            return
        votes = (self._votes_for(info) or 1) if info is not None else 1
        self._filter.expect((msg.data["target_group"], msg.client_id,
                             msg.op_id), votes_needed=votes)

    def _on_style_switch(self, msg: "DomainMessage") -> None:
        """A live replication-style switch (a total-order event, hence
        observed at the same logical instant by every gateway).

        If the group left a voting style, in-flight expectations
        registered with the old majority requirement can never fill —
        only one responder will speak from now on.  Relax them to a
        single vote and flush any response that already satisfies the
        relaxed requirement."""
        from ..eternal.styles import ReplicationStyle
        data = msg.data or {}
        group_id = data.get("group_id")
        try:
            style = ReplicationStyle(data.get("style"))
        except ValueError:
            return
        if group_id is None or style.needs_voting:
            return
        ready = self._filter.reduce_votes(
            lambda key, g=group_id: key[0] == g, 1)
        for key, payload in ready:
            self._deliver_relaxed(key, payload)

    def _deliver_relaxed(self, filter_key, payload: bytes) -> None:
        """Route one response freed by a vote-requirement relaxation.

        Mirrors the DELIVER arm of :meth:`_on_domain_response`, but the
        delivery is counted under ``gateway.style.vote_relaxed`` — not
        the ``gateway.resp.*`` family, which partitions
        ``gateway.resp.received`` exactly and must not absorb
        deliveries that no freshly received response carried in."""
        _, client_id, op_id = filter_key
        cache_key = (client_id, op_id)
        self.stats["votes_relaxed"] += 1
        self._lazy_counter("gateway.style.vote_relaxed").inc()
        self._cache[cache_key] = payload
        while len(self._cache) > self.response_cache_limit:
            self._cache.pop(next(iter(self._cache)))
        record = self._pending.pop(cache_key, None)
        if record is not None:
            self._release_admission(record)
            if record.order_span:
                self._span_collector.end(record.order_span)
                record.order_span = 0
        if cache_key in self._cancelled:
            self._cancelled.discard(cache_key)
            self._maybe_flush_client_gone(client_id)
            return
        connection = self._routing.get(client_id)
        if connection is not None and connection.open:
            connection.send(payload)
            if record is not None and record.received_at is not None:
                elapsed = self.scheduler.now - record.received_at
                self._m_req_latency.observe(elapsed)
                sr = self._series
                if sr.enabled:
                    sr.observe("series.gateway.group.latency", elapsed,
                               group=record.target_group)
                    sr.observe("series.gateway.latency", elapsed,
                               gateway=self.name)
            if record is not None and record.trace_span:
                spans = self._span_collector
                spans.instant(record.trace_id, "gateway.egress",
                              parent=record.trace_span, source=self.name)
                spans.end(record.trace_span, outcome="vote_relaxed",
                          by=self.name)
            self.tracer.emit(self.scheduler.now, "gateway.deliver", self.name,
                             "response delivered (votes relaxed)",
                             client=client_id, op=str(op_id))
        elif (record is not None and record.trace_span
                and record.forwarder == self.host.name):
            self._span_collector.end(record.trace_span,
                                     outcome="unroutable", by=self.name)
        self._maybe_flush_client_gone(client_id)

    def _fail_unservable_pending(self) -> None:
        """Membership changed: re-examine pending two-way requests whose
        target is a voting group.

        A voting group with zero live replicas can never again form a
        majority — those requests are failed fast with TRANSIENT (the
        domain keeps its dedup memory, so a reissue after replicas
        return is re-servable).  A voting group that merely shrank has
        a smaller live majority; expectations registered with the old
        quorum are relaxed to the new one and flushed if satisfied.
        """
        voting_targets: Dict[int, Optional[int]] = {}
        for record in self._pending.values():
            if not record.response_expected:
                continue
            gid = record.target_group
            if gid in voting_targets:
                continue
            info = self.rm.registry.get(gid)
            if info is None or not info.style.needs_voting:
                continue
            voting_targets[gid] = self._votes_for(info)
        for gid in sorted(voting_targets):
            votes = voting_targets[gid]
            if votes is None:
                self._fail_group_pending(gid)
            else:
                ready = self._filter.reduce_votes(
                    lambda key, g=gid: key[0] == g, votes)
                for key, payload in ready:
                    self._deliver_relaxed(key, payload)

    def _fail_group_pending(self, group_id: int) -> None:
        """Fail every pending two-way request addressed to a voting
        group that lost all replicas: TRANSIENT reply to the client,
        filter expectation cancelled, admission slot freed."""
        spans = self._span_collector
        for key in [k for k, r in self._pending.items()
                    if r.response_expected and r.target_group == group_id]:
            record = self._pending.pop(key)
            client_id, op_id = key
            self._filter.cancel((group_id, client_id, op_id))
            self._release_admission(record)
            self.stats["requests_unservable"] += 1
            self._lazy_counter("gateway.req.unservable").inc()
            if record.order_span:
                spans.end(record.order_span)
                record.order_span = 0
            if key in self._cancelled:
                # The client already withdrew interest: no reply, and
                # the tombstone has now served its purpose.
                self._cancelled.discard(key)
            else:
                connection = self._routing.get(client_id)
                if connection is not None and connection.open:
                    # The external request id was recovered into the
                    # child sequence of the operation id.
                    connection.send(reply_for_exception(
                        op_id.child_seq,
                        TransientError(
                            f"server group {group_id} lost all "
                            f"replicas")))
            if record.trace_span and record.forwarder == self.host.name:
                # Only the owning gateway closes the container; mirror
                # observers share the span id but must not close it.
                spans.end(record.trace_span, outcome="unservable",
                          by=self.name)
            self._maybe_flush_client_gone(client_id)

    def _purge_client(self, client_id: ClientId) -> None:
        self.stats["clients_gone"] += 1
        self._m_clients_gone.inc()
        for key in [k for k in self._pending if k[0] == client_id]:
            record = self._pending.pop(key)
            self._release_admission(record)
        for key in [k for k in self._cache if k[0] == client_id]:
            del self._cache[key]
        self._routing.pop(client_id, None)
        self._cancelled = {k for k in self._cancelled if k[0] != client_id}
        self._gone_pending.discard(client_id)
        # Forget the filter's memory as well: if the "client" returns
        # with the same identifiers (e.g. an egress successor host), its
        # reissues must be re-servable, not suppressed as duplicates.
        self._filter.forget_where(lambda key: key[1] == client_id)

    # ==================================================================
    # Retention: TTL reaping of tombstones and one-way records
    # ==================================================================

    def _schedule_reap(self, kind: str, key, record, ttl: float) -> None:
        """Queue one entry for TTL reaping and arm the shared timer.

        Entries are reaped lazily: by the time one expires its target
        may already have been resolved (one-way observed delivered,
        tombstone discarded by a late response), in which case the
        expiry is a no-op.  The single timer always sleeps until the
        earliest queued expiry."""
        expiry = self.scheduler.now + ttl
        heapq.heappush(self._reap_heap,
                       (expiry, next(self._reap_seq), kind, key, record))
        timer = self._reap_timer
        if timer is not None and timer.active:
            if timer.time <= expiry:
                return  # an earlier (or equal) wake-up covers this entry
            self._reap_timer = self.reschedule_after(
                timer, ttl, self._run_reaper)
        else:
            self._reap_timer = self.after(ttl, self._run_reaper)

    def _run_reaper(self) -> None:
        now = self.scheduler.now
        heap = self._reap_heap
        while heap and heap[0][0] <= now:
            _, _, kind, key, record = heapq.heappop(heap)
            if kind == "cancel":
                if key in self._cancelled:
                    # No response ever arrived for the cancelled
                    # operation (e.g. its server group died): drop the
                    # tombstone and the filter expectation that was
                    # waiting for the response.
                    self._cancelled.discard(key)
                    if record is not None:
                        self._filter.cancel(
                            (record.target_group, key[0], key[1]))
                    self.stats["cancels_reaped"] += 1
                    self._m_reap_cancelled.inc()
            else:  # "oneway"
                if self._pending.get(key) is record:
                    # The forwarded INVOCATION was never observed
                    # delivered (lost to a crash or partition): give up
                    # rather than pin the record forever.
                    del self._pending[key]
                    self.stats["oneways_reaped"] += 1
                    self._m_reap_oneway.inc()
                    self._maybe_flush_client_gone(key[0])
        if heap:
            self._reap_timer = self.after(heap[0][0] - now, self._run_reaper)
        else:
            self._reap_timer = None

    # ==================================================================
    # Gateway-group failover (section 3.5)
    # ==================================================================

    def _live_gateway_hosts(self) -> List[str]:
        from ..eternal.naming import GATEWAY_GROUP
        info = self.rm.registry.get(GATEWAY_GROUP)
        if info is None:
            return [self.host.name]
        live = [h for h in info.placement if h in self.rm.live_hosts]
        return live or [self.host.name]

    def _on_membership(self, live_hosts: Tuple[str, ...]) -> None:
        """Re-forward requests a crashed peer accepted but never forwarded.

        Deterministic takeover: the lowest-named live gateway re-issues;
        duplicate detection inside the domain makes over-forwarding safe.
        """
        if not self.alive:
            return
        self._fail_unservable_pending()
        if not self.mirror_requests:
            return
        leader = min(self._live_gateway_hosts())
        if leader != self.host.name:
            return
        live = set(live_hosts)
        for record in list(self._pending.values()):
            if record.forwarder not in live and not record.forwarded:
                record.forwarder = self.host.name
                self.stats["takeover_forwards"] += 1
                self._m_takeovers.inc()
                self._forward(record)
