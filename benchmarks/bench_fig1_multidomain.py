"""E1 (Figure 1): the multi-domain topology, measured.

A Santa Barbara customer invokes a New York replicated trading desk
through NY's gateway; buy orders additionally cross the wide area to a
Los Angeles settlement domain through LA's gateway.

Reported series (simulated seconds): end-to-end latency of a
domain-local operation (position query) vs a cross-domain operation
(buy).  The paper's topology predicts the cross-domain operation pays
at least one extra WAN round trip; the benchmark asserts that shape.
"""

from repro import FaultToleranceDomain, FtClientLayer, Orb, ReplicationStyle, World
from repro.apps import (
    QUOTE_INTERFACE,
    QuoteServant,
    SETTLEMENT_INTERFACE,
    SettlementServant,
    TRADING_INTERFACE,
    TradingDeskServant,
)


def build_figure1_world(seed=1, la_gateways=1):
    world = World(seed=seed, trace=False)
    la = FaultToleranceDomain(world, "la", num_hosts=3)
    for _ in range(la_gateways):
        la.add_gateway(port=2809)
    settlement = la.create_group("Settlement", SETTLEMENT_INTERFACE,
                                 SettlementServant,
                                 style=ReplicationStyle.ACTIVE)
    la.await_stable()
    la.await_ready(settlement)
    settlement_ior = la.ior_for(settlement).to_string()

    ny = FaultToleranceDomain(world, "ny", num_hosts=3)
    ny.add_gateway(port=2809)
    ny.register_interface(SETTLEMENT_INTERFACE)
    ny.create_group("Quotes", QUOTE_INTERFACE,
                    lambda: QuoteServant({"ACME": 1500}),
                    style=ReplicationStyle.ACTIVE)
    desk = ny.create_group(
        "Desk", TRADING_INTERFACE,
        lambda: TradingDeskServant(quote_group="Quotes",
                                   settlement_target=settlement_ior,
                                   settlement_interface="Settlement"),
        style=ReplicationStyle.ACTIVE)
    ny.await_stable()

    browser = world.add_host("sb-browser")
    orb = Orb(world, browser, request_timeout=None)
    layer = FtClientLayer(orb, client_uid="customer/sb")
    stub = layer.string_to_object(ny.ior_for(desk).to_string(),
                                  TRADING_INTERFACE)
    return world, la, ny, settlement, desk, stub


def run_scenario():
    world, la, ny, settlement, desk, stub = build_figure1_world()

    t0 = world.now
    world.await_promise(stub.call("position", "alice", "ACME"), timeout=600)
    local_latency = world.now - t0

    t0 = world.now
    world.await_promise(stub.call("buy", "alice", "ACME", 100), timeout=600)
    cross_latency = world.now - t0

    world.run(until=world.now + 1.0)
    settled = {rm.replicas[settlement.group_id].servant.settled_count()
               for rm in la.rms.values()
               if settlement.group_id in rm.replicas}
    return {
        "local_op_latency_s": round(local_latency, 4),
        "cross_domain_op_latency_s": round(cross_latency, 4),
        "wan_roundtrips_extra": round((cross_latency - local_latency) / 0.080, 2),
        "settlements": settled.pop() if len(settled) == 1 else settled,
    }


def test_fig1_multidomain_topology(benchmark):
    row = benchmark.pedantic(run_scenario, rounds=2, iterations=1)
    # Shape: the cross-domain op pays >= 1 extra WAN round trip (80 ms).
    assert row["cross_domain_op_latency_s"] > row["local_op_latency_s"] + 0.06
    # Exactly-once settlement across the domain boundary.
    assert row["settlements"] == 1
    benchmark.extra_info.update(row)


def test_fig1_gateway_failures_do_not_break_the_path(benchmark):
    def run():
        world, la, ny, settlement, desk, stub = build_figure1_world(
            seed=2, la_gateways=2)
        world.await_promise(stub.call("buy", "alice", "ACME", 1), timeout=600)
        world.faults.crash_now(la.gateways[0].host.name)
        # New orders keep settling through the redundant LA gateway —
        # the desk's egress traverses the multi-profile IOR.
        world.await_promise(stub.call("buy", "alice", "ACME", 2), timeout=600)
        world.run(until=world.now + 1.0)
        counts = {rm.replicas[settlement.group_id].servant.settled_count()
                  for rm in la.rms.values()
                  if settlement.group_id in rm.replicas and rm.alive}
        return {"settlements": counts.pop() if len(counts) == 1 else counts}

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    assert row["settlements"] == 2
    benchmark.extra_info.update(row)
