"""Project-wide call graph + interprocedural taint (DET101/DET102/SIM101).

The per-file rules (DET001/DET002/SIM001) stop at function boundaries:
a deterministic-scope function that calls an *out-of-scope* helper
which reads the wall clock is invisible to them.  This module builds a
call graph over every file of the lint run and runs a transitive-taint
pass from the same sink families, flagging the exact call edge where a
deterministic function hands control to tainted out-of-scope code.

**What the graph resolves** (documented in docs/STATIC_ANALYSIS.md):

* module-qualified calls — ``mod.func(...)``, ``from m import f; f(...)``
  (absolute and relative imports);
* same-module and imported class constructors (edge to ``__init__``);
* ``self.method(...)`` including inherited methods (base-class lookup
  bounded to depth 3, bases resolved through imports);
* class-attribute bindings — ``self.x = ClassName(...)`` in any method
  makes ``self.x.meth(...)`` resolve to ``ClassName.meth``;
* bounded local aliasing — ``f = mod.func; f()`` and
  ``obj = ClassName(); obj.meth()`` inside one function body, with one
  level of alias-to-alias chaining (two fixed passes, no fixpoint).

**What it over-approximates**: nested ``def``/``lambda`` bodies are
attributed to the enclosing named function, and a method call through
an attribute binds to the statically-bound class even if a subclass
instance is assigned at runtime.  **What it under-approximates**:
calls through arbitrary data structures, higher-order dispatch beyond
one aliasing level, and module-level statements.  Under-approximation
is safe here because *every* in-scope function is independently
checked — a callback reached only through the scheduler still gets its
own frame analysed.

**Taint semantics**: a function with a direct, *unsuppressed* sink
(wall clock / ambient randomness / host blocking) seeds its family;
taint flows caller-ward over call edges.  A justified inline
suppression of the base code (DET001/DET002/SIM001) on the sink line
marks a sanctioned boundary — e.g. ``repro.obs.hostclock`` — and does
*not* propagate.  A violation is reported once per scope-crossing:
the in-scope caller frame whose direct callee is out-of-scope and
tainted, anchored at the call line, with the full witness chain down
to the concrete sink in the message.  In-scope tainted callees are
not re-flagged along the way (they are flagged at their own crossing,
or by the per-file base rule if the sink is direct).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .lint import (LintContext, ProjectContext, ProjectRule, Suppression,
                   Violation)
from .rules import (_BLOCKING_CALLS, _BLOCKING_MODULES, _ENTROPY_ORIGINS,
                    _RANDOM_OK, _WALL_TIME_FNS, dotted_name)

#: Taint families: (family key, base per-file code, interprocedural code).
FAMILIES: Tuple[Tuple[str, str, str], ...] = (
    ("wall", "DET001", "DET101"),
    ("random", "DET002", "DET102"),
    ("blocking", "SIM001", "SIM101"),
)

_DATETIME_LEAVES = frozenset({"now", "utcnow", "today"})


@dataclass
class FunctionInfo:
    """One named function or method in the linted set."""

    qname: str                     # module.func or module.Class.method
    module: str
    path: str
    line: int
    node: ast.AST                  # FunctionDef / AsyncFunctionDef
    class_qname: Optional[str] = None


@dataclass
class ClassInfo:
    """One top-level class: its methods, bases, and attribute bindings."""

    qname: str
    module: str
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    bases: List[str] = field(default_factory=list)   # resolved class qnames
    #: ``self.attr = KnownClass(...)`` bindings seen in any method.
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site (deduplicated per caller/callee pair)."""

    caller: str
    callee: str
    line: int
    col: int


@dataclass(frozen=True)
class SinkUse:
    """One direct sink reference inside a function body."""

    function: str
    family: str        # "wall" | "random" | "blocking"
    detail: str        # e.g. "time.perf_counter", "socket.socket"
    path: str
    line: int
    suppressed: bool   # justified base-code suppression on this line


@dataclass
class Taint:
    """Why one function is tainted: BFS distance and witness pointers."""

    distance: int
    next_hop: Optional[str]        # callee one step closer to the sink
    sink: SinkUse                  # the concrete sink this chain ends at


def _module_in(module: str, prefixes: Sequence[str]) -> bool:
    return any(module == p or module.startswith(p + ".")
               for p in prefixes)


def _suppressed_at(suppressions: Sequence[Suppression], code: str,
                   line: int) -> bool:
    """Justified suppression of ``code`` covering ``line``?"""
    for supp in suppressions:
        if code in supp.codes and supp.justification and (
                supp.file_level or supp.applies_to_line == line):
            return True
    return False


def _aliases_for(ctx: LintContext) -> Dict[str, str]:
    """Local name -> dotted origin, resolving relative imports against
    the file's own module path (unlike :func:`rules.import_aliases`,
    which skips them)."""
    aliases: Dict[str, str] = {}
    parts = ctx.module.split(".") if ctx.module else []
    is_package = ctx.path.endswith("__init__.py")
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                # ``from . import x`` / ``from ..pkg import y``: peel
                # ``level`` components off our own dotted path (one
                # fewer for a package __init__, whose module *is* the
                # package).
                drop = node.level - (1 if is_package else 0)
                parent = parts[:len(parts) - drop] if drop <= len(parts) else []
                base = ".".join(parent + ([node.module] if node.module else []))
            for alias in node.names:
                target = f"{base}.{alias.name}" if base else alias.name
                aliases[alias.asname or alias.name] = target
    return aliases


def _resolve(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Dotted origin of an expression through the import table."""
    name = dotted_name(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    origin = aliases.get(head)
    if origin is None:
        return name
    return f"{origin}.{rest}" if rest else origin


class CallGraph:
    """The resolved call graph of one lint run, with taint on demand."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.edges: List[CallEdge] = []
        self.sinks: List[SinkUse] = []
        self._callers: Dict[str, List[str]] = {}
        self._sinks_by_fn: Dict[Tuple[str, str], List[SinkUse]] = {}
        self._taint: Dict[str, Dict[str, Taint]] = {}
        self._module_aliases: Dict[str, Dict[str, str]] = {}

    # -- construction --------------------------------------------------

    @classmethod
    def build(cls, project: ProjectContext) -> "CallGraph":
        graph = cls()
        tables = {ctx.module: _aliases_for(ctx) for ctx in project.contexts}
        graph._module_aliases = tables
        # Pass 1: declare every function, method, and class.
        for ctx in project.contexts:
            graph._collect_definitions(ctx)
        # Pass 2: resolve base classes and attribute bindings (needs the
        # full class table from pass 1).
        for ctx in project.contexts:
            graph._collect_class_structure(ctx, tables[ctx.module])
        # Pass 3: resolve call sites and sinks per function body.
        raw_edges: Dict[Tuple[str, str], CallEdge] = {}
        for info in graph.functions.values():
            ctx = _ctx_of(project, info)
            if ctx is None:
                continue
            graph._scan_body(info, ctx, tables[ctx.module],
                             project.suppressions.get(info.path, ()),
                             raw_edges)
        graph.edges = sorted(
            raw_edges.values(),
            key=lambda e: (e.caller, e.callee, e.line, e.col))
        graph.sinks.sort(key=lambda s: (s.function, s.family, s.line))
        for edge in graph.edges:
            graph._callers.setdefault(edge.callee, []).append(edge.caller)
        return graph

    def _collect_definitions(self, ctx: LintContext) -> None:
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{ctx.module}.{node.name}"
                self.functions[qname] = FunctionInfo(
                    qname=qname, module=ctx.module, path=ctx.path,
                    line=node.lineno, node=node)
            elif isinstance(node, ast.ClassDef):
                cls_qname = f"{ctx.module}.{node.name}"
                info = ClassInfo(qname=cls_qname, module=ctx.module)
                self.classes[cls_qname] = info
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        qname = f"{cls_qname}.{item.name}"
                        fn = FunctionInfo(
                            qname=qname, module=ctx.module, path=ctx.path,
                            line=item.lineno, node=item,
                            class_qname=cls_qname)
                        self.functions[qname] = fn
                        info.methods[item.name] = fn

    def _collect_class_structure(self, ctx: LintContext,
                                 aliases: Dict[str, str]) -> None:
        for node in ctx.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            info = self.classes[f"{ctx.module}.{node.name}"]
            for base in node.bases:
                resolved = self._class_ref(base, ctx.module, aliases)
                if resolved is not None:
                    info.bases.append(resolved)
            # ``self.attr = KnownClass(...)`` anywhere in the class body.
            for sub in ast.walk(node):
                if not (isinstance(sub, ast.Assign)
                        and len(sub.targets) == 1
                        and isinstance(sub.targets[0], ast.Attribute)):
                    continue
                target = sub.targets[0]
                if not (isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and isinstance(sub.value, ast.Call)):
                    continue
                bound = self._class_ref(sub.value.func, ctx.module, aliases)
                if bound is not None:
                    info.attr_types.setdefault(target.attr, bound)

    def _follow(self, origin: str, depth: int = 0) -> str:
        """Follow package re-exports: ``repro.iiop.encode_reply`` ->
        ``repro.iiop.giop.encode_reply`` through the ``__init__``
        import table.  Bounded to depth 3."""
        if depth >= 3 or origin in self.functions or origin in self.classes:
            return origin
        holder, _, leaf = origin.rpartition(".")
        table = self._module_aliases.get(holder)
        if table is not None and leaf in table:
            return self._follow(table[leaf], depth + 1)
        return origin

    def _class_ref(self, node: ast.AST, module: str,
                   aliases: Dict[str, str]) -> Optional[str]:
        """Resolve an expression to a known class qname, if any."""
        origin = _resolve(node, aliases)
        if origin is None:
            return None
        origin = self._follow(origin)
        if origin in self.classes:
            return origin
        local = f"{module}.{origin}"
        return local if local in self.classes else None

    # -- per-function body scan ---------------------------------------

    def _scan_body(self, info: FunctionInfo, ctx: LintContext,
                   aliases: Dict[str, str],
                   suppressions: Sequence[Suppression],
                   raw_edges: Dict[Tuple[str, str], CallEdge]) -> None:
        nodes = list(ast.walk(info.node))
        local_fns, local_types = self._local_aliases(nodes, info, aliases)
        for node in nodes:
            if isinstance(node, ast.Call):
                callee = self._resolve_call(node, info, aliases,
                                            local_fns, local_types)
                if callee is not None and callee != info.qname:
                    key = (info.qname, callee)
                    if key not in raw_edges:
                        raw_edges[key] = CallEdge(
                            caller=info.qname, callee=callee,
                            line=node.lineno, col=node.col_offset)
            self._scan_sinks(node, info, aliases, suppressions)

    def _local_aliases(self, nodes: Sequence[ast.AST], info: FunctionInfo,
                       aliases: Dict[str, str]
                       ) -> Tuple[Dict[str, str], Dict[str, str]]:
        """Bounded (two-pass, no fixpoint) local alias tables:
        name -> function qname, and name -> class qname (instances)."""
        local_fns: Dict[str, str] = {}
        local_types: Dict[str, str] = {}
        assigns = [n for n in nodes
                   if isinstance(n, ast.Assign) and len(n.targets) == 1
                   and isinstance(n.targets[0], ast.Name)]
        for _ in range(2):
            for assign in assigns:
                target = assign.targets[0]
                assert isinstance(target, ast.Name)
                name = target.id
                value = assign.value
                if isinstance(value, ast.Call):
                    bound = self._class_ref(value.func, info.module, aliases)
                    if bound is not None:
                        local_types.setdefault(name, bound)
                elif isinstance(value, (ast.Name, ast.Attribute)):
                    # ``f = mod.func`` / ``f = g`` (one chain level).
                    if isinstance(value, ast.Name):
                        if value.id in local_fns:
                            local_fns.setdefault(name, local_fns[value.id])
                            continue
                        if value.id in local_types:
                            local_types.setdefault(name,
                                                   local_types[value.id])
                            continue
                    ref = self._function_ref(value, info, aliases)
                    if ref is not None:
                        local_fns.setdefault(name, ref)
        return local_fns, local_types

    def _function_ref(self, node: ast.AST, info: FunctionInfo,
                      aliases: Dict[str, str]) -> Optional[str]:
        """Resolve a non-call expression to a known function qname
        (``self._handler``, ``mod.func``, bare imported name)."""
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self" and info.class_qname):
            return self.method_qname(info.class_qname, node.attr)
        origin = _resolve(node, aliases)
        if origin is None:
            return None
        origin = self._follow(origin)
        if origin in self.functions:
            return origin
        local = f"{info.module}.{origin}"
        return local if local in self.functions else None

    def method_qname(self, cls_qname: str, name: str,
                     depth: int = 0) -> Optional[str]:
        """Method lookup with base-class traversal bounded to depth 3."""
        info = self.classes.get(cls_qname)
        if info is None:
            return None
        if name in info.methods:
            return f"{cls_qname}.{name}"
        if depth >= 3:
            return None
        for base in info.bases:
            found = self.method_qname(base, name, depth + 1)
            if found is not None:
                return found
        return None

    def _resolve_call(self, call: ast.Call, info: FunctionInfo,
                      aliases: Dict[str, str],
                      local_fns: Dict[str, str],
                      local_types: Dict[str, str]) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in local_fns:
                return local_fns[name]
            local = f"{info.module}.{name}"
            if local in self.functions:
                return local
            origin = self._follow(aliases.get(name, ""))
            for cls_qname in (local, origin):
                if cls_qname in self.classes:
                    return self.method_qname(cls_qname, "__init__")
            if origin in self.functions:
                return origin
            return None
        if not isinstance(func, ast.Attribute):
            return None
        value = func.value
        # self.method(...) and self.attr.method(...)
        if isinstance(value, ast.Name) and value.id == "self":
            if info.class_qname is None:
                return None
            return self.method_qname(info.class_qname, func.attr)
        if (isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self" and info.class_qname):
            cls_info = self.classes.get(info.class_qname)
            bound = cls_info.attr_types.get(value.attr) if cls_info else None
            if bound is not None:
                return self.method_qname(bound, func.attr)
            return None
        # obj.method(...) where obj is a locally-constructed instance.
        if isinstance(value, ast.Name) and value.id in local_types:
            return self.method_qname(local_types[value.id], func.attr)
        # Fully-dotted references: mod.func(...), mod.Class(...),
        # ClassName.method(...) through the imports.
        origin = _resolve(func, aliases)
        if origin is None:
            return None
        origin = self._follow(origin)
        if origin in self.functions:
            return origin
        if origin in self.classes:
            return self.method_qname(origin, "__init__")
        holder, _, leaf = origin.rpartition(".")
        holder = self._follow(holder)
        if holder in self.classes:
            return self.method_qname(holder, leaf)
        local = f"{info.module}.{origin}"
        if local in self.functions:
            return local
        return None

    # -- sinks ---------------------------------------------------------

    def _scan_sinks(self, node: ast.AST, info: FunctionInfo,
                    aliases: Dict[str, str],
                    suppressions: Sequence[Suppression]) -> None:
        family: Optional[str] = None
        detail = ""
        if isinstance(node, (ast.Name, ast.Attribute)):
            origin = _resolve(node, aliases)
            if origin is None:
                return
            head, _, leaf = origin.rpartition(".")
            if head == "time" and leaf in _WALL_TIME_FNS:
                family, detail = "wall", origin
            elif (origin.startswith("datetime.")
                    and leaf in _DATETIME_LEAVES):
                family, detail = "wall", origin
            elif (head == "random" and leaf not in _RANDOM_OK):
                family, detail = "random", origin
            elif origin in _ENTROPY_ORIGINS:
                family, detail = "random", origin
        elif isinstance(node, ast.Call):
            origin = _resolve(node.func, aliases)
            if origin is not None:
                root = origin.split(".")[0]
                if origin in _BLOCKING_CALLS or root in _BLOCKING_MODULES:
                    family, detail = "blocking", origin
            if (family is None and isinstance(node.func, ast.Name)
                    and node.func.id in ("open", "input")):
                family, detail = "blocking", f"{node.func.id}()"
        if family is None:
            return
        base = {"wall": "DET001", "random": "DET002",
                "blocking": "SIM001"}[family]
        line = getattr(node, "lineno", info.line)
        sink = SinkUse(
            function=info.qname, family=family, detail=detail,
            path=info.path, line=line,
            suppressed=_suppressed_at(suppressions, base, line))
        self.sinks.append(sink)
        self._sinks_by_fn.setdefault((info.qname, family), []).append(sink)

    def callers(self, qname: str) -> List[str]:
        """Callers of ``qname`` (deduplicated caller qnames, sorted)."""
        return sorted(set(self._callers.get(qname, ())))

    def direct_sinks(self, qname: str, family: str,
                     include_suppressed: bool = False) -> List[SinkUse]:
        found = self._sinks_by_fn.get((qname, family), [])
        if include_suppressed:
            return list(found)
        return [s for s in found if not s.suppressed]

    # -- taint ---------------------------------------------------------

    def taint(self, family: str) -> Dict[str, Taint]:
        """Function qname -> taint record, via deterministic BFS from
        every unsuppressed sink of ``family`` over reverse call edges."""
        if family in self._taint:
            return self._taint[family]
        info: Dict[str, Taint] = {}
        frontier: List[str] = []
        for qname in sorted(self.functions):
            sinks = self.direct_sinks(qname, family)
            if sinks:
                info[qname] = Taint(distance=0, next_hop=None,
                                    sink=min(sinks, key=lambda s: s.line))
                frontier.append(qname)
        while frontier:
            next_frontier: List[str] = []
            for callee in sorted(frontier):
                for caller in sorted(self._callers.get(callee, ())):
                    if caller in info:
                        continue
                    info[caller] = Taint(
                        distance=info[callee].distance + 1,
                        next_hop=callee, sink=info[callee].sink)
                    next_frontier.append(caller)
            frontier = next_frontier
        self._taint[family] = info
        return info

    def chain(self, family: str, qname: str) -> str:
        """Human-readable witness chain from ``qname`` down to the sink."""
        info = self.taint(family)
        parts: List[str] = []
        cursor: Optional[str] = qname
        while cursor is not None:
            parts.append(cursor)
            cursor = info[cursor].next_hop
        sink = info[qname].sink
        parts.append(f"{sink.detail} [{sink.path}:{sink.line}]")
        return " -> ".join(parts)


def _ctx_of(project: ProjectContext,
            info: FunctionInfo) -> Optional[LintContext]:
    for ctx in project.contexts:
        if ctx.path == info.path:
            return ctx
    return None


def build_callgraph(project: ProjectContext) -> CallGraph:
    """The run's shared call graph (built once, memoised on the project)."""
    return project.cached("callgraph", lambda: CallGraph.build(project))


def render_graph_json(project: ProjectContext) -> Dict[str, object]:
    """The ``--graph-dump`` payload (schema in docs/STATIC_ANALYSIS.md)."""
    graph = build_callgraph(project)
    tainted: Dict[str, Dict[str, object]] = {}
    for family, _base, _code in FAMILIES:
        records = graph.taint(family)
        tainted[family] = {
            qname: {"distance": taint.distance,
                    "chain": graph.chain(family, qname)}
            for qname, taint in sorted(records.items())}
    return {
        "schema": 1,
        "functions": [
            {"qname": fn.qname, "module": fn.module,
             "path": fn.path, "line": fn.line}
            for _q, fn in sorted(graph.functions.items())],
        "edges": [
            {"caller": e.caller, "callee": e.callee,
             "line": e.line, "col": e.col}
            for e in graph.edges],
        "sinks": [
            {"function": s.function, "family": s.family,
             "detail": s.detail, "path": s.path, "line": s.line,
             "suppressed": s.suppressed}
            for s in graph.sinks],
        "tainted": tainted,
    }


# ----------------------------------------------------------------------
# DET101 / DET102 / SIM101
# ----------------------------------------------------------------------


class _TaintRule(ProjectRule):
    """Shared machinery: flag in-scope -> out-of-scope tainted edges."""

    family: str = ""
    noun: str = ""
    remedy: str = ""

    def _prefixes(self, project: ProjectContext) -> Sequence[str]:
        raise NotImplementedError

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        graph = build_callgraph(project)
        tainted = graph.taint(self.family)
        prefixes = self._prefixes(project)
        seen: Set[Tuple[str, str]] = set()
        for edge in graph.edges:
            caller = graph.functions[edge.caller]
            if not _module_in(caller.module, prefixes):
                continue
            callee = graph.functions.get(edge.callee)
            if callee is None or _module_in(callee.module, prefixes):
                # In-scope callees are flagged at their own frame (or by
                # the per-file base rule when the sink is direct).
                continue
            if edge.callee not in tainted:
                continue
            if graph.direct_sinks(edge.caller, self.family):
                continue  # the base rule already flags this frame
            key = (edge.caller, edge.callee)
            if key in seen:
                continue
            seen.add(key)
            ctx = _ctx_of(project, caller)
            snippet = ctx.line_text(edge.line) if ctx is not None else ""
            chain = graph.chain(self.family, edge.callee)
            yield Violation(
                code=self.code,
                message=(f"`{edge.caller}` transitively reaches "
                         f"{self.noun} via `{chain}`; {self.remedy}"),
                path=caller.path, line=edge.line, col=edge.col,
                snippet=snippet)


class TransitiveWallClockRule(_TaintRule):
    """DET101: deterministic code reaching a wall-clock read through
    out-of-scope helpers.  The interprocedural sibling of DET001."""

    code = "DET101"
    name = "transitive-wall-clock"
    description = ("deterministic entry point transitively reaches a "
                   "wall-clock read")
    family = "wall"
    noun = "a wall-clock read"
    remedy = ("deterministic code must stay on the scheduler clock "
              "(repro.obs.hostclock is the only sanctioned boundary)")

    def _prefixes(self, project: ProjectContext) -> Sequence[str]:
        return project.config.deterministic_prefixes


class TransitiveRandomRule(_TaintRule):
    """DET102: deterministic code reaching ambient randomness through
    out-of-scope helpers.  The interprocedural sibling of DET002."""

    code = "DET102"
    name = "transitive-ambient-random"
    description = ("deterministic entry point transitively reaches "
                   "ambient randomness")
    family = "random"
    noun = "ambient randomness"
    remedy = ("draw from the World's seeded random.Random instead of "
              "module-global RNG state")

    def _prefixes(self, project: ProjectContext) -> Sequence[str]:
        return project.config.deterministic_prefixes


class TransitiveBlockingRule(_TaintRule):
    """SIM101: sim-driven code reaching host blocking / threads / real
    I/O through out-of-scope helpers.  The interprocedural sibling of
    SIM001."""

    code = "SIM101"
    name = "transitive-sim-discipline"
    description = ("sim-driven entry point transitively reaches blocking "
                   "host I/O")
    family = "blocking"
    noun = "blocking host I/O"
    remedy = ("sim-driven code must route all I/O and delays through "
              "the simulated scheduler")

    def _prefixes(self, project: ProjectContext) -> Sequence[str]:
        return project.config.sim_only_prefixes
