"""Unit and property-based tests for the repro.obs time-series layer.

The aggregators carry the per-group adaptive policy (StyleManager), so
their numeric properties are pinned here with Hypothesis:

* the ring buffer retains exactly the last ``capacity`` samples in
  append order;
* the time-decayed EWMA is always a convex combination of what it has
  seen (bounded by the observed min/max);
* the windowed quantile sketch estimates within one bucket width of the
  exact rank statistic, clamped to the observed range.

Registry semantics (laziness, labels, sampling, flight deltas) and
canonical-JSON determinism ride along.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.obs import (
    Ewma,
    FlightRecorder,
    Histogram,
    QuantileSketch,
    RingBuffer,
    SeriesRegistry,
    SlidingRate,
)
from repro.obs.series import render_key


# ----------------------------------------------------------------------
# Keys and labels
# ----------------------------------------------------------------------

def test_render_key_sorts_and_escapes():
    registry = SeriesRegistry(enabled=True)
    entry = registry.series("series.test.metric", zone="b", group=3)
    # Labels are sorted by key and values stringified.
    assert entry.key == 'series.test.metric{group="3",zone="b"}'
    assert render_key("n", (("k", 'a"b\\c'),)) == 'n{k="a\\"b\\\\c"}'
    assert render_key("bare", ()) == "bare"


def test_label_keys_and_names_validated():
    registry = SeriesRegistry(enabled=True)
    with pytest.raises(ConfigurationError):
        registry.series("series.test.metric", BadKey="x")
    with pytest.raises(ConfigurationError):
        registry.series("Bad.Name")


def test_registry_interns_by_key():
    registry = SeriesRegistry(enabled=True)
    a = registry.series("series.test.metric", group=1)
    assert registry.series("series.test.metric", group=1) is a
    assert registry.series("series.test.metric", group=2) is not a
    assert registry.get("series.test.metric", group=1) is a
    assert registry.get("series.test.metric", group=9) is None
    assert registry.keys() == [
        'series.test.metric{group="1"}',
        'series.test.metric{group="2"}',
    ]


# ----------------------------------------------------------------------
# Laziness contract
# ----------------------------------------------------------------------

def test_disabled_registry_is_inert():
    registry = SeriesRegistry(enabled=False)
    registry.observe("series.test.metric", 1.0, group=1)
    assert registry.sample("series.test.metric", lambda: 0.0) is None
    assert registry.keys() == []
    assert registry.snapshot(0.0)["series"] == {}


class _FakeScheduler:
    def __init__(self):
        self.timers = []

    def call_every(self, interval, fn):
        self.timers.append((interval, fn))


def test_event_series_never_arm_the_sampler():
    """Purely event-driven use adds zero scheduler events, which is why
    enabling the registry keeps the simulated schedule byte-identical."""
    scheduler = _FakeScheduler()
    registry = SeriesRegistry(enabled=True)
    registry.attach_scheduler(scheduler)
    registry.observe("series.test.metric", 1.0)
    registry.observe("series.test.metric", 2.0)
    assert scheduler.timers == []


def test_sampled_series_arm_once_and_poll_in_order():
    clock = [0.0]
    scheduler = _FakeScheduler()
    registry = SeriesRegistry(clock=lambda: clock[0], enabled=True,
                              sample_interval=0.5)
    registry.attach_scheduler(scheduler)
    values = {"a": 1.0, "b": 10.0}
    registry.sample("series.test.metric", lambda: values["a"], source="a")
    registry.sample("series.test.metric", lambda: values["b"], source="b")
    assert len(scheduler.timers) == 1          # one timer for all sources
    assert scheduler.timers[0][0] == 0.5
    tick = scheduler.timers[0][1]
    tick()
    clock[0] = 0.5
    values["a"] = 2.0
    tick()
    a = registry.get("series.test.metric", source="a")
    assert [v for _, v in a.ring.items()] == [1.0, 2.0]
    assert a.sampled and a.last_t == 0.5


def test_sampled_flight_delta_records_black_box_events():
    clock = [0.0]
    flight = FlightRecorder(clock=lambda: clock[0], enabled=True)
    registry = SeriesRegistry(clock=lambda: clock[0], enabled=True,
                              flight=flight)
    registry.attach_scheduler(_FakeScheduler())
    values = [5.0]
    entry = registry.sample("series.test.metric", lambda: values[0],
                            flight_delta=2.0)
    tick = registry._tick
    tick()                      # first sample always fires (previous None)
    values[0] = 6.0
    tick()                      # delta 1.0 < 2.0: silent
    values[0] = 9.0
    tick()                      # delta 3.0 >= 2.0: recorded
    deltas = flight.events("flight.series")
    assert [(e["detail"]["previous"], e["detail"]["value"])
            for e in deltas] == [(None, 5.0), (6.0, 9.0)]
    assert all(e["detail"]["series"] == entry.key for e in deltas)


# ----------------------------------------------------------------------
# RingBuffer
# ----------------------------------------------------------------------

def test_ring_capacity_validated():
    with pytest.raises(ConfigurationError):
        RingBuffer(0)


@given(values=st.lists(st.floats(allow_nan=False, allow_infinity=False),
                       max_size=60),
       capacity=st.integers(min_value=1, max_value=12))
def test_ring_keeps_last_capacity_in_append_order(values, capacity):
    ring = RingBuffer(capacity)
    for i, v in enumerate(values):
        ring.append(float(i), v)
    expected = [(float(i), v) for i, v in enumerate(values)][-capacity:]
    assert ring.items() == expected
    assert ring.appended == len(values)
    assert ring.dropped == max(0, len(values) - capacity)
    assert len(ring) == min(len(values), capacity)


# ----------------------------------------------------------------------
# SlidingRate
# ----------------------------------------------------------------------

def test_sliding_rate_window_eviction():
    rate = SlidingRate(window_s=1.0)
    rate.add(0.0, 2.0)
    rate.add(0.5, 1.0)
    assert rate.rate(0.5) == pytest.approx(3.0)
    # Samples at t <= now - window leave the window (half-open interval).
    assert rate.rate(1.0) == pytest.approx(1.0)
    assert rate.rate(1.5) == pytest.approx(0.0)
    assert rate.rate(10.0) == 0.0


# ----------------------------------------------------------------------
# Ewma
# ----------------------------------------------------------------------

def test_ewma_first_observation_is_exact():
    ewma = Ewma(tau_s=1.0)
    assert ewma.value is None
    ewma.observe(0.0, 4.0)
    assert ewma.value == 4.0
    # dt == 0 gives the new sample zero weight (no double counting of
    # one simulated instant).
    ewma.observe(0.0, 100.0)
    assert ewma.value == 4.0


@given(samples=st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=100.0,
                        allow_nan=False, allow_infinity=False),
              st.floats(min_value=-1e6, max_value=1e6,
                        allow_nan=False, allow_infinity=False)),
    min_size=1, max_size=80),
    tau=st.floats(min_value=1e-3, max_value=10.0))
def test_ewma_bounded_by_observed_range(samples, tau):
    """Every update is a convex combination, so the estimate can never
    escape [min(observations), max(observations)]."""
    samples = sorted(samples, key=lambda s: s[0])  # nondecreasing time
    ewma = Ewma(tau_s=tau)
    for t, v in samples:
        ewma.observe(t, v)
    values = [v for _, v in samples]
    tolerance = 1e-9 * max(1.0, max(abs(v) for v in values))
    assert min(values) - tolerance <= ewma.value <= max(values) + tolerance


# ----------------------------------------------------------------------
# QuantileSketch
# ----------------------------------------------------------------------

def _exact_quantile(values, q):
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@given(values=st.lists(
    st.floats(min_value=0.0, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=200),
    q=st.sampled_from([0.25, 0.5, 0.9, 0.95, 0.99, 1.0]))
def test_sketch_quantile_bounded_error_within_one_epoch(values, q):
    """All samples inside one epoch: the estimate interpolates within
    the bucket holding the exact rank, so the error is bounded by that
    bucket's width (Histogram geometry), clamped to the observed
    range."""
    sketch = QuantileSketch(window_s=10.0)
    for v in values:
        sketch.observe(0.0, v)
    exact = _exact_quantile(values, q)
    estimate = sketch.quantile(q, 0.0)
    bound = max(Histogram.BASE, exact * (Histogram.GROWTH - 1))
    assert abs(estimate - exact) <= bound * (1 + 1e-9) + 1e-12
    assert min(values) <= estimate <= max(values)
    assert sketch.count == len(values)


def test_sketch_clamps_negative_and_nan_to_zero():
    sketch = QuantileSketch(window_s=1.0)
    sketch.observe(0.0, -3.0)
    sketch.observe(0.0, float("nan"))
    assert sketch.quantile(0.99, 0.0) == 0.0


def test_sketch_window_rotation_forgets_old_epochs():
    """Two rotating half-window epochs: an estimate covers between
    window/2 and window of history, and everything older is gone."""
    sketch = QuantileSketch(window_s=1.0)
    sketch.observe(0.0, 100.0)
    # Still visible inside the full window (previous epoch retained).
    sketch.observe(0.6, 1.0)
    assert sketch.count == 2
    assert sketch.quantile(1.0, 0.6) == pytest.approx(100.0)
    # After a full window with no samples both epochs are stale.
    assert sketch.quantile(0.5, 5.0) is None
    assert sketch.count == 0
    sketch.observe(5.0, 7.0)
    assert sketch.quantile(0.5, 5.0) == pytest.approx(7.0)


def test_sketch_quantile_empty():
    assert QuantileSketch(window_s=1.0).quantile(0.5, 0.0) is None


# ----------------------------------------------------------------------
# Series + registry snapshots
# ----------------------------------------------------------------------

def test_series_snapshot_shape_and_aggregates():
    clock = [0.0]
    registry = SeriesRegistry(clock=lambda: clock[0], enabled=True,
                              capacity=4, window_s=2.0)
    for i in range(6):
        clock[0] = i * 0.1
        registry.observe("series.test.metric", float(i), group=1)
    entry = registry.get("series.test.metric", group=1)
    snap = entry.snapshot(clock[0])
    assert snap["name"] == "series.test.metric"
    assert snap["labels"] == {"group": "1"}
    assert snap["count"] == 6 and snap["dropped"] == 2
    assert [t for t, _ in snap["points"]] == pytest.approx(
        [0.2, 0.3, 0.4, 0.5])
    assert [v for _, v in snap["points"]] == [2.0, 3.0, 4.0, 5.0]
    assert snap["last"] == 5.0 and snap["last_t"] == 0.5
    # All six samples are inside the 2 s window: rate sums amounts.
    assert snap["rate"] == pytest.approx(15.0 / 2.0)
    assert 0.0 <= snap["ewma"] <= 5.0
    assert snap["p50"] is not None and snap["p50"] <= snap["p95"]


def test_registry_json_is_deterministic():
    def build():
        clock = [0.0]
        registry = SeriesRegistry(clock=lambda: clock[0], enabled=True)
        for i in range(10):
            clock[0] = i * 0.05
            registry.observe("series.test.metric", i * 0.01, group=i % 2)
        return registry.to_json(clock[0])

    first, second = build(), build()
    assert first == second
    assert '"schema":1' in first
    # Keys appear sorted in the canonical document.
    assert first.index('group=\\"0\\"') < first.index('group=\\"1\\"')
