"""The Eternal Interceptor: address interposition for published IORs.

Paper section 3.1: "Eternal replaces the {server host, server port} in
the IOR of each server replica with the {gateway host, gateway port}
through the use of its Interceptor.  The intent of the Interceptor is
to interpose at the point that the server-side ORB queries the
operating system for the host and the port information, prior to
publishing the IOR" — i.e. ``getsockname()``/``sysinfo()`` are
overridden via library interpositioning.

In this reproduction the syscall seam is
:meth:`repro.orb.orb.Orb.published_address`: the mini-ORB "asks the OS"
for its address through that method when building an IOR, and
:meth:`EternalInterceptor.interpose_orb` overrides it — the same
information flow as the paper's ``LD_PRELOAD`` trick, without parsing
or rewriting IOR strings (which the paper also deliberately avoids).

For replicated objects managed wholly by Eternal (no per-replica ORB
exists), :meth:`published_ior` builds the published reference directly:
one profile per gateway of the domain (the multi-profile "stitched" IOR
of section 3.5), all carrying the object key that encodes the target
group.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, TYPE_CHECKING

from ..errors import ConfigurationError
from ..iiop.ior import Ior, stitch_profiles
from ..orb.orb import Orb
from .naming import make_object_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .domain import FaultToleranceDomain


class EternalInterceptor:
    """Publishes gateway-addressed IORs for a fault tolerance domain."""

    def __init__(self, domain: "FaultToleranceDomain") -> None:
        self.domain = domain

    # ------------------------------------------------------------------
    # IOR publication for Eternal-managed groups
    # ------------------------------------------------------------------

    def gateway_addresses(self) -> List[Tuple[str, int]]:
        # References published "now" lead with currently-live gateways;
        # profiles of crashed gateways stay in the list (a client holding
        # an old IOR would still have them) but move to the tail.
        gateways = sorted(self.domain.gateways,
                          key=lambda gw: not gw.host.alive)
        addresses = [(gw.host.name, gw.port) for gw in gateways]
        if not addresses:
            raise ConfigurationError(
                f"domain {self.domain.name!r} has no gateway: published IORs "
                "would be unreachable from outside the domain")
        return addresses

    def published_ior(self, group_id: int, type_id: str,
                      first_gateway_only: bool = False,
                      addresses: Optional[List[Tuple[str, int]]] = None,
                      ) -> Ior:
        """The IOR Eternal publishes for a replicated group.

        ``first_gateway_only`` produces the single-profile IOR that
        plain ORBs effectively see (section 3.4); the default stitches
        one profile per redundant gateway (section 3.5).  ``addresses``
        overrides the profile order entirely — the gateway pool uses it
        to publish per-client IORs whose profiles walk the consistent-
        hash ring from the client's home gateway.
        """
        if addresses is None:
            addresses = self.gateway_addresses()
            if first_gateway_only:
                addresses = addresses[:1]
        return stitch_profiles(type_id, addresses,
                               make_object_key(self.domain.name, group_id))

    # ------------------------------------------------------------------
    # ORB-level interposition (the getsockname()/sysinfo() seam)
    # ------------------------------------------------------------------

    def interpose_orb(self, orb: Orb) -> None:
        """Override the ORB's address query so that any IOR it publishes
        carries the first gateway's address instead of its own."""
        addresses = self.gateway_addresses()

        def published_address() -> Tuple[str, int]:
            return addresses[0]

        orb.published_address = published_address  # type: ignore[method-assign]
