"""End-to-end tests for the miniature ORB (plain, unreplicated CORBA)."""

import pytest

from repro.errors import (
    BadOperation,
    CommFailure,
    CorbaSystemException,
    InvocationFailure,
    NoResponse,
)
from repro.iiop import Ior, TC_LONG, TC_STRING, TC_VOID
from repro.orb import Interface, Operation, Orb, Param, Servant

COUNTER = Interface("Counter", [
    Operation("increment", [Param("amount", TC_LONG)], TC_LONG),
    Operation("value", [], TC_LONG),
    Operation("reset", [], TC_VOID),
    Operation("fail", [Param("reason", TC_STRING)], TC_VOID),
    Operation("log", [Param("note", TC_STRING)], TC_VOID, oneway=True),
])


class CounterServant(Servant):
    interface = COUNTER

    def __init__(self):
        self.count = 0
        self.notes = []

    def increment(self, amount):
        self.count += amount
        return self.count

    def value(self):
        return self.count

    def reset(self):
        self.count = 0

    def fail(self, reason):
        raise InvocationFailure("IDL:repro/CounterError:1.0", reason)

    def log(self, note):
        self.notes.append(note)


def make_pair(world):
    """Returns (client_orb, stub, servant) wired across two hosts."""
    from repro.sim import World
    server_host = world.add_host("server")
    client_host = world.add_host("client")
    server_orb = Orb(world, server_host)
    server_orb.listen(9000)
    servant = CounterServant()
    ior = server_orb.activate_object(servant)
    client_orb = Orb(world, client_host)
    stub = client_orb.string_to_object(ior.to_string(), COUNTER)
    return client_orb, stub, servant


def test_basic_invocation_roundtrip():
    from repro.sim import World
    world = World(seed=1)
    _, stub, servant = make_pair(world)
    result = world.await_promise(stub.call("increment", 5))
    assert result == 5
    assert servant.count == 5


def test_sequential_invocations_accumulate():
    from repro.sim import World
    world = World(seed=2)
    _, stub, servant = make_pair(world)
    for expected in (3, 6, 9):
        assert world.await_promise(stub.call("increment", 3)) == expected


def test_void_result():
    from repro.sim import World
    world = World(seed=3)
    _, stub, servant = make_pair(world)
    world.await_promise(stub.call("increment", 7))
    assert world.await_promise(stub.call("reset")) is None
    assert servant.count == 0


def test_user_exception_propagates():
    from repro.sim import World
    world = World(seed=4)
    _, stub, _ = make_pair(world)
    promise = stub.call("fail", "bad input")
    with pytest.raises(InvocationFailure) as excinfo:
        world.await_promise(promise)
    assert "bad input" in str(excinfo.value)
    assert excinfo.value.repo_id == "IDL:repro/CounterError:1.0"


def test_unknown_object_key_gives_system_exception():
    from repro.sim import World
    world = World(seed=5)
    client_orb, stub, _ = make_pair(world)
    bogus = Ior.for_endpoints("IDL:repro/Counter:1.0", [("server", 9000)],
                              b"no-such-object")
    bad_stub = client_orb.string_to_object(bogus, COUNTER)
    with pytest.raises(CorbaSystemException):
        world.await_promise(bad_stub.call("value"))


def test_unknown_operation_rejected_client_side():
    from repro.sim import World
    world = World(seed=6)
    _, stub, _ = make_pair(world)
    with pytest.raises(BadOperation):
        stub.call("no_such_op")


def test_oneway_invocation_fires_and_forgets():
    from repro.sim import World
    world = World(seed=7)
    _, stub, servant = make_pair(world)
    promise = stub.call("log", "note-1")
    assert promise.done  # resolved immediately, no reply expected
    world.run(until=world.now + 1.0)
    assert servant.notes == ["note-1"]


def test_connection_reused_across_invocations():
    from repro.sim import World
    world = World(seed=8)
    client_orb, stub, _ = make_pair(world)
    world.await_promise(stub.call("increment", 1))
    world.await_promise(stub.call("increment", 1))
    assert len(client_orb._connections) == 1


def test_server_crash_fails_pending_with_comm_failure():
    from repro.sim import World
    world = World(seed=9)
    _, stub, _ = make_pair(world)
    world.await_promise(stub.call("increment", 1))  # establish connection
    promise = stub.call("increment", 1)
    world.network.host("server").crash()
    with pytest.raises(CommFailure):
        world.await_promise(promise)


def test_connect_to_dead_server_fails():
    from repro.sim import World
    world = World(seed=10)
    _, stub, _ = make_pair(world)
    world.network.host("server").crash()
    with pytest.raises(CommFailure):
        world.await_promise(stub.call("value"))


def test_request_timeout():
    from repro.sim import World

    world = World(seed=11)
    server_host = world.add_host("server")
    client_host = world.add_host("client")
    server_orb = Orb(world, server_host)
    server_orb.listen(9000)

    class SilentServant(CounterServant):
        def value(self):
            # Simulate a hung server by never letting the reply out:
            # raise nothing, but the test drops the reply by crashing
            # the server before the reply propagates.
            return 0

    ior = server_orb.activate_object(SilentServant())
    client_orb = Orb(world, client_host, request_timeout=None)
    stub = client_orb.string_to_object(ior.to_string(), COUNTER)
    # Black-hole the reply path: partition right after the request is sent.
    promise = stub.call("value", timeout=5.0)
    world.scheduler.call_after(0.0001, lambda: world.network.partition(
        {"server"}, {"client"}))
    with pytest.raises((NoResponse, CommFailure)):
        world.await_promise(promise)


def test_two_clients_isolated_state_views():
    from repro.sim import World
    world = World(seed=12)
    server_host = world.add_host("server")
    server_orb = Orb(world, server_host)
    server_orb.listen(9000)
    servant = CounterServant()
    ior = server_orb.activate_object(servant)
    stubs = []
    for i in range(2):
        host = world.add_host(f"client{i}")
        orb = Orb(world, host)
        stubs.append(orb.string_to_object(ior.to_string(), COUNTER))
    assert world.await_promise(stubs[0].call("increment", 10)) == 10
    assert world.await_promise(stubs[1].call("increment", 5)) == 15
    assert world.await_promise(stubs[0].call("value")) == 15
