"""Property-based tests for the Totem total-order invariants.

These drive the real protocol over the simulated network with
randomised traffic and crash schedules, then check the two invariants
Eternal builds on: (1) survivors deliver a common totally-ordered
prefix-free sequence — identical order, no duplicates; (2) per-sender
FIFO is preserved within the total order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import World
from repro.totem import TotemMember, TotemTransport


def build_ring(world, count):
    transport = TotemTransport(world.network, "d")
    members, delivered = [], {}
    for i in range(count):
        host = world.add_host(f"n{i}", site="lan")
        member = TotemMember(host, f"n{i}", transport)
        delivered[member.name] = []
        member.on_deliver(lambda seq, snd, payload, n=member.name:
                          delivered[n].append((seq, snd, payload)))
        members.append(member)
    for member in members:
        member.start()
    world.scheduler.run_until(
        lambda: all(m.state == TotemMember.OPERATIONAL and
                    len(m.members) == count for m in members), timeout=30.0)
    return members, delivered


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=5),
       st.lists(st.tuples(st.integers(0, 4), st.integers(0, 100)),
                min_size=1, max_size=30),
       st.integers(0, 2**31 - 1))
def test_identical_total_order_property(n, sends, seed):
    world = World(seed=seed, trace=False)
    members, delivered = build_ring(world, n)
    total = 0
    for sender_index, payload in sends:
        members[sender_index % n].multicast((sender_index % n, payload, total))
        total += 1
    world.scheduler.run_until(
        lambda: all(len(delivered[m.name]) == total for m in members),
        timeout=120.0)
    reference = delivered[members[0].name]
    for member in members[1:]:
        assert delivered[member.name] == reference
    seqs = [s for (s, _, _) in reference]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=3, max_value=5),
       st.integers(0, 2**31 - 1),
       st.data())
def test_survivors_agree_after_crash_property(n, seed, data):
    world = World(seed=seed, trace=False)
    members, delivered = build_ring(world, n)
    victim = data.draw(st.integers(0, n - 1), label="victim")
    crash_after = data.draw(st.floats(0.0, 0.02), label="crash_delay")
    # Everyone sends a burst; the victim crashes somewhere inside it.
    for i, member in enumerate(members):
        for j in range(4):
            member.multicast((i, j))
    world.faults.crash_host(f"n{victim}", world.now + crash_after)
    world.run(until=world.now + 3.0)
    survivors = [m for m in members if m.name != f"n{victim}"]
    # All survivors are operational on the same reformed ring.
    assert all(m.state == TotemMember.OPERATIONAL for m in survivors)
    ring_ids = {m.ring_id for m in survivors}
    assert len(ring_ids) == 1
    # Identical delivery sequences among survivors.
    reference = delivered[survivors[0].name]
    for member in survivors[1:]:
        assert delivered[member.name] == reference
    # Survivors' own messages were all delivered (sender FIFO intact).
    for i, member in enumerate(members):
        if member.name == f"n{victim}":
            continue
        own = [p for (_, snd, p) in reference if snd == member.name]
        assert own == [(i, j) for j in range(4)]


@settings(max_examples=10, deadline=None)
@given(st.integers(2, 4), st.integers(0, 2**31 - 1))
def test_sequence_numbers_survive_reformation_property(n, seed):
    """Sequence numbers never regress across a membership change — the
    uniqueness property Figure 6 identifiers rely on."""
    world = World(seed=seed, trace=False)
    members, delivered = build_ring(world, n + 1)
    for member in members:
        member.multicast("pre")
    world.scheduler.run_until(
        lambda: all(len(delivered[m.name]) == n + 1 for m in members),
        timeout=60.0)
    world.faults.crash_now(members[-1].name)
    world.run(until=world.now + 1.0)
    for member in members[:-1]:
        member.multicast("post")
    survivors = members[:-1]
    world.scheduler.run_until(
        lambda: all(len(delivered[m.name]) == 2 * n + 1 for m in survivors),
        timeout=60.0)
    seqs = [s for (s, _, _) in delivered[members[0].name]]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)
