# reprolint: module=repro.obs.fake
"""SIM001 good fixture: repro.obs is host-side tooling, where file
I/O is legitimate (exporters, report writers)."""


def export(path, payload):
    with open(path, "w") as handle:
        handle.write(payload)
