"""Causal-tracing tests: collector semantics, end-to-end span trees,
determinism of the exporters, and consistency with the metrics layer.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FtClientLayer, Orb, TraceCollector, World
from repro.sim.trace import Tracer

from tests.helpers import external_client, make_counter_group, make_domain


# ======================================================================
# Collector unit semantics
# ======================================================================


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _collector():
    clock = _Clock()
    return TraceCollector(enabled=True, clock=clock), clock


def test_disabled_collector_is_inert():
    spans = TraceCollector(enabled=False)
    assert spans.start("t", "a") == 0
    spans.end(0)
    spans.instant("t", "b")
    assert spans.spans == []
    assert spans.export_tree() == "(no spans recorded)"


def test_span_ids_and_parenting():
    spans, clock = _collector()
    root = spans.start("t1", "root", source="c")
    clock.now = 1.0
    child = spans.start("t1", "mid", parent=root, source="g")
    assert (root, child) == (1, 2)
    clock.now = 2.0
    spans.end(child)
    clock.now = 3.0
    spans.end(root, outcome="done")
    got_root, got_child = spans.get(root), spans.get(child)
    assert got_child.parent_id == root
    assert got_root.duration == 3.0
    assert got_root.attrs["outcome"] == "done"


def test_end_is_first_close_wins():
    spans, clock = _collector()
    sid = spans.start("t", "x")
    clock.now = 1.0
    spans.end(sid, by="first")
    clock.now = 9.0
    spans.end(sid, by="second")
    span = spans.get(sid)
    assert span.end == 1.0
    assert span.attrs == {"by": "first"}


def test_end_unknown_and_zero_span_is_noop():
    spans, _ = _collector()
    spans.end(0)
    spans.end(12345)
    assert spans.spans == []


def test_late_child_extends_closed_ancestors():
    spans, clock = _collector()
    root = spans.start("t", "root")
    mid = spans.start("t", "mid", parent=root)
    clock.now = 1.0
    spans.end(mid)
    spans.end(root)
    # A straggler closes (or flashes) under mid long after both closed.
    late = spans.start("t", "late", parent=mid)
    clock.now = 5.0
    spans.end(late)
    assert spans.get(mid).end == 5.0
    assert spans.get(root).end == 5.0
    clock.now = 7.0
    spans.instant("t", "flash", parent=mid)
    assert spans.get(root).end == 7.0


def test_instant_is_closed_at_start():
    spans, clock = _collector()
    clock.now = 2.5
    sid = spans.instant("t", "evt", detail=1)
    span = spans.get(sid)
    assert span.closed and span.start == span.end == 2.5


def test_trace_ids_in_first_span_order():
    spans, _ = _collector()
    spans.start("b", "x")
    spans.start("a", "y")
    spans.start("b", "z")
    assert spans.trace_ids() == ["b", "a"]


def test_clear_resets_everything():
    spans, _ = _collector()
    spans.start("t", "x")
    spans.clear()
    assert spans.spans == [] and spans.trace_ids() == []


def test_lazy_counters_only_appear_on_first_span():
    world = World(seed=1, trace_spans=True)
    assert not any(name.startswith("trace.")
                   for name in world.metrics.snapshot())
    world.trace_collector.start("t", "x")
    snap = world.metrics.snapshot()
    assert snap["trace.spans.started"]["value"] == 1
    assert snap["trace.traces.started"]["value"] == 1
    assert snap["trace.spans.closed"]["value"] == 0


def test_chrome_export_schema():
    spans, clock = _collector()
    root = spans.start("t", "root", source="client")
    clock.now = 0.0015
    spans.end(root)
    spans.start("t", "never-closed", parent=root, source="gw")
    doc = json.loads(spans.export_chrome())
    events = doc["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    meta = [e for e in events if e["ph"] == "M"]
    assert {e["name"] for e in meta} == {"process_name", "thread_name"}
    by_name = {e["name"]: e for e in complete}
    assert by_name["root"]["dur"] == 1500      # µs, integer
    assert by_name["never-closed"]["args"]["open"] is True
    assert by_name["never-closed"]["args"]["parent_id"] == root


# ======================================================================
# Hypothesis: nesting is sound under arbitrary interleavings
# ======================================================================


@settings(deadline=None, max_examples=60)
@given(data=st.data())
def test_nesting_property_random_interleavings(data):
    """Every closed span lies within its parent, and no span outlives
    its trace root, no matter how starts/ends/instants interleave and
    how late children close."""
    spans, clock = _collector()
    open_ids = []
    n_ops = data.draw(st.integers(1, 40))
    for _ in range(n_ops):
        clock.now += data.draw(st.floats(0, 5))
        op = data.draw(st.sampled_from(["start", "end", "instant"]))
        if op == "start" or not open_ids:
            # A child hop always continues its parent's trace, as in the
            # real instrumentation (the trace id rides with the request).
            parent = (data.draw(st.sampled_from(open_ids))
                      if open_ids and data.draw(st.booleans()) else 0)
            trace = (spans.get(parent).trace_id if parent
                     else data.draw(st.sampled_from(["t1", "t2"])))
            open_ids.append(spans.start(trace, "s", parent=parent))
        elif op == "end":
            spans.end(data.draw(st.sampled_from(open_ids)))
        else:
            parent = data.draw(st.sampled_from(open_ids))
            spans.instant(spans.get(parent).trace_id, "i", parent=parent)
    for sid in open_ids:
        clock.now += data.draw(st.floats(0, 5))
        spans.end(sid)
    by_id = {s.span_id: s for s in spans.spans}
    roots = {}
    for span in spans.spans:
        assert span.closed, "all spans were explicitly closed"
        parent = by_id.get(span.parent_id)
        if parent is not None:
            assert parent.start <= span.start
            assert parent.end >= span.end, "child escapes its parent"
        if span.parent_id == 0:
            roots.setdefault(span.trace_id, []).append(span)
    # No span outlives its trace: some root of the span's trace covers
    # its end (ancestor extension guarantees the span's own root does).
    for span in spans.spans:
        assert any(r.end >= span.end for r in roots[span.trace_id])


# ======================================================================
# End-to-end: the paper's causal path, traced
# ======================================================================


def _traced_scenario(seed=77, crash=False):
    world = World(seed=seed, trace_spans=True)
    domain = make_domain(world, gateways=2)
    group = make_counter_group(domain)
    # Fixed client uid: FtClientLayer's default uid comes from a
    # process-global counter, and trace ids embed the uid — pinning it
    # makes exports comparable across worlds within one process.
    host = world.add_host("browser")
    orb = Orb(world, host, request_timeout=None)
    layer = FtClientLayer(orb, client_uid="traced-client")
    stub = layer.string_to_object(domain.ior_for(group).to_string(),
                                  group.interface)
    for _ in range(2):
        world.await_promise(stub.call("increment", 1), timeout=600)
    if crash:
        world.faults.crash_now(domain.gateways[0].host.name)
        world.await_promise(stub.call("increment", 1), timeout=600)
    world.run(until=world.now + 0.5)
    return world


def test_span_tree_covers_every_hop():
    world = _traced_scenario()
    spans = world.trace_collector
    trace_id = spans.trace_ids()[0]
    tree = spans.select(trace_id=trace_id)
    names = [s.name for s in tree]
    for hop in ("client.request", "client.marshal", "gateway.request",
                "gateway.ingress", "gateway.translate",
                "totem.order.invocation", "rm.delivery", "rm.execute",
                "totem.order.response", "gateway.response", "gateway.egress"):
        assert hop in names, f"missing hop {hop}"
    by_name = {}
    for span in tree:
        by_name.setdefault(span.name, []).append(span)
    root = by_name["client.request"][0]
    container = by_name["gateway.request"][0]
    assert root.parent_id == 0
    assert container.parent_id == root.span_id
    assert container.attrs["outcome"] == "delivered"
    for name in ("gateway.ingress", "gateway.translate",
                 "totem.order.invocation", "rm.delivery", "rm.execute",
                 "gateway.egress"):
        for span in by_name[name]:
            assert span.parent_id == container.span_id
    # Active replication on 3 hosts: one execution span per replica,
    # every one successful.
    assert len(by_name["rm.execute"]) == 3
    assert all(s.attrs["outcome"] == "done" for s in by_name["rm.execute"])
    assert all(s.closed for s in tree)
    # Chronology along the critical path.
    order = by_name["totem.order.invocation"][0]
    execute = by_name["rm.execute"][0]
    egress = by_name["gateway.egress"][0]
    assert (root.start <= container.start <= order.start
            <= order.end <= execute.start <= egress.start <= root.end)


def test_failover_reissue_lands_in_same_trace():
    world = _traced_scenario(crash=True)
    spans = world.trace_collector
    last = spans.trace_ids()[-1]
    tree = spans.select(trace_id=last)
    containers = [s for s in tree if s.name == "gateway.request"]
    # The reissued invocation opened a fresh gateway container at the
    # surviving gateway, inside the *same* client trace.
    assert len(containers) >= 1
    assert any(s.attrs.get("outcome") == "delivered" for s in containers)
    root = next(s for s in tree if s.name == "client.request")
    assert all(s.end <= root.end for s in tree)


def test_chrome_export_byte_identical_across_seeded_runs():
    first = _traced_scenario(seed=91, crash=True).trace_chrome_json()
    second = _traced_scenario(seed=91, crash=True).trace_chrome_json()
    assert first == second
    doc = json.loads(first)
    assert all(isinstance(e["ts"], int) and isinstance(e["dur"], int)
               for e in doc["traceEvents"] if e["ph"] == "X")


def test_tree_export_deterministic_and_readable():
    first = _traced_scenario(seed=93).trace_tree()
    second = _traced_scenario(seed=93).trace_tree()
    assert first == second
    assert "client.request" in first and "rm.execute" in first


def test_trace_and_latency_histogram_agree():
    """The gateway's egress instant and its latency observation are the
    same event: per delivered invocation, (egress - container start)
    must reproduce ``gateway.req.latency`` exactly."""
    world = World(seed=55, trace_spans=True)
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    _orb, stub, _layer = external_client(world, domain, group, enhanced=True)
    for _ in range(4):
        world.await_promise(stub.call("increment", 1), timeout=600)
    world.run(until=world.now + 0.5)
    spans = world.trace_collector
    latencies = []
    for trace_id in spans.trace_ids():
        container = next(s for s in spans.select(trace_id=trace_id)
                         if s.name == "gateway.request")
        egress = next(s for s in spans.select(trace_id=trace_id)
                      if s.name == "gateway.egress")
        latencies.append(egress.start - container.start)
    hist = world.metrics.snapshot()["gateway.req.latency"]
    assert hist["count"] == len(latencies) == 4
    assert hist["sum"] == pytest.approx(sum(latencies), abs=1e-12)


def test_disabled_world_records_nothing_and_counts_nothing():
    world = World(seed=77)  # trace_spans defaults to False
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    _orb, stub, _layer = external_client(world, domain, group, enhanced=True)
    world.await_promise(stub.call("increment", 1), timeout=600)
    assert world.trace_collector.spans == []
    assert not any(name.startswith("trace.")
                   for name in world.metrics.snapshot())


def test_plain_client_gets_gateway_rooted_trace():
    world = World(seed=60, trace_spans=True)
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    _orb, stub, _layer = external_client(world, domain, group, enhanced=False)
    world.await_promise(stub.call("increment", 1), timeout=600)
    world.run(until=world.now + 0.5)
    spans = world.trace_collector
    trace_id = spans.trace_ids()[0]
    assert trace_id.startswith("gw/")
    tree = spans.select(trace_id=trace_id)
    root = next(s for s in tree if s.parent_id == 0)
    assert root.name == "gateway.request"  # no client root without the layer
    assert "rm.execute" in {s.name for s in tree}


# ======================================================================
# Tracer ring-buffer cap (sim.trace satellite)
# ======================================================================


def test_tracer_max_records_bounds_records_not_counts():
    tracer = Tracer(enabled=True, max_records=5)
    for i in range(12):
        tracer.emit(float(i), "cat", "src", f"event {i}")
    assert len(tracer.records) == 5
    assert [r.time for r in tracer.records] == [7.0, 8.0, 9.0, 10.0, 11.0]
    assert tracer.count("cat") == 12  # counters saw every emit
    assert tracer.dump(limit=3).count("\n") == 2


def test_tracer_uncapped_keeps_list_type():
    tracer = Tracer(enabled=True)
    assert tracer.records == []      # historical list contract
    tracer.emit(0.0, "c", "s", "m")
    assert len(tracer.records) == 1


def test_tracer_rejects_negative_cap():
    with pytest.raises(ValueError):
        Tracer(max_records=-1)
