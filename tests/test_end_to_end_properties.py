"""Property-based end-to-end invariants over the full stack.

These tests drive whole scenarios — domain, gateways, enhanced clients,
random crash schedules — and check the invariants the paper promises:

* **replica consistency**: all live replicas of a group hold identical
  state after any admissible run;
* **exactly-once**: the sum the client believes it applied equals the
  replicas' state whenever every invocation got a reply (enhanced
  clients);
* **determinism of the simulation**: identical seeds produce identical
  worlds, event for event.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FtClientLayer, Orb, ReplicationStyle, World
from repro.apps import COUNTER_INTERFACE, CounterServant

from tests.helpers import make_counter_group, make_domain, replica_counts


@settings(max_examples=8, deadline=None)
@given(st.lists(st.integers(min_value=-5, max_value=9), min_size=1,
                max_size=12),
       st.integers(0, 2**31 - 1))
def test_replicas_agree_for_any_workload_property(amounts, seed):
    world = World(seed=seed, trace=False)
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    host = world.add_host("browser")
    orb = Orb(world, host, request_timeout=None)
    layer = FtClientLayer(orb)
    stub = layer.string_to_object(domain.ior_for(group).to_string(),
                                  COUNTER_INTERFACE)
    total = 0
    for amount in amounts:
        op = "increment" if amount >= 0 else "decrement"
        world.await_promise(stub.call(op, abs(amount)), timeout=600)
        total += amount
    world.run(until=world.now + 0.5)
    counts = replica_counts(domain, group)
    assert len(counts) == 3
    assert set(counts.values()) == {total}


@settings(max_examples=6, deadline=None)
@given(st.integers(2, 3), st.integers(1, 8), st.integers(0, 2**31 - 1),
       st.data())
def test_exactly_once_despite_random_gateway_crash_property(
        gateways, operations, seed, data):
    """Crash one gateway at a random instant mid-workload: an enhanced
    client must still see every reply exactly once, and replica state
    must equal the number of applied increments."""
    world = World(seed=seed, trace=False)
    domain = make_domain(world, gateways=gateways)
    group = make_counter_group(domain)
    host = world.add_host("browser")
    orb = Orb(world, host, request_timeout=None)
    layer = FtClientLayer(orb)
    stub = layer.string_to_object(domain.ior_for(group).to_string(),
                                  COUNTER_INTERFACE)
    crash_delay = data.draw(st.floats(0.0, 0.3), label="crash_delay")
    world.scheduler.call_after(
        crash_delay,
        lambda: world.faults.crash_now(domain.gateways[0].host.name))
    results = []
    for _ in range(operations):
        results.append(world.await_promise(stub.call("increment", 1),
                                           timeout=600))
    # Every reply observed exactly once, in order.
    assert results == list(range(1, operations + 1))
    world.run(until=world.now + 1.0)
    assert set(replica_counts(domain, group).values()) == {operations}


@settings(max_examples=6, deadline=None)
@given(st.sampled_from([ReplicationStyle.ACTIVE,
                        ReplicationStyle.WARM_PASSIVE,
                        ReplicationStyle.COLD_PASSIVE]),
       st.integers(1, 10), st.integers(0, 2**31 - 1))
def test_failover_preserves_state_for_all_styles_property(style, ops, seed):
    world = World(seed=seed, trace=False)
    domain = make_domain(world, num_hosts=4)
    group = make_counter_group(domain, style=style, replicas=3,
                               min_replicas=2, checkpoint_interval=3)
    for _ in range(ops):
        world.await_promise(group.invoke("increment", 1), timeout=600)
    victim = group.info().primary(domain.coordinator_rm().live_hosts)
    world.faults.crash_now(victim)
    assert world.await_promise(group.invoke("increment", 1),
                               timeout=600) == ops + 1


def run_fingerprint(seed):
    """A fixed scenario; returns a state fingerprint of the world."""
    world = World(seed=seed, trace=False)
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    host = world.add_host("browser")
    orb = Orb(world, host, request_timeout=None)
    stub = orb.string_to_object(domain.ior_for(group).to_string(),
                                COUNTER_INTERFACE)
    for _ in range(5):
        world.await_promise(stub.call("increment", 2), timeout=600)
    world.faults.crash_now(group.info().placement[0])
    world.run(until=world.now + 1.0)
    return (
        round(world.now, 9),
        world.scheduler.events_processed,
        tuple(sorted(replica_counts(domain, group).items())),
        tuple(sorted((k, v) for k, v in domain.gateways[0].stats.items())),
        domain.transport.broadcasts,
    )


def test_simulation_is_deterministic():
    assert run_fingerprint(77) == run_fingerprint(77)


def test_different_seeds_still_converge_semantically():
    a = run_fingerprint(1)
    b = run_fingerprint(2)
    # Timing details may differ, but the semantic outcome is identical.
    assert a[2] == b[2]
