"""Interface definitions: a small Python DSL replacing OMG IDL text.

A CORBA interface is a named set of operations with typed parameters
and results.  The reproduction declares interfaces directly in Python
(DESIGN.md section 6 — no IDL compiler), e.g.::

    ACCOUNT = Interface("Account", [
        Operation("deposit", [Param("amount", TC_LONG)], TC_LONG),
        Operation("balance", [], TC_LONG),
        Operation("audit", [], TC_VOID, oneway=True),
    ])

Both the client stub and the server-side dispatch consult the same
:class:`Interface` object, so marshalling is symmetric by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import BadOperation, ConfigurationError
from ..iiop.types import TC_VOID, TypeCode


@dataclass(frozen=True)
class Param:
    """One operation parameter (in-parameters only; see DESIGN.md)."""

    name: str
    typecode: TypeCode


@dataclass(frozen=True)
class Operation:
    """One operation of an interface."""

    name: str
    params: Sequence[Param] = ()
    result: TypeCode = TC_VOID
    oneway: bool = False

    def __post_init__(self):
        if self.oneway and self.result is not TC_VOID:
            raise ConfigurationError(
                f"oneway operation {self.name!r} cannot return a value")

    @property
    def param_typecodes(self) -> List[TypeCode]:
        return [p.typecode for p in self.params]


class Interface:
    """A named collection of operations with a CORBA repository id."""

    def __init__(self, name: str, operations: Sequence[Operation],
                 repo_id: Optional[str] = None) -> None:
        self.name = name
        self.repo_id = repo_id or f"IDL:repro/{name}:1.0"
        self._operations: Dict[str, Operation] = {}
        for op in operations:
            if op.name in self._operations:
                raise ConfigurationError(
                    f"duplicate operation {op.name!r} in interface {name}")
            self._operations[op.name] = op

    @property
    def operations(self) -> Dict[str, Operation]:
        return dict(self._operations)

    def operation(self, name: str) -> Operation:
        op = self._operations.get(name)
        if op is None:
            raise BadOperation(f"{self.name} has no operation {name!r}")
        return op

    def __contains__(self, name: str) -> bool:
        return name in self._operations

    def __repr__(self) -> str:
        return f"<Interface {self.name} ops={sorted(self._operations)}>"
