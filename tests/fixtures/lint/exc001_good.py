# reprolint: module=repro.sim.fixture_exc
"""EXC001 good: broad excepts that react, narrow excepts that may not."""


class Pump:
    def __init__(self, metrics):
        self.metrics = metrics
        self.failures = 0

    def tick(self):
        try:
            self.advance()
        except Exception:
            # Reacts: the failure is counted, not swallowed.
            self.metrics.counter("pump.failures").inc()

    def tick_strict(self):
        try:
            self.advance()
        except Exception:
            raise

    def tick_recorded(self):
        try:
            self.advance()
        except Exception:
            self.failures += 1

    def advance(self):
        raise RuntimeError("boom")


def probe(fn):
    try:
        return fn()
    except (KeyError, ValueError):
        # Narrow handler: EXC001 only polices broad catches.
        pass
    return None
