"""Fault injection: scripted crashes, recoveries, and partitions.

Failure scenarios in the paper (gateway crash in section 3.4, gateway
failover in section 3.5, replica failure in section 2.2) are driven
through a :class:`FaultInjector`, which schedules fail-stop crashes and
recoveries on the shared scheduler so that tests and benchmarks can
reproduce an exact interleaving.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple, TYPE_CHECKING

from .network import Network
from .scheduler import Scheduler, Timer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.flight import FlightRecorder


class FaultInjector:
    """Schedules host crashes/recoveries and network partitions."""

    def __init__(self, scheduler: Scheduler, network: Network,
                 flight: Optional["FlightRecorder"] = None) -> None:
        self.scheduler = scheduler
        self.network = network
        self.injected: List[Tuple[float, str, str]] = []
        self._metrics = network.metrics
        self.flight = flight

    def _record(self, action: str, target: str) -> None:
        self.injected.append((self.scheduler.now, action, target))
        self._metrics.counter(f"fault.injected.{action}").inc()
        flight = self.flight
        if flight is not None and flight.enabled:
            flight.record("flight.fault", action=action, target=target)

    def crash_host(self, host_name: str, at: float) -> Timer:
        """Fail-stop ``host_name`` at absolute simulated time ``at``."""

        def do_crash() -> None:
            self._record("crash", host_name)
            self.network.host(host_name).crash()

        return self.scheduler.call_at(at, do_crash)

    def recover_host(self, host_name: str, at: float) -> Timer:
        """Recover ``host_name`` at absolute simulated time ``at``."""

        def do_recover() -> None:
            self._record("recover", host_name)
            self.network.host(host_name).recover()

        return self.scheduler.call_at(at, do_recover)

    def crash_now(self, host_name: str) -> None:
        self._record("crash", host_name)
        self.network.host(host_name).crash()

    def recover_now(self, host_name: str) -> None:
        self._record("recover", host_name)
        self.network.host(host_name).recover()

    def partition(self, side_a: Iterable[str], side_b: Iterable[str],
                  at: float, heal_at: float) -> None:
        """Partition two host sets during [at, heal_at)."""
        a: Set[str] = set(side_a)
        b: Set[str] = set(side_b)

        def install() -> None:
            self._record("partition", f"{sorted(a)}|{sorted(b)}")
            self.network.partition(a, b)

        def heal() -> None:
            self._record("heal", "")
            self.network.heal_partitions()

        self.scheduler.call_at(at, install)
        self.scheduler.call_at(heal_at, heal)
