"""repro.analysis — determinism & sim-discipline static analysis.

The reproduction's headline guarantees — byte-identical seeded runs,
no wall-clock or ambient-RNG reads on simulated paths, a complete
observability catalogue, audit-registered state — are *invariants of
the source tree*, not just of any one run.  This package enforces them
mechanically:

* :mod:`repro.analysis.lint` — the ``reprolint`` framework: an
  AST-based, repo-aware linter with a rule registry, inline
  suppressions (``# reprolint: disable=DET001``), a committed
  baseline, and text/JSON reporters.  ``tools/reprolint.py`` and
  ``python -m repro --lint`` are thin CLIs over it; a pytest gate and
  a blocking CI job keep ``src/`` clean.
* :mod:`repro.analysis.rules` — the rule pack encoding this repo's
  real invariants (DET001–DET004, SIM001, OBS001, AUD001); see
  docs/STATIC_ANALYSIS.md for the catalogue.
* :mod:`repro.analysis.race` — the dynamic companion: a scheduler
  race-detector mode that records same-sim-time event collisions and
  re-runs seeded scenarios under permuted tie-break orders, verifying
  that goldens and metrics are *invariant* to the orderings the
  simulation does not promise.
* :mod:`repro.analysis.scenarios` — the golden scenarios shared by the
  determinism tests, the golden-file gates, and the race sweep.
"""

from .lint import (Baseline, LintConfig, LintResult, LintRule, Suppression,
                   Violation, lint_paths, lint_source, registered_rules)
from .race import (CohortPermuter, PermutationReport, RaceRecorder,
                   RaceScheduler, permutation_sweep)
from .reporters import render_json_report, render_text_report

__all__ = [
    "Baseline",
    "CohortPermuter",
    "LintConfig",
    "LintResult",
    "LintRule",
    "PermutationReport",
    "RaceRecorder",
    "RaceScheduler",
    "Suppression",
    "Violation",
    "lint_paths",
    "lint_source",
    "permutation_sweep",
    "registered_rules",
    "render_json_report",
    "render_text_report",
]
