"""Domain behaviour under network partitions.

The paper handles partitionable operation in a companion paper (its
reference [6]); this reproduction implements primary-partition-style
behaviour per side and documents the semantics: each side of a
partition reforms its own ring and keeps serving the groups whose
replicas it holds.  These tests pin down that behaviour for the cases
the gateway story needs.
"""

import pytest

from repro import ReplicationStyle, World

from tests.helpers import external_client, make_counter_group, make_domain


def test_partition_isolating_non_replica_host_is_harmless(world):
    domain = make_domain(world, num_hosts=4)
    group = make_counter_group(domain, replicas=3)
    domain.await_ready(group)
    spare = [h for h in domain.replica_host_names
             if h not in group.info().placement][0]
    others = [h.name for h in domain.hosts if h.name != spare]
    world.network.partition({spare}, set(others))
    world.run(until=world.now + 1.0)
    assert world.await_promise(group.invoke("increment", 1), timeout=600) == 1


def test_majority_side_keeps_serving_after_partition(world):
    domain = make_domain(world, num_hosts=4, gateways=1)
    group = make_counter_group(domain, replicas=3, min_replicas=1)
    domain.await_ready(group)
    world.await_promise(group.invoke("increment", 1))
    # Cut off ONE replica host; gateway and two replicas stay together.
    victim = group.info().placement[2]
    others = {h.name for h in domain.hosts if h.name != victim}
    world.network.partition({victim}, others)
    world.run(until=world.now + 1.0)
    _, stub, _ = external_client(world, domain, group)
    assert world.await_promise(stub.call("increment", 1), timeout=600) == 2


def test_heal_and_rejoin_restores_single_ring(world):
    domain = make_domain(world, num_hosts=4)
    group = make_counter_group(domain, replicas=3, min_replicas=1)
    domain.await_ready(group)
    world.await_promise(group.invoke("increment", 1))
    victim = group.info().placement[2]
    others = {h.name for h in domain.hosts if h.name != victim}
    world.network.partition({victim}, others)
    world.run(until=world.now + 1.0)
    world.network.heal_partitions()
    # Nudge the isolated member to rejoin (its next token loss or an
    # explicit join does this; we force promptness for the test).
    domain.members[victim]._enter_gather("test heal")
    world.scheduler.run_until(
        lambda: all(len(m.members) == 4 for m in domain.members.values()
                    if m.alive), timeout=60.0)
    # The reunited domain serves invocations again.
    assert world.await_promise(group.invoke("increment", 1),
                               timeout=600) == 2


def test_gateway_cut_off_from_domain_fails_client_cleanly(world):
    """A partition between the gateway and the replicas: the client's
    request cannot reach the domain; with a single gateway the client
    observes a timeout/failure rather than silent corruption."""
    from repro.errors import CommFailure, NoResponse
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    domain.await_ready(group)
    gateway_host = domain.gateways[0].host.name
    replica_side = {h.name for h in domain.hosts if h.name != gateway_host}
    _, stub, _ = external_client(world, domain, group)
    world.await_promise(stub.call("increment", 1))
    world.network.partition({gateway_host}, replica_side)
    world.run(until=world.now + 1.0)
    promise = stub.call("increment", 1, timeout=5.0)
    with pytest.raises((NoResponse, CommFailure)):
        world.await_promise(promise, timeout=600)
    # State inside the domain never moved.
    world.network.heal_partitions()
    world.run(until=world.now + 1.0)
    from tests.helpers import replica_counts
    assert set(replica_counts(domain, group).values()) == {1}
