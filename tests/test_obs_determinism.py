"""Determinism and invariant tests for the metrics layer.

Two properties anchor the observability work:

* **byte-identical reruns** — the same seeded scenario, run in two
  fresh Worlds, produces byte-identical simulated-time metrics JSON
  (the wall-clock metrics are excluded from the canonical snapshot
  precisely so this holds);
* **cross-metric invariants** — counters recorded at different layers
  must agree with each other and with the fault injector's script, for
  every cell of a crash-timing grid.
"""

from __future__ import annotations

import pytest

from repro import FtClientLayer, Orb, World
from repro.analysis.scenarios import run_failover_scenario
from repro.apps import COUNTER_INTERFACE
from repro.obs import parse_json

from tests.helpers import make_counter_group, make_domain


def test_failover_metrics_byte_identical_across_runs():
    json_a = run_failover_scenario().metrics_json()
    json_b = run_failover_scenario().metrics_json()
    assert json_a == json_b
    # And the snapshot is non-trivial: the headline series moved.
    metrics = parse_json(json_a)
    assert metrics["gateway.req.latency"]["count"] >= 1
    assert metrics["fault.recovery.duration"]["count"] >= 1
    assert metrics["host.crashes"]["value"] == 1


def test_different_seeds_still_share_metric_names():
    """Seeds change values, never the set of series a scenario emits."""
    names_a = sorted(parse_json(run_failover_scenario(seed=350).metrics_json()))
    names_b = sorted(parse_json(run_failover_scenario(seed=99).metrics_json()))
    assert names_a == names_b


def test_wall_metrics_never_in_canonical_json(world):
    world.metrics.counter("sim.only").inc()
    world.metrics.histogram("wall.timer", wall=True).observe(0.1)
    metrics = parse_json(world.metrics_json())
    assert "sim.only" in metrics
    assert "wall.timer" not in metrics
    assert "wall.timer" in parse_json(world.metrics_json(include_wall=True))


# ----------------------------------------------------------------------
# Invariants under a fault sweep
# ----------------------------------------------------------------------

OPERATIONS = 4
GRID = [0.01, 0.09, 0.5]


def run_chaos(victim_index, crash_delay, seed=5):
    world = World(seed=seed, trace=False)
    domain = make_domain(world, num_hosts=4, gateways=2)
    group = make_counter_group(domain, replicas=3, min_replicas=2)
    host = world.add_host("browser")
    orb = Orb(world, host, request_timeout=None)
    layer = FtClientLayer(orb, client_uid="chaos")
    stub = layer.string_to_object(domain.ior_for(group).to_string(),
                                  COUNTER_INTERFACE)
    victims = [h.name for h in domain.hosts]
    victim = victims[victim_index % len(victims)]
    world.scheduler.call_after(crash_delay,
                               lambda: world.faults.crash_now(victim))
    for _ in range(OPERATIONS):
        world.await_promise(stub.call("increment", 1), timeout=600)
    world.run(until=world.now + 2.0)
    return world, domain


@pytest.mark.parametrize("victim_index", range(0, 6, 2))
@pytest.mark.parametrize("crash_delay", GRID)
def test_metric_invariants_hold_under_faults(victim_index, crash_delay):
    world, domain = run_chaos(victim_index, crash_delay)
    m = world.metrics

    # Gateway response accounting partitions exactly: every response a
    # gateway received was suppressed, unexpected, left pending a vote,
    # delivered, or unroutable — nothing double-counted, nothing lost.
    received = m.value("gateway.resp.received")
    partition = (m.value("gateway.dup.suppressed")
                 + m.value("gateway.resp.unexpected")
                 + m.value("gateway.resp.vote_pending")
                 + m.value("gateway.resp.delivered")
                 + m.value("gateway.resp.unroutable"))
    assert received == partition

    # Every injected crash is visible end to end: the injector's script,
    # the host-layer counter, and one recovery-duration observation per
    # crash (recorded at the ring reformation that excluded the victim).
    injected_crashes = sum(1 for _, action, _ in world.faults.injected
                           if action == "crash")
    assert injected_crashes == 1
    assert m.value("fault.injected.crash") == injected_crashes
    assert m.value("host.crashes") == injected_crashes
    recovery = m.histogram("fault.recovery.duration")
    assert recovery.count == injected_crashes
    assert recovery.min > 0

    # The client completed every operation, so each request the gateways
    # accepted was forwarded at most once more than received (takeover
    # re-forwards), and latency was observed for each delivered reply.
    latency = m.histogram("gateway.req.latency")
    assert latency.count >= OPERATIONS
    assert m.value("gateway.req.received") >= OPERATIONS

    # Totem bookkeeping agrees with the per-member stats dicts: the
    # registry aggregates exactly what the members counted locally.
    members = list(domain.members.values())
    assert m.value("totem.retransmit.count") == sum(
        mem.stats["retransmits"] for mem in members)
    assert m.value("totem.msg.sent") == sum(
        mem.stats["sent"] for mem in members)
    # Agreed delivery: each broadcast is delivered at most once per
    # member, so domain-wide deliveries never exceed sends x members.
    assert m.value("totem.msg.delivered") >= m.value("totem.msg.sent")


def test_chaos_runs_are_individually_deterministic():
    a = run_chaos(0, 0.09)[0].metrics_json()
    b = run_chaos(0, 0.09)[0].metrics_json()
    assert a == b
