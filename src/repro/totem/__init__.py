"""Totem-style reliable totally-ordered multicast (paper reference [4]).

Eternal conveys all intra-domain traffic over a group communication
system providing reliable delivery and a single total order; the
paper's identifiers (Figure 6) are built from its message sequence
numbers.  This package implements a faithful simplification of Totem's
single-ring protocol: rotating token, token-loss detection, membership
gather/commit, retransmission, and aru-based stability.
"""

from .member import TotemConfig, TotemMember
from .messages import (
    CommitMessage,
    INITIAL_RING,
    JoinMessage,
    RegularMessage,
    RingId,
    Token,
)
from .transport import TotemTransport

__all__ = [
    "CommitMessage",
    "INITIAL_RING",
    "JoinMessage",
    "RegularMessage",
    "RingId",
    "Token",
    "TotemConfig",
    "TotemMember",
    "TotemTransport",
]
