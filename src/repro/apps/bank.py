"""A replicated bank: accounts plus a transfer service with nested calls.

The ``TransferAgent`` servant demonstrates the paper's Figure 6
scenario: one parent invocation (``transfer``) performing several child
operations (``withdraw``, ``deposit``, ``record``) on other replicated
groups, with identifiers derived from the parent's delivery timestamp.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import InvocationFailure
from ..iiop.types import TC_LONG, TC_STRING, TC_VOID
from ..orb.idl import Interface, Operation, Param
from ..orb.servant import NestedCall, Servant

ACCOUNT_INTERFACE = Interface("Account", [
    Operation("open", [Param("owner", TC_STRING)], TC_VOID),
    Operation("deposit", [Param("owner", TC_STRING),
                          Param("amount", TC_LONG)], TC_LONG),
    Operation("withdraw", [Param("owner", TC_STRING),
                           Param("amount", TC_LONG)], TC_LONG),
    Operation("balance", [Param("owner", TC_STRING)], TC_LONG),
])

LEDGER_INTERFACE = Interface("Ledger", [
    Operation("record", [Param("entry", TC_STRING)], TC_LONG),
    Operation("entries", [], TC_LONG),
])

TRANSFER_INTERFACE = Interface("TransferAgent", [
    Operation("transfer", [Param("src", TC_STRING), Param("dst", TC_STRING),
                           Param("amount", TC_LONG)], TC_LONG),
    Operation("transfers_done", [], TC_LONG),
])


class AccountServant(Servant):
    """Multi-owner account book (one group holds many accounts)."""

    interface = ACCOUNT_INTERFACE

    def __init__(self) -> None:
        self.balances: Dict[str, int] = {}

    def open(self, owner: str) -> None:
        self.balances.setdefault(owner, 0)

    def deposit(self, owner: str, amount: int) -> int:
        if amount < 0:
            raise InvocationFailure("IDL:repro/BadAmount:1.0", str(amount))
        self.balances[owner] = self.balances.get(owner, 0) + amount
        return self.balances[owner]

    def withdraw(self, owner: str, amount: int) -> int:
        balance = self.balances.get(owner, 0)
        if amount > balance:
            raise InvocationFailure(
                "IDL:repro/InsufficientFunds:1.0",
                f"{owner} has {balance}, needs {amount}")
        self.balances[owner] = balance - amount
        return self.balances[owner]

    def balance(self, owner: str) -> int:
        return self.balances.get(owner, 0)


class LedgerServant(Servant):
    """Append-only audit ledger."""

    interface = LEDGER_INTERFACE

    def __init__(self) -> None:
        self.log: List[str] = []

    def record(self, entry: str) -> int:
        self.log.append(entry)
        return len(self.log)

    def entries(self) -> int:
        return len(self.log)


class TransferAgentServant(Servant):
    """Orchestrates transfers via nested invocations on other groups.

    ``accounts_group`` and ``ledger_group`` are the *names* of the
    target groups within the same fault tolerance domain.
    """

    interface = TRANSFER_INTERFACE

    def __init__(self, accounts_group: str = "Accounts",
                 ledger_group: str = "Ledger") -> None:
        self.accounts_group = accounts_group
        self.ledger_group = ledger_group
        self.completed = 0

    def transfer(self, src: str, dst: str, amount: int):
        # Child operation 1: withdraw from the source account.
        yield NestedCall(self.accounts_group, "withdraw", [src, amount])
        # Child operation 2: deposit into the destination account.
        new_balance = yield NestedCall(self.accounts_group, "deposit",
                                       [dst, amount])
        # Child operation 3: audit trail.
        yield NestedCall(self.ledger_group, "record",
                         [f"{src}->{dst}:{amount}"])
        self.completed += 1
        return new_balance

    def transfers_done(self) -> int:
        return self.completed
