"""Unit tests for the interprocedural layer: call-graph resolution,
taint propagation, and the DET101/DET102/SIM101 rules.

Two styles: in-memory multi-module projects built straight from source
strings (resolution forms, cycles, aliasing bounds), and the committed
directory fixtures under ``tests/fixtures/lint/taint_*`` run through
the full ``lint_paths`` pipeline (directive-scoped modules, suppression
routing, violation anchoring).
"""

from __future__ import annotations

import ast
import pathlib
import textwrap

from repro.analysis.callgraph import (CallGraph, TransitiveWallClockRule,
                                      build_callgraph, render_graph_json)
from repro.analysis.lint import (LintContext, ProjectContext, default_config,
                                 lint_paths, parse_suppressions)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "lint"
CONFIG = default_config(REPO_ROOT)


def project_of(*files):
    """Build a ProjectContext from (module, path, source) triples."""
    contexts, suppressions = [], {}
    for module, path, source in files:
        source = textwrap.dedent(source)
        contexts.append(LintContext(
            path=path, module=module, source=source,
            tree=ast.parse(source), config=CONFIG))
        suppressions[path] = parse_suppressions(path, source.splitlines())
    return ProjectContext(contexts, CONFIG, suppressions=suppressions)


def edge_pairs(graph):
    return {(e.caller, e.callee) for e in graph.edges}


# ----------------------------------------------------------------------
# Resolution forms
# ----------------------------------------------------------------------


def test_resolves_local_calls_methods_and_attr_bindings():
    graph = CallGraph.build(project_of(("m", "m.py", """\
        def leaf():
            return 1


        def caller():
            return leaf()


        class Widget:
            def __init__(self):
                self.helper = Gadget()

            def run(self):
                self.step()
                self.helper.spin()

            def step(self):
                f = leaf
                return f()


        class Gadget:
            def __init__(self):
                self.count = 0

            def spin(self):
                g = Widget()
                g.run()
        """)))
    pairs = edge_pairs(graph)
    assert ("m.caller", "m.leaf") in pairs
    assert ("m.Widget.__init__", "m.Gadget.__init__") in pairs
    assert ("m.Widget.run", "m.Widget.step") in pairs
    # self.helper = Gadget() binds self.helper.spin() to Gadget.spin.
    assert ("m.Widget.run", "m.Gadget.spin") in pairs
    # Bounded local aliasing: f = leaf; f().
    assert ("m.Widget.step", "m.leaf") in pairs
    # g = Widget() binds both the constructor and g.run().
    assert ("m.Gadget.spin", "m.Widget.__init__") in pairs
    assert ("m.Gadget.spin", "m.Widget.run") in pairs


def test_resolves_imports_inheritance_and_cross_module_taint():
    project = project_of(
        ("lib.base", "lib/base.py", """\
            import time


            class Base:
                def ding(self):
                    return time.time()


            def free_fn():
                return 2
            """),
        ("app.user", "app/user.py", """\
            import lib.base as lb
            from lib.base import Base


            class Child(Base):
                def go(self):
                    return self.ding()


            def use():
                return lb.free_fn()
            """))
    graph = CallGraph.build(project)
    pairs = edge_pairs(graph)
    # Inherited method through an imported base class.
    assert ("app.user.Child.go", "lib.base.Base.ding") in pairs
    # ``import x as y`` module alias.
    assert ("app.user.use", "lib.base.free_fn") in pairs
    taint = graph.taint("wall")
    assert taint["lib.base.Base.ding"].distance == 0
    assert taint["app.user.Child.go"].distance == 1
    chain = graph.chain("wall", "app.user.Child.go")
    assert chain.startswith("app.user.Child.go -> lib.base.Base.ding")
    assert "time.time" in chain


def test_follows_package_reexports():
    project = project_of(
        ("pkg", "pkg/__init__.py", """\
            from .impl import core_fn
            """),
        ("pkg.impl", "pkg/impl.py", """\
            def core_fn():
                return 1
            """),
        ("app", "app.py", """\
            from pkg import core_fn


            def use():
                return core_fn()
            """))
    graph = CallGraph.build(project)
    assert ("app.use", "pkg.impl.core_fn") in edge_pairs(graph)
    assert graph.callers("pkg.impl.core_fn") == ["app.use"]


def test_call_cycles_terminate_and_taint_both_sides():
    graph = CallGraph.build(project_of(("m", "m.py", """\
        import time


        def ping():
            return pong()


        def pong():
            return ping() or time.time()
        """)))
    taint = graph.taint("wall")
    assert taint["m.pong"].distance == 0
    assert taint["m.ping"].distance == 1
    assert graph.chain("wall", "m.ping").startswith("m.ping -> m.pong")


def test_suppressed_sink_is_a_sanctioned_boundary():
    project = project_of(("m", "m.py", """\
        import time


        def boundary():
            # reprolint: disable=SIM001 -- fixture: sanctioned host wait
            time.sleep(0.1)


        def caller():
            boundary()
        """))
    graph = CallGraph.build(project)
    assert graph.taint("blocking") == {}
    # The sink itself is still inventoried for the dump, marked as such.
    assert [s.suppressed for s in graph.sinks] == [True]


def test_direct_sink_frames_are_left_to_the_base_rule():
    """DET101 must not double-report a frame DET001 already flags."""
    project = project_of(
        ("fixturelib.glue", "glue.py", """\
            import time


            def stamp():
                return time.time()
            """),
        ("repro.sim.fake", "fake.py", """\
            import time

            from fixturelib.glue import stamp


            def direct_and_indirect():
                time.time()
                return stamp()
            """))
    violations = list(TransitiveWallClockRule().check_project(project))
    assert violations == []


def test_graph_dump_schema():
    project = project_of(("m", "m.py", """\
        import time


        def stamp():
            return time.time()


        def caller():
            return stamp()
        """))
    dump = render_graph_json(project)
    assert dump["schema"] == 1
    assert {fn["qname"] for fn in dump["functions"]} == {"m.stamp",
                                                         "m.caller"}
    assert dump["edges"] == [
        {"caller": "m.caller", "callee": "m.stamp", "line": 9, "col": 11}]
    assert dump["sinks"][0]["detail"] == "time.time"
    assert dump["sinks"][0]["suppressed"] is False
    wall = dump["tainted"]["wall"]
    assert wall["m.caller"]["distance"] == 1
    assert "time.time" in wall["m.caller"]["chain"]
    # build_callgraph memoises on the project.
    assert build_callgraph(project) is build_callgraph(project)


# ----------------------------------------------------------------------
# The directory fixtures, through the full pipeline
# ----------------------------------------------------------------------


def lint_dir(name):
    return lint_paths([FIXTURES / name], config=CONFIG, root=REPO_ROOT)


def by_code(result):
    table = {}
    for file_result in result.files:
        for violation in file_result.violations:
            table.setdefault(violation.code, []).append(violation)
    return table


def test_taint_bad_fixture_fires_all_three_families():
    table = by_code(lint_dir("taint_bad"))
    for code, entry, helper in [
            ("DET101", "record_event", "tagged_stamp"),
            ("DET102", "pick_backoff", "jitter"),
            ("SIM101", "settle", "nap")]:
        found = table.get(code, [])
        assert len(found) == 1, (code, found)
        violation = found[0]
        assert violation.path.endswith("taint_bad/entry.py")
        assert entry in violation.message
        assert helper in violation.message
    # The two-hop wall chain names every frame down to the sink.
    assert ("tagged_stamp -> fixturelib.hostglue.stamp -> time.time"
            in table["DET101"][0].message)
    # The helpers file still gets the per-file base findings.
    assert all(v.path.endswith("helpers.py")
               for v in table.get("DET001", []) + table.get("DET002", []))
    assert table["DET001"] and table["DET002"]


def test_taint_good_fixture_is_clean():
    result = lint_dir("taint_good")
    assert result.violations == []
    assert result.parse_errors == []
    # The sanctioned-boundary suppression is exercised, not stale.
    assert result.unused_suppressions == []
    assert any(s.used for f in result.files for s in f.suppressions)
