"""Fault tolerance properties, after the FT-CORBA standard's vocabulary.

The paper's Replication Manager "replicates each application object,
according to user-specified fault tolerance properties (including the
choice of replication style ...)".  The property names below follow the
OMG FT-CORBA submission the authors co-wrote (orbos/98-04-08):
ReplicationStyle, InitialNumberReplicas, MinimumNumberReplicas,
CheckpointInterval, plus the consistency/membership styles that Eternal
fixes (infrastructure-controlled consistency and membership).

:class:`FaultToleranceProperties` is the validated value object used at
group-creation time; it converts to and from the flat string dictionary
a CORBA property sequence would carry, so the replicated manager can
accept property sets over the wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigurationError
from .styles import ReplicationStyle

# The styles Eternal fixes for every group (paper section 2.2): the
# infrastructure — not the application — keeps replicas consistent and
# controls membership.
CONSISTENCY_STYLE = "CONS_INF_CTRL"
MEMBERSHIP_STYLE = "MEMB_INF_CTRL"


@dataclass(frozen=True)
class FaultToleranceProperties:
    """User-specifiable fault tolerance properties of one object group."""

    replication_style: ReplicationStyle = ReplicationStyle.ACTIVE
    initial_number_replicas: int = 3
    minimum_number_replicas: int = 2
    checkpoint_interval: int = 10
    fault_monitoring_interval: float = 0.5

    def __post_init__(self) -> None:
        if self.initial_number_replicas < 1:
            raise ConfigurationError("InitialNumberReplicas must be >= 1")
        if self.minimum_number_replicas < 1:
            raise ConfigurationError("MinimumNumberReplicas must be >= 1")
        if self.minimum_number_replicas > self.initial_number_replicas:
            raise ConfigurationError(
                "MinimumNumberReplicas cannot exceed InitialNumberReplicas")
        if self.checkpoint_interval < 1:
            raise ConfigurationError("CheckpointInterval must be >= 1")
        if self.fault_monitoring_interval <= 0:
            raise ConfigurationError("FaultMonitoringInterval must be > 0")
        if self.replication_style is ReplicationStyle.ACTIVE_WITH_VOTING \
                and self.initial_number_replicas < 3:
            raise ConfigurationError(
                "ACTIVE_WITH_VOTING needs >= 3 replicas for a meaningful "
                "majority")
        if self.replication_style is ReplicationStyle.LEADER_FOLLOWER \
                and self.initial_number_replicas < 2:
            raise ConfigurationError(
                "LEADER_FOLLOWER needs >= 2 replicas (a leader with no "
                "followers is just a primary)")

    # ------------------------------------------------------------------
    # Wire form: the flat string properties of a CORBA property sequence
    # ------------------------------------------------------------------

    def to_properties(self) -> Dict[str, str]:
        return {
            "org.omg.ft.ReplicationStyle": self.replication_style.value,
            "org.omg.ft.InitialNumberReplicas":
                str(self.initial_number_replicas),
            "org.omg.ft.MinimumNumberReplicas":
                str(self.minimum_number_replicas),
            "org.omg.ft.CheckpointInterval": str(self.checkpoint_interval),
            "org.omg.ft.FaultMonitoringInterval":
                str(self.fault_monitoring_interval),
            "org.omg.ft.ConsistencyStyle": CONSISTENCY_STYLE,
            "org.omg.ft.MembershipStyle": MEMBERSHIP_STYLE,
        }

    @staticmethod
    def from_properties(properties: Dict[str, str]
                        ) -> "FaultToleranceProperties":
        """Parse a property dictionary; unknown keys are rejected so
        configuration typos fail loudly."""
        known = {
            "org.omg.ft.ReplicationStyle",
            "org.omg.ft.InitialNumberReplicas",
            "org.omg.ft.MinimumNumberReplicas",
            "org.omg.ft.CheckpointInterval",
            "org.omg.ft.FaultMonitoringInterval",
            "org.omg.ft.ConsistencyStyle",
            "org.omg.ft.MembershipStyle",
        }
        unknown = set(properties) - known
        if unknown:
            raise ConfigurationError(
                f"unknown fault tolerance properties: {sorted(unknown)}")
        if properties.get("org.omg.ft.ConsistencyStyle",
                          CONSISTENCY_STYLE) != CONSISTENCY_STYLE:
            raise ConfigurationError(
                "Eternal provides infrastructure-controlled consistency only")
        if properties.get("org.omg.ft.MembershipStyle",
                          MEMBERSHIP_STYLE) != MEMBERSHIP_STYLE:
            raise ConfigurationError(
                "Eternal provides infrastructure-controlled membership only")
        defaults = FaultToleranceProperties()
        try:
            style = ReplicationStyle(properties.get(
                "org.omg.ft.ReplicationStyle",
                defaults.replication_style.value))
        except ValueError as exc:
            raise ConfigurationError(f"bad ReplicationStyle: {exc}") from exc

        def integer(key: str, fallback: int) -> int:
            raw = properties.get(key)
            if raw is None:
                return fallback
            try:
                return int(raw)
            except ValueError as exc:
                raise ConfigurationError(f"bad {key}: {raw!r}") from exc

        raw_interval = properties.get("org.omg.ft.FaultMonitoringInterval")
        try:
            monitoring = (float(raw_interval) if raw_interval is not None
                          else defaults.fault_monitoring_interval)
        except ValueError as exc:
            raise ConfigurationError(
                f"bad FaultMonitoringInterval: {raw_interval!r}") from exc
        return FaultToleranceProperties(
            replication_style=style,
            initial_number_replicas=integer(
                "org.omg.ft.InitialNumberReplicas",
                defaults.initial_number_replicas),
            minimum_number_replicas=integer(
                "org.omg.ft.MinimumNumberReplicas",
                defaults.minimum_number_replicas),
            checkpoint_interval=integer(
                "org.omg.ft.CheckpointInterval",
                defaults.checkpoint_interval),
            fault_monitoring_interval=monitoring,
        )
