"""Tests for the FaultToleranceDomain public API surface."""

import pytest

from repro import ReplicationStyle, World
from repro.apps import COUNTER_INTERFACE, CounterServant
from repro.errors import ConfigurationError, TransientError

from tests.helpers import make_counter_group, make_domain


def test_resolve_by_handle_name_and_id(world):
    domain = make_domain(world)
    group = make_counter_group(domain)
    domain.await_ready(group)
    assert domain.resolve(group) is group
    assert domain.resolve("Counter").group_id == group.group_id
    assert domain.resolve(group.group_id).group_id == group.group_id


def test_resolve_unknown_group_raises(world):
    domain = make_domain(world)
    with pytest.raises(ConfigurationError):
        domain.resolve("Ghost")
    with pytest.raises(ConfigurationError):
        domain.resolve(424242)


def test_create_group_rejects_oversized_replication(world):
    domain = make_domain(world, num_hosts=3)
    with pytest.raises(ConfigurationError):
        domain.create_group("Big", COUNTER_INTERFACE, CounterServant,
                            num_replicas=7)


def test_explicit_placement_is_honoured(world):
    domain = make_domain(world, num_hosts=4)
    group = domain.create_group("Placed", COUNTER_INTERFACE, CounterServant,
                                placement=["dom-h3", "dom-h1"])
    domain.await_ready(group)
    assert group.info().placement == ("dom-h3", "dom-h1")
    assert world.await_promise(group.invoke("increment", 1)) == 1


def test_group_handles_have_useful_repr(world):
    domain = make_domain(world)
    group = make_counter_group(domain)
    assert "Counter" in repr(group)
    assert str(group.group_id) in repr(group)


def test_is_ready_transitions(world):
    domain = make_domain(world)
    group = make_counter_group(domain)
    domain.await_ready(group)
    assert group.is_ready()
    world.faults.crash_now(group.info().placement[0])
    world.run(until=world.now + 0.5)
    # Pruned placement: remaining replicas are ready -> still "ready".
    assert group.is_ready()


def test_invoke_on_never_ready_group_times_out(world):
    domain = make_domain(world, num_hosts=3)

    class Broken(CounterServant):
        pass

    group = domain.create_group("Broken", COUNTER_INTERFACE, Broken,
                                placement=["dom-h0"])
    world.faults.crash_now("dom-h0")
    world.run(until=world.now + 0.5)
    promise = domain.invoke(group, "value", [], settle_timeout=1.0)
    with pytest.raises(TransientError):
        world.await_promise(promise, timeout=60)


def test_coordinator_moves_when_first_host_dies(world):
    domain = make_domain(world, num_hosts=3)
    first = domain.coordinator_rm()
    world.faults.crash_now(first.host.name)
    second = domain.coordinator_rm()
    assert second is not first
    assert second.alive


def test_no_live_host_raises(world):
    domain = make_domain(world, num_hosts=2)
    for host in list(domain.hosts):
        world.faults.crash_now(host.name)
    with pytest.raises(ConfigurationError):
        domain.coordinator_rm()


def test_two_domains_share_one_world_without_interference(world):
    a = make_domain(world, name="alpha")
    b = make_domain(world, name="beta")
    group_a = make_counter_group(a)
    group_b = make_counter_group(b)
    assert world.await_promise(group_a.invoke("increment", 1)) == 1
    assert world.await_promise(group_b.invoke("increment", 5)) == 5
    # Group ids may collide across domains; object keys must not.
    from repro.eternal import make_object_key
    assert make_object_key("alpha", group_a.group_id) != \
        make_object_key("beta", group_b.group_id)


def test_live_host_names_tracks_crashes(world):
    domain = make_domain(world, num_hosts=3)
    assert len(domain.live_host_names()) == 3
    world.faults.crash_now("dom-h2")
    assert "dom-h2" not in domain.live_host_names()
