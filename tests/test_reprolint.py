"""The reprolint gate: ``src/`` stays clean, the baseline stays empty.

This is the pytest mirror of the blocking CI job and of
``tools/reprolint.py``'s exit status: no violations, no parse errors,
no stale baseline entries, no unused suppressions, and every remaining
suppression inline *and* justified.
"""

from __future__ import annotations

import json
import pathlib

from repro.analysis.lint import Baseline, default_config, lint_paths
from repro.analysis.reporters import json_report, regenerate_baseline

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
BASELINE_PATH = REPO_ROOT / "tools" / "reprolint_baseline.json"


def run_lint():
    return lint_paths([SRC], config=default_config(REPO_ROOT),
                      baseline=Baseline.load(BASELINE_PATH),
                      root=REPO_ROOT)


def test_src_is_lint_clean():
    result = run_lint()
    assert result.parse_errors == []
    assert result.violations == [], "\n".join(
        v.describe() for v in result.violations)
    assert result.unused_suppressions == [], "\n".join(
        f"{s.path}:{s.line}" for s in result.unused_suppressions)
    assert result.unjustified_suppressions == [], "\n".join(
        f"{s.path}:{s.line}" for s in result.unjustified_suppressions)
    assert result.stale_baseline == []


def test_committed_baseline_is_empty():
    """The acceptance bar for this repo: nothing hides in the baseline;
    every accepted exception is an inline, justified suppression."""
    data = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    assert data == {"schema": 1, "fingerprints": []}


def test_baseline_regeneration_reproduces_the_committed_file():
    """--write-baseline over a clean tree must write exactly the
    committed (empty) baseline — fingerprints are deterministic."""
    result = run_lint()
    regenerated = regenerate_baseline(result)
    assert json.loads(regenerated.to_json()) == json.loads(
        BASELINE_PATH.read_text(encoding="utf-8"))


def test_json_report_accounts_for_every_suppression():
    """The machine report must carry each justified suppression with
    the violation it hides, so 'suppression-first cleanliness' is
    auditable from the CI artifact alone."""
    report = json_report(run_lint())
    assert report["ok"] is True
    assert report["violations"] == []
    assert report["schema"] == 1
    assert report["files_scanned"] > 50
    suppressions = report["suppressions"]
    assert suppressions, "the repo documents its known exceptions inline"
    for entry in suppressions:
        assert entry["justification"], entry
        assert entry["suppresses"]["code"] in entry["codes"]
    # The known exception classes, and only those, are suppressed:
    # determinism boundaries (DET001/DET004), audited-by-design
    # collections (AUD001), client-side / header-only GIOP codecs
    # (FLOW002/FLOW003), and the one sanctioned swallow (EXC001).
    codes = {code for entry in suppressions for code in entry["codes"]}
    assert codes <= {"DET001", "DET004", "AUD001",
                     "FLOW002", "FLOW003", "EXC001"}
