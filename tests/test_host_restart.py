"""Tests: processor recovery and software restart within a domain."""

import pytest

from repro import ReplicationStyle, World
from repro.errors import ConfigurationError

from tests.helpers import make_counter_group, make_domain, replica_counts


def test_restarted_host_rejoins_ring_and_syncs(world):
    domain = make_domain(world, num_hosts=4)
    group = make_counter_group(domain, replicas=3, min_replicas=3)
    world.await_promise(group.invoke("increment", 5))
    victim = group.info().placement[0]
    world.faults.crash_now(victim)
    world.run(until=world.now + 2.0)  # resource manager replaces elsewhere
    world.faults.recover_now(victim)
    rm = domain.restart_host(victim)
    domain.await_stable()
    assert rm.synced
    assert rm.registry.get(group.group_id) is not None
    # The ring includes the restarted member again.
    assert victim in domain.coordinator_rm().live_hosts


def test_restarted_host_can_host_replacement_replicas(world):
    domain = make_domain(world, num_hosts=3)
    group = make_counter_group(domain, replicas=3, min_replicas=3)
    world.await_promise(group.invoke("increment", 7))
    victim = group.info().placement[1]
    world.faults.crash_now(victim)
    world.run(until=world.now + 1.0)
    # Only 2 hosts remain: the group is stuck below its minimum.
    assert len(group.info().placement) == 2
    world.faults.recover_now(victim)
    domain.restart_host(victim)
    domain.await_stable()
    world.run(until=world.now + 2.0)
    # The resource manager placed a replica back on the restarted host
    # and state transfer rebuilt its state (not a fresh counter).
    info = group.info()
    assert victim in info.placement
    record = domain.rms[victim].replicas[group.group_id]
    assert record.ready
    assert record.servant.count == 7


def test_restart_requires_recovered_host(world):
    domain = make_domain(world, num_hosts=3)
    world.faults.crash_now("dom-h1")
    with pytest.raises(ConfigurationError):
        domain.restart_host("dom-h1")


def test_restart_of_running_host_rejected(world):
    domain = make_domain(world, num_hosts=3)
    with pytest.raises(ConfigurationError):
        domain.restart_host("dom-h0")


def test_restart_of_gateway_host_rejected(world):
    domain = make_domain(world, gateways=1)
    gateway_host = domain.gateways[0].host.name
    world.faults.crash_now(gateway_host)
    world.faults.recover_now(gateway_host)
    with pytest.raises(ConfigurationError):
        domain.restart_host(gateway_host)


def test_full_cycle_crash_recover_invoke(world):
    domain = make_domain(world, num_hosts=4)
    group = make_counter_group(domain, replicas=3, min_replicas=2)
    world.await_promise(group.invoke("increment", 1))
    victim = group.info().placement[0]
    world.faults.crash_now(victim)
    assert world.await_promise(group.invoke("increment", 1)) == 2
    world.faults.recover_now(victim)
    domain.restart_host(victim)
    domain.await_stable()
    assert world.await_promise(group.invoke("increment", 1)) == 3
    world.run(until=world.now + 2.0)
    assert set(replica_counts(domain, group).values()) == {3}
