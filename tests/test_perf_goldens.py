"""Golden-file determinism gate for the hot-path overhaul.

The committed files under ``tests/golden/`` were captured from the
pre-optimisation implementation.  Every perf change to the scheduler,
network, Totem, or wire layer must keep seeded runs *byte-for-byte*
identical to these artefacts — same delivery order, same final replica
states, same metrics JSON — except for the counters the overhaul
itself introduced, which did not exist in the seed and are filtered
out of the comparison by name.
"""

from __future__ import annotations

import json
import pathlib

from repro.analysis.scenarios import (run_chaos_scenario,
                                      run_failover_scenario)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

# Counters added after the goldens were captured (hot-path overhaul,
# then the state-lifecycle hardening): absent from the goldens,
# excluded from byte-for-byte comparison.  Everything else must match.
NEW_COUNTERS = {
    "sched.timers.rescheduled",
    "sched.queue.compactions",
    "sched.post.batched",
    "totem.broadcast.batched_deliveries",
    "giop.bytes.zero_copy",
    # State-lifecycle hardening (gateway retention layer).
    "gateway.req.cancelled",
    "gateway.reap.cancelled",
    "gateway.oneway.completed",
    "gateway.reap.oneway",
    "gateway.clients.gone_deferred",
}

# Causal tracing (repro.obs.tracing): created lazily on the first span,
# so they appear only in runs with tracing enabled — never in the
# untraced golden scenarios (that absence IS the zero-cost contract).
TRACE_COUNTERS = {
    "trace.spans.started",
    "trace.spans.closed",
    "trace.traces.started",
}
NEW_COUNTERS |= TRACE_COUNTERS


def _filter_new_counters(doc):
    data = json.loads(doc) if isinstance(doc, str) else dict(doc)
    data = dict(data)
    data["metrics"] = {
        key: series for key, series in data["metrics"].items()
        if key.split("{")[0] not in NEW_COUNTERS
    }
    return data


# The golden scenarios themselves live in repro.analysis.scenarios so
# the race-detector sweep can replay them; these tests pin their
# artifacts and thereby keep that shared transcription honest.
_run_chaos_traced = run_chaos_scenario


def test_failover_metrics_match_pre_overhaul_golden():
    world = run_failover_scenario()
    current = _filter_new_counters(world.metrics_json())
    golden = _filter_new_counters(
        json.loads((GOLDEN_DIR / "failover_metrics_seed350.json").read_text()))
    assert current == golden


def test_chaos_delivery_order_and_final_states_match_golden():
    deliveries, finals, _ = _run_chaos_traced()
    current = json.loads(json.dumps(
        {"deliveries": deliveries, "final_counts": finals}, sort_keys=True))
    golden = json.loads((GOLDEN_DIR / "chaos_trace_seed5.json").read_text())
    assert current == golden


def test_chaos_metrics_match_golden_modulo_new_counters():
    _, _, metrics_json = _run_chaos_traced()
    current = _filter_new_counters(metrics_json)
    golden = _filter_new_counters(
        json.loads((GOLDEN_DIR / "chaos_metrics_seed5.json").read_text()))
    assert current == golden


def test_new_counters_are_present_and_active():
    """The overhaul's own counters must actually move in a busy run."""
    _, _, metrics_json = _run_chaos_traced()
    series = json.loads(metrics_json)["metrics"]
    names = {key.split("{")[0] for key in series}
    assert (NEW_COUNTERS - TRACE_COUNTERS) <= names
    # Untraced run: the lazy trace counters must NOT have materialised.
    assert not (TRACE_COUNTERS & names)
    rescheduled = next(v for k, v in series.items()
                       if k.split("{")[0] == "sched.timers.rescheduled")
    batched = next(v for k, v in series.items()
                   if k.split("{")[0] == "totem.broadcast.batched_deliveries")
    posted = next(v for k, v in series.items()
                  if k.split("{")[0] == "sched.post.batched")
    assert rescheduled["value"] > 0
    assert batched["value"] > 0
    # Broadcast fan-out rides the bulk post_batch path, one count per
    # per-target delivery entry: never fewer than the Totem-batched
    # deliveries it carries.
    assert posted["value"] >= batched["value"] > 0
