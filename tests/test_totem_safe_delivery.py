"""Tests for Totem safe (stability-gated) delivery."""

import pytest

from repro.sim import World
from repro.totem import TotemMember, TotemTransport


def build(world, count):
    transport = TotemTransport(world.network, "d")
    members, agreed, safe = [], {}, {}
    for i in range(count):
        host = world.add_host(f"s{i}", site="lan")
        member = TotemMember(host, f"s{i}", transport)
        agreed[member.name] = []
        safe[member.name] = []
        member.on_deliver(lambda seq, snd, p, n=member.name:
                          agreed[n].append((seq, p)))
        member.on_deliver_safe(lambda seq, snd, p, n=member.name:
                               safe[n].append((seq, p)))
        members.append(member)
    for member in members:
        member.start()
    world.scheduler.run_until(
        lambda: all(m.state == TotemMember.OPERATIONAL and
                    len(m.members) == count for m in members), timeout=30.0)
    return members, agreed, safe


def test_safe_delivery_eventually_matches_agreed(world):
    members, agreed, safe = build(world, 3)
    for i in range(10):
        members[i % 3].multicast(i)
    world.scheduler.run_until(
        lambda: all(len(safe[m.name]) == 10 for m in members), timeout=60.0)
    for member in members:
        assert safe[member.name] == agreed[member.name]


def test_safe_delivery_lags_agreed_delivery(world):
    members, agreed, safe = build(world, 3)
    members[0].multicast("x")
    # Run until agreed delivery happens at one member, then compare.
    world.scheduler.run_until(lambda: agreed["s1"], timeout=30.0)
    assert safe["s1"] == [] or len(safe["s1"]) <= len(agreed["s1"])
    world.scheduler.run_until(lambda: safe["s1"], timeout=30.0)
    assert safe["s1"] == agreed["s1"]


def test_safe_delivery_order_is_total(world):
    members, agreed, safe = build(world, 4)
    for i in range(12):
        members[i % 4].multicast(i)
    world.scheduler.run_until(
        lambda: all(len(safe[m.name]) == 12 for m in members), timeout=60.0)
    reference = safe[members[0].name]
    for member in members[1:]:
        assert safe[member.name] == reference
    seqs = [s for (s, _) in reference]
    assert seqs == sorted(seqs)


def test_membership_change_acts_as_stability_cut(world):
    members, agreed, safe = build(world, 3)
    members[0].multicast("pre-crash")
    world.scheduler.run_until(
        lambda: all(("pre-crash" in [p for (_, p) in agreed[m.name]])
                    for m in members), timeout=30.0)
    world.faults.crash_now("s2")
    survivors = members[:2]
    world.scheduler.run_until(
        lambda: all(len(m.members) == 2 and
                    m.state == TotemMember.OPERATIONAL for m in survivors),
        timeout=30.0)
    # The reformation finalises everything delivered before the cut.
    for member in survivors:
        assert ("pre-crash" in [p for (_, p) in safe[member.name]])


def test_no_safe_listeners_means_no_buffering(world):
    transport = TotemTransport(world.network, "d")
    host = world.add_host("solo")
    member = TotemMember(host, "solo", transport)
    seen = []
    member.on_deliver(lambda seq, snd, p: seen.append(p))
    member.start()
    world.scheduler.run_until(
        lambda: member.state == TotemMember.OPERATIONAL, timeout=30.0)
    member.multicast("x")
    world.scheduler.run_until(lambda: seen, timeout=30.0)
    assert member._safe_buffer == {}


def test_safe_delivery_never_outruns_agreed_under_crashes(world):
    """Safety property under failure: at every point, the safe-delivered
    sequence is a prefix of the agreed-delivered sequence."""
    members, agreed, safe = build(world, 4)
    for i in range(8):
        members[i % 4].multicast(i)
    world.faults.crash_host("s3", at=world.now + 0.01)
    world.run(until=world.now + 2.0)
    for member in members[:3]:
        agreed_seq = agreed[member.name]
        safe_seq = safe[member.name]
        assert safe_seq == agreed_seq[:len(safe_seq)]
    # Quiescent: survivors' safe and agreed views coincide in the end.
    for member in members[:3]:
        assert safe[member.name] == agreed[member.name]


def test_safe_delivery_identical_across_survivors_after_crash(world):
    members, agreed, safe = build(world, 3)
    for i in range(6):
        members[i % 3].multicast(i)
    world.faults.crash_host("s1", at=world.now + 0.005)
    world.run(until=world.now + 2.0)
    survivors = [m for m in members if m.name != "s1"]
    reference = safe[survivors[0].name]
    for member in survivors[1:]:
        assert safe[member.name] == reference
