"""Loop-contract parity (`run` vs `run_until`) and kernel edge cases.

Satellite coverage for the kernel overhaul PR, in two halves:

* **run_until parity regressions** — the pre-overhaul ``run_until``
  diverged from ``run`` in three ways: the event budget only raised
  strictly *beyond* ``max_events`` (``run`` raises the moment the
  budget is spent), there was no ``_running`` re-entrancy guard, and
  the deadline was checked only *after* popping the next entry, so a
  timeout silently consumed the event it refused to run.  Both kernels
  now share the strict contracts; these tests fail against the old
  behaviour.
* **calendar-kernel edge cases** — compaction fired from inside an
  event handler, lazy reschedules surfacing after a compaction,
  ``rearm_after`` interleaved with ``cancel``, garbage accounting in
  ``pending_events``, and rescheduling into a cohort stashed by a
  ``run(until=...)`` bound (the insertion-below-resume-point hazard the
  differential harness originally caught).

Everything that is kernel-independent is parametrized over both
kernels, so the reference heap keeps certifying the same contracts.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.reference_scheduler import (_COMPACT_MIN_QUEUE,
                                           ReferenceScheduler)
from repro.sim.scheduler import Scheduler

KERNELS = [Scheduler, ReferenceScheduler]
KERNEL_IDS = ["calendar", "reference"]


# ----------------------------------------------------------------------
# Satellite: run_until parity with run
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kernel", KERNELS, ids=KERNEL_IDS)
def test_run_until_rejects_reentry_from_event(kernel):
    """run() refuses re-entry from an event handler; run_until must too
    (pre-fix it recursed into a corrupted loop)."""
    sched = kernel()
    errors = []

    def reenter():
        try:
            sched.run_until(lambda: True)
        except SimulationError as exc:
            errors.append(str(exc))

    sched.call_after(1.0, reenter)
    sched.run()
    assert errors and "re-entered" in errors[0]
    # ... and symmetrically from inside a run_until drive:
    sched2 = kernel()
    errors2 = []

    def reenter2():
        try:
            sched2.run_until(lambda: True)
        except SimulationError as exc:
            errors2.append(str(exc))

    sched2.call_after(1.0, reenter2)
    sched2.run_until(lambda: bool(errors2), timeout=10.0)
    assert errors2 and "re-entered" in errors2[0]


@pytest.mark.parametrize("kernel", KERNELS, ids=KERNEL_IDS)
def test_run_until_budget_is_strict_like_run(kernel):
    """Spending exactly ``max_events`` raises, even if the predicate
    would have been satisfied by the final event — matching
    ``run(max_events=N)``, which raises after its N-th event.  The
    pre-fix check (``>`` instead of ``>=``) returned success here."""
    sched = kernel()
    fired = []
    for i in range(3):
        sched.call_after(float(i + 1), fired.append, i)
    with pytest.raises(SimulationError, match="budget"):
        sched.run_until(lambda: len(fired) >= 3, max_events=3)
    assert fired == [0, 1, 2]
    # One event of headroom and the same drive succeeds:
    sched2 = kernel()
    fired2 = []
    for i in range(3):
        sched2.call_after(float(i + 1), fired2.append, i)
    sched2.run_until(lambda: len(fired2) >= 3, max_events=4)
    assert fired2 == [0, 1, 2]


@pytest.mark.parametrize("kernel", KERNELS, ids=KERNEL_IDS)
def test_run_until_timeout_leaves_due_event_queued(kernel):
    """A timeout must not consume the event beyond the deadline: the
    pre-fix loop popped the entry before checking, losing it.  After
    the raise, the event still fires on a later drive."""
    sched = kernel()
    fired = []
    sched.call_after(5.0, fired.append, "late")
    with pytest.raises(SimulationError, match="not reached"):
        sched.run_until(lambda: False, timeout=1.0)
    assert fired == []
    assert sched.pending_events == 1
    sched.run()
    assert fired == ["late"]
    assert sched.now == 5.0


@pytest.mark.parametrize("kernel", KERNELS, ids=KERNEL_IDS)
def test_run_until_stale_accounting_parity(kernel):
    """Garbage popped during a run_until drive is accounted exactly as
    run() accounts it: stale counts drop, processed counts don't move."""
    sched = kernel()
    fired = []
    victims = [sched.call_after(1.0, fired.append, i) for i in range(8)]
    keeper = sched.call_after(2.0, fired.append, "keep")
    for victim in victims:
        victim.cancel()
    assert sched.stale_entries == 8
    sched.run_until(lambda: bool(fired), timeout=10.0)
    assert fired == ["keep"]
    assert sched.stale_entries == 0
    assert sched.events_processed == 1
    assert keeper.fired


# ----------------------------------------------------------------------
# Satellite: kernel edge cases
# ----------------------------------------------------------------------


@pytest.mark.parametrize("kernel", KERNELS, ids=KERNEL_IDS)
def test_compaction_triggered_from_inside_event_handler(kernel):
    """An event handler that mass-cancels can trip compaction while the
    loop is mid-drain; survivors (including entries in the cohort being
    drained) must still fire in order."""
    sched = kernel()
    fired = []
    doomed = [sched.call_after(10.0, fired.append, f"doom{i}")
              for i in range(3 * _COMPACT_MIN_QUEUE)]
    keepers = [sched.call_after(float(i + 2), fired.append, f"keep{i}")
               for i in range(5)]

    def massacre():
        fired.append("massacre")
        for timer in doomed:
            timer.cancel()

    sched.call_after(1.0, massacre)
    sched.run()
    assert sched.queue_compactions >= 1
    assert fired == ["massacre"] + [f"keep{i}" for i in range(5)]
    assert all(k.fired for k in keepers)
    assert sched.pending_events == 0
    assert sched.stale_entries == 0


@pytest.mark.parametrize("kernel", KERNELS, ids=KERNEL_IDS)
def test_lazy_reschedule_survives_compaction(kernel):
    """A timer lazily rescheduled to a later time (stale entry still in
    the queue) must keep its authoritative firing time through a
    compaction, whether the compactor rewrites the entry in place or
    the stale entry surfaces and re-pushes."""
    sched = kernel()
    fired = []
    moved = sched.call_after(1.0, fired.append, "moved")
    sentinel = sched.call_after(3.0, fired.append, "sentinel")
    # Lazy move to 5.0: the 1.0 entry goes stale but stays queued.
    sched.reschedule(moved, 5.0)
    doomed = [sched.call_after(10.0, fired.append, f"doom{i}")
              for i in range(3 * _COMPACT_MIN_QUEUE)]
    for timer in doomed:
        timer.cancel()
    assert sched.queue_compactions >= 1
    sched.run()
    assert fired == ["sentinel", "moved"]
    assert sched.now == 5.0
    assert sentinel.fired and moved.fired


@pytest.mark.parametrize("kernel", KERNELS, ids=KERNEL_IDS)
def test_rearm_after_interleaved_with_cancel(kernel):
    """rearm_after on a fired timer, then cancel before the re-armed
    firing; then rearm the (cancelled) timer must fail, and cancelling
    a fired-but-not-rearmed timer is a no-op that doesn't corrupt
    accounting."""
    sched = kernel()
    fired = []
    timer = sched.call_after(1.0, fired.append, "a")
    sched.run()
    assert fired == ["a"] and timer.fired
    sched.rearm_after(timer, 1.0)
    assert timer.active and not timer.fired
    timer.cancel()
    with pytest.raises(SimulationError, match="rearm"):
        sched.rearm_after(timer, 1.0)
    processed = sched.run()
    assert fired == ["a"]
    assert processed == 0
    assert sched.stale_entries == 0
    # A fired timer that was never re-armed: cancel is a silent no-op.
    done = sched.call_after(1.0, fired.append, "b")
    sched.run()
    done.cancel()
    assert done.fired and not done.cancelled
    assert sched.stale_entries == 0


@pytest.mark.parametrize("kernel", KERNELS, ids=KERNEL_IDS)
def test_pending_events_counts_garbage_until_collected(kernel):
    """pending_events deliberately includes not-yet-collected garbage
    (cancelled and superseded entries); stale_entries tracks the
    cancelled subset, and both drop to zero after a full drain."""
    sched = kernel()
    live = [sched.call_after(1.0, lambda: None) for _ in range(4)]
    cancelled = [sched.call_after(2.0, lambda: None) for _ in range(3)]
    for timer in cancelled:
        timer.cancel()
    # A lazy reschedule-later leaves a superseded duplicate queued:
    sched.reschedule(live[0], 9.0)
    assert sched.pending_events == 7
    assert sched.stale_entries == 3
    sched.run(until=0.5)
    # Nothing fired, nothing collected by a bound that precedes it all.
    assert sched.events_processed == 0
    sched.run()
    assert sched.pending_events == 0
    assert sched.stale_entries == 0
    assert sched.events_processed == 4


@pytest.mark.parametrize("kernel", KERNELS, ids=KERNEL_IDS)
def test_reschedule_earlier_into_stashed_cohort(kernel):
    """Regression for the insertion-below-resume-point hazard: a
    run(until=...) bound stops the calendar kernel inside a cohort
    whose consumed prefix held skipped garbage; rescheduling a survivor
    *earlier* then inserted below the resume point and never fired."""
    sched = kernel()
    fired = []
    ghost = sched.call_after(0.1225, fired.append, "ghost")
    keeper = sched.call_after(0.1225, fired.append, "keeper")
    ghost.cancel()
    assert sched.run(until=0.1) == 0
    assert sched.now == 0.1
    sched.reschedule(keeper, 0.12)
    assert sched.run() == 1
    assert fired == ["keeper"]
    assert sched.now == 0.12


def test_callback_counters_track_plain_attributes():
    """The lazy-instrumentation seam end to end: attach_metrics exports
    live values through callback counters, re-attachment re-points the
    metric, and writes through the metric are rejected."""
    from repro.errors import ConfigurationError
    from repro.obs.metrics import CallbackCounter, MetricsRegistry

    sched = Scheduler()
    registry = MetricsRegistry(clock=lambda: sched.now)
    sched.attach_metrics(registry)
    counter = registry.counter("sched.timers.rescheduled")
    assert isinstance(counter, CallbackCounter)
    assert counter.value == 0
    timer = sched.call_after(5.0, lambda: None)
    sched.reschedule(timer, 6.0)
    assert counter.value == 1
    assert registry.value("sched.timers.rescheduled") == 1
    assert counter.snapshot()["value"] == 1
    with pytest.raises(ConfigurationError, match="callback-backed"):
        counter.inc()
    # A second scheduler attaching to the same registry takes over:
    sched2 = Scheduler()
    sched2.attach_metrics(registry)
    assert registry.counter("sched.timers.rescheduled").value == 0
    # A writable counter with the same name cannot be silently shadowed:
    plain = registry.counter("plain.count")
    plain.inc()
    with pytest.raises(ConfigurationError, match="already registered"):
        registry.counter_fn("plain.count", lambda: 7)
