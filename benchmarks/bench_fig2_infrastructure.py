"""E2 (Figure 2): the cost of the Eternal infrastructure's path.

Figure 2 shows the invocation path: application -> (interceptor) ->
Replication Mechanisms -> Totem -> replicas, instead of a direct IIOP
TCP hop.  The benchmark measures, in simulated time:

* the end-to-end latency of an unreplicated CORBA invocation over plain
  TCP (the path Eternal replaces), and
* the latency of the same invocation on a replicated group, swept over
  replication degree,

reporting the multicast path's overhead — the shape is a roughly
constant additive cost (one token rotation) that grows mildly with the
degree, not a multiplicative blow-up.
"""

import pytest

from repro import Orb, World
from repro.apps import COUNTER_INTERFACE, CounterServant

from common import build_domain, counter_group

OPERATIONS = 20


def run_plain_orb():
    """Baseline: unreplicated client -> unreplicated server, same LAN."""
    world = World(seed=5, trace=False)
    server_host = world.add_host("server", site="lan")
    client_host = world.add_host("client", site="lan")
    server_orb = Orb(world, server_host)
    server_orb.listen(9000)
    ior = server_orb.activate_object(CounterServant())
    client_orb = Orb(world, client_host, request_timeout=None)
    stub = client_orb.string_to_object(ior.to_string(), COUNTER_INTERFACE)
    world.await_promise(stub.call("increment", 1))  # connection setup
    t0 = world.now
    for _ in range(OPERATIONS):
        world.await_promise(stub.call("increment", 1))
    return (world.now - t0) / OPERATIONS


def run_replicated(degree):
    """Replicated path: driver -> RM -> Totem -> replicas -> responses."""
    world = World(seed=5, trace=False)
    domain = build_domain(world, num_hosts=max(3, degree), gateways=0)
    group = counter_group(domain, replicas=degree)
    world.await_promise(group.invoke("increment", 1))
    t0 = world.now
    for _ in range(OPERATIONS):
        world.await_promise(group.invoke("increment", 1))
    return (world.now - t0) / OPERATIONS


def test_fig2_plain_orb_baseline(benchmark):
    latency = benchmark.pedantic(run_plain_orb, rounds=2, iterations=1)
    benchmark.extra_info["simulated_latency_s"] = round(latency, 6)
    assert latency < 0.01


@pytest.mark.parametrize("degree", [1, 2, 3, 5])
def test_fig2_replicated_invocation_path(benchmark, degree):
    latency = benchmark.pedantic(run_replicated, args=(degree,), rounds=2,
                                 iterations=1)
    baseline = run_plain_orb()
    benchmark.extra_info.update({
        "degree": degree,
        "simulated_latency_s": round(latency, 6),
        "overhead_vs_plain_x": round(latency / baseline, 2),
    })
    # Shape: the total-order path costs more than a raw TCP hop but
    # stays within a small constant factor, and does not explode with
    # the replication degree (all replicas are reached by ONE multicast).
    assert latency > baseline
    assert latency < baseline * 40


def test_fig2_degree_scaling_is_flat(benchmark):
    """Adding replicas must not multiply the invocation latency: the
    multicast reaches all of them in one total-order slot."""

    def run():
        return {degree: run_replicated(degree) for degree in (1, 5)}

    latencies = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {f"latency_n{k}_s": round(v, 6) for k, v in latencies.items()})
    assert latencies[5] < latencies[1] * 2.5
