"""Servant base class and the checkpointable-state protocol.

A servant implements an :class:`~repro.orb.idl.Interface` with ordinary
Python methods.  Two extra hooks make servants replicable by Eternal's
Logging-Recovery Mechanisms (paper section 2.2, state transfer):

* :meth:`get_state` — capture the object's application state;
* :meth:`set_state` — install previously captured state.

The defaults snapshot every public, non-callable instance attribute
(deep-copied so a checkpoint is immune to later mutation), which covers
typical value-holding servants; servants with richer state override the
pair.

A servant method that needs to make a *nested invocation* on another
replicated object writes itself as a generator and yields the call
descriptor (see :class:`NestedCall`); the Replication Mechanisms drive
the generator and send the result back in.  This is how the paper's
Figure 6 scenario (group A's method invoking group B) is expressed.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

from .idl import Interface


@dataclass(frozen=True)
class NestedCall:
    """Yielded by a servant generator to invoke another object.

    ``target`` names the callee: either a stringified IOR (cross-domain,
    routed through the remote domain's gateway) or a group name that the
    hosting infrastructure resolves in its own domain.  ``interface``
    names the callee's interface; it is required for IOR targets (the
    local infrastructure cannot look a foreign interface up by group)
    and ignored for in-domain targets.
    """

    target: str
    operation: str
    args: Sequence[Any] = ()
    interface: Optional[str] = None


class Servant:
    """Base class for application objects.

    Subclasses set the class attribute ``interface`` and define one
    method per operation.  Methods receive the operation's declared
    parameters positionally and return the declared result.
    """

    interface: Interface

    def get_state(self) -> Dict[str, Any]:
        """Snapshot application state for checkpointing/state transfer."""
        return copy.deepcopy({
            name: value for name, value in vars(self).items()
            if not name.startswith("_") and not callable(value)
        })

    def set_state(self, state: Dict[str, Any]) -> None:
        """Install a snapshot produced by :meth:`get_state`."""
        for name, value in copy.deepcopy(state).items():
            setattr(self, name, value)

    def dispatch_local(self, operation: str, args: Sequence[Any]) -> Any:
        """Invoke ``operation`` directly (no marshalling, no nesting).

        Raises AttributeError if the method is missing; callers that
        need CORBA semantics go through the dispatcher instead.
        """
        return getattr(self, operation)(*args)
