#!/usr/bin/env python
"""Run the full experiment harness and summarise paper-relevant metrics.

Usage:
    python tools/run_experiments.py [--out results.json]

Runs ``pytest benchmarks/ --benchmark-only`` with JSON output, then
prints one grouped, human-readable section per experiment (E1..E11)
with every benchmark's ``extra_info`` — the reproduction's analogue of
the paper's reported behaviour.  Exit status mirrors pytest's.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from collections import defaultdict
from pathlib import Path

EXPERIMENT_OF_FILE = {
    "bench_fig1_multidomain": "E1  Figure 1: multi-domain topology",
    "bench_fig2_infrastructure": "E2  Figure 2: infrastructure invocation path",
    "bench_totem_ring": "E2b Totem substrate microbenchmarks",
    "bench_fig3_duplicate_suppression": "E3  Figure 3: duplicate suppression",
    "bench_fig4_message_formats": "E4  Figure 4: message formats",
    "bench_fig5_gateway_actions": "E5  Figure 5: gateway action loops",
    "bench_fig6_identifiers": "E6  Figure 6: operation identifiers",
    "bench_sec34_plain_orb_failover": "E7  Section 3.4: plain ORB failures",
    "bench_sec35_enhanced_failover": "E8  Section 3.5: enhanced failover",
    "bench_replication_styles": "E9  Replication styles ablation",
    "bench_gateway_scaling": "E10 Gateway scaling",
    "bench_workload_mix": "E11 Workload latency models",
    "bench_state_transfer": "E12 State transfer vs state size",
    "bench_ablation_totem_tuning": "E13 Totem tuning ablation",
    "bench_gateway_state_lifecycle": "E14 Gateway state lifecycle & audit",
    "bench_scheduler_throughput": "E15 Sim-kernel throughput",
    "bench_gateway_farm": "E16 Gateway farm scaling",
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the raw pytest-benchmark JSON here")
    args = parser.parse_args()

    json_path = args.out or Path(tempfile.mkstemp(suffix=".json")[1])
    command = [sys.executable, "-m", "pytest", "benchmarks/",
               "--benchmark-only", "-q",
               f"--benchmark-json={json_path}"]
    print("$", " ".join(command))
    status = subprocess.call(command)
    if not json_path.exists():
        print("no benchmark JSON produced", file=sys.stderr)
        return status or 1

    data = json.loads(json_path.read_text())
    by_experiment = defaultdict(list)
    for bench in data["benchmarks"]:
        source_file = bench["fullname"].split("::")[0]
        stem = Path(source_file).stem
        experiment = EXPERIMENT_OF_FILE.get(stem, stem)
        by_experiment[experiment].append(bench)

    print("\n" + "=" * 72)
    print("REPRODUCTION RESULTS (see EXPERIMENTS.md for paper-vs-measured)")
    print("=" * 72)
    for experiment in sorted(by_experiment):
        print(f"\n{experiment}")
        for bench in sorted(by_experiment[experiment],
                            key=lambda b: b["name"]):
            wall_ms = bench["stats"]["mean"] * 1000
            line = f"  {bench['name']}: wall={wall_ms:.1f}ms"
            extra = bench.get("extra_info") or {}
            if extra:
                rendered = ", ".join(f"{k}={v}" for k, v in extra.items())
                line += f" | {rendered}"
            print(line)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
