"""Tests for the Fault Notifier observer."""

import pytest

from repro import World
from repro.apps import COUNTER_INTERFACE, CounterServant
from repro.eternal import FaultKind, FaultNotifier

from tests.helpers import make_counter_group, make_domain


def test_host_crash_and_recovery_reported(world):
    domain = make_domain(world)
    notifier = FaultNotifier(domain)
    world.faults.crash_now("dom-h2")
    world.run(until=world.now + 1.0)
    world.faults.recover_now("dom-h2")
    world.run(until=world.now + 0.2)
    crashed = notifier.history(FaultKind.HOST_CRASHED)
    recovered = notifier.history(FaultKind.HOST_RECOVERED)
    assert [r.subject for r in crashed] == ["dom-h2"]
    assert [r.subject for r in recovered] == ["dom-h2"]


def test_membership_change_reports_who_left(world):
    domain = make_domain(world)
    notifier = FaultNotifier(domain)
    world.faults.crash_now("dom-h1")
    world.run(until=world.now + 1.0)
    changes = notifier.history(FaultKind.MEMBERSHIP_CHANGED)
    assert changes
    assert "dom-h1" in changes[-1].detail["left"]


def test_group_degraded_and_restored(world):
    domain = make_domain(world, num_hosts=4)
    group = make_counter_group(domain, replicas=3, min_replicas=3)
    domain.await_ready(group)
    notifier = FaultNotifier(domain)
    world.faults.crash_now(group.info().placement[0])
    world.run(until=world.now + 3.0)   # degrade, then RM restores
    degraded = notifier.history(FaultKind.GROUP_DEGRADED)
    restored = notifier.history(FaultKind.GROUP_RESTORED)
    assert [r.subject for r in degraded] == ["Counter"]
    assert [r.subject for r in restored] == ["Counter"]
    assert degraded[0].time <= restored[0].time


def test_replica_removed_by_fault_detector_reported(world):
    class Monitored(CounterServant):
        def __init__(self):
            super().__init__()
            self.healthy = True

        def health_check(self):
            return self.healthy

    domain = make_domain(world, num_hosts=4)
    group = domain.create_group("Mon", COUNTER_INTERFACE, Monitored,
                                num_replicas=3, min_replicas=2)
    domain.await_ready(group)
    notifier = FaultNotifier(domain)
    victim = group.info().placement[1]
    domain.rms[victim].replicas[group.group_id].servant.healthy = False
    world.run(until=world.now + 3.0)
    removed = notifier.history(FaultKind.REPLICA_REMOVED)
    assert any(r.subject == "Mon" and r.detail["host"] == victim
               for r in removed)


def test_push_consumers_receive_reports(world):
    domain = make_domain(world)
    notifier = FaultNotifier(domain)
    received = []
    notifier.subscribe(received.append)
    world.faults.crash_now("dom-h0")
    world.run(until=world.now + 1.0)
    assert any(r.kind is FaultKind.HOST_CRASHED for r in received)


def test_notifier_ignores_foreign_domains(world):
    domain_a = make_domain(world, name="alpha")
    domain_b = make_domain(world, name="beta")
    notifier = FaultNotifier(domain_a)
    world.faults.crash_now("beta-h0")
    world.run(until=world.now + 1.0)
    assert notifier.history(FaultKind.HOST_CRASHED) == []
