# reprolint: module=repro.sim.fixture_flow
"""FLOW001 bad: a kind the system can send but nothing dispatches."""


class MsgKind:
    PING = "ping"
    PONG = "pong"


class Bus:
    def __init__(self):
        self.sent = []

    def send(self, kind, payload):
        self.sent.append((kind, payload))


def emit(bus):
    bus.send(MsgKind.PING, b"x")
    # PONG goes on the wire but no dispatch site anywhere handles it.
    bus.send(MsgKind.PONG, b"y")


def deliver(kind, payload):
    if kind is MsgKind.PING:
        return payload
    return None
