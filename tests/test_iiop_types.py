"""Tests for the TypeCode argument-marshalling system."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MarshalError
from repro.iiop import (
    CdrInputStream,
    CdrOutputStream,
    SequenceTC,
    StructTC,
    TC_BOOLEAN,
    TC_DOUBLE,
    TC_LONG,
    TC_OCTETS,
    TC_STRING,
    TC_VOID,
    decode_values,
    encode_values,
)


def roundtrip(tc, value):
    out = CdrOutputStream()
    tc.encode(out, value)
    return tc.decode(CdrInputStream(out.getvalue()))


def test_primitive_roundtrips():
    assert roundtrip(TC_LONG, -42) == -42
    assert roundtrip(TC_DOUBLE, 2.75) == 2.75
    assert roundtrip(TC_STRING, "hello") == "hello"
    assert roundtrip(TC_BOOLEAN, True) is True
    assert roundtrip(TC_OCTETS, b"\x00\x01") == b"\x00\x01"


def test_void_accepts_only_none():
    assert roundtrip(TC_VOID, None) is None
    out = CdrOutputStream()
    with pytest.raises(MarshalError):
        TC_VOID.encode(out, 5)


def test_sequence_of_longs():
    tc = SequenceTC(TC_LONG)
    assert roundtrip(tc, [1, 2, 3]) == [1, 2, 3]
    assert roundtrip(tc, []) == []


def test_sequence_of_strings():
    tc = SequenceTC(TC_STRING)
    assert roundtrip(tc, ["a", "bb", ""]) == ["a", "bb", ""]


def test_nested_sequences():
    tc = SequenceTC(SequenceTC(TC_LONG))
    assert roundtrip(tc, [[1], [], [2, 3]]) == [[1], [], [2, 3]]


def test_sequence_rejects_non_list():
    tc = SequenceTC(TC_LONG)
    out = CdrOutputStream()
    with pytest.raises(MarshalError):
        tc.encode(out, 7)


def test_struct_roundtrip():
    tc = StructTC("Order", [("symbol", TC_STRING), ("shares", TC_LONG),
                            ("limit", TC_DOUBLE)])
    value = {"symbol": "ACME", "shares": 100, "limit": 12.5}
    assert roundtrip(tc, value) == value


def test_struct_field_order_is_declaration_order():
    tc = StructTC("P", [("a", TC_LONG), ("b", TC_LONG)])
    out = CdrOutputStream()
    tc.encode(out, {"b": 2, "a": 1})
    stream = CdrInputStream(out.getvalue())
    assert stream.read_long() == 1
    assert stream.read_long() == 2


def test_struct_missing_field_rejected():
    tc = StructTC("P", [("a", TC_LONG)])
    out = CdrOutputStream()
    with pytest.raises(MarshalError):
        tc.encode(out, {})


def test_struct_inside_sequence():
    tc = SequenceTC(StructTC("Pt", [("x", TC_LONG), ("y", TC_LONG)]))
    value = [{"x": 1, "y": 2}, {"x": 3, "y": 4}]
    assert roundtrip(tc, value) == value


def test_encode_values_length_mismatch():
    out = CdrOutputStream()
    with pytest.raises(MarshalError):
        encode_values([TC_LONG, TC_LONG], [1], out)


def test_parameter_list_roundtrip():
    types = [TC_STRING, TC_LONG, SequenceTC(TC_DOUBLE)]
    values = ["x", 9, [1.5, 2.5]]
    out = CdrOutputStream()
    encode_values(types, values, out)
    assert decode_values(types, CdrInputStream(out.getvalue())) == values


@given(st.lists(st.integers(-(2**31), 2**31 - 1), max_size=50))
def test_long_sequence_roundtrip_property(values):
    assert roundtrip(SequenceTC(TC_LONG), values) == values


@given(st.dictionaries(st.just("k"), st.integers(-100, 100), min_size=1),
       st.text(alphabet="abc", max_size=10))
def test_struct_property(d, s):
    tc = StructTC("S", [("k", TC_LONG), ("s", TC_STRING)])
    value = {"k": d["k"], "s": s}
    assert roundtrip(tc, value) == value
