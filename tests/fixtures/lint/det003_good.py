# reprolint: module=repro.totem.fake
"""DET003 good fixture: sorted() everywhere, and a scope-collision
regression — a *list* named like another function's set must not be
flagged (the rule's name table is per lexical scope)."""


def order(hosts):
    members = {h for h in hosts}
    return [h for h in sorted(members)]


def membership_only(xs):
    live = set(xs)
    return "a" in live


def unrelated_list(xs):
    live = [x for x in xs]
    return {x: 0 for x in live}
