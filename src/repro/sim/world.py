"""Convenience container wiring the simulation substrate together.

A :class:`World` owns one scheduler, one network, one TCP stack, one
tracer, one fault injector, and one seeded RNG.  Every test, example and
benchmark starts by constructing a ``World`` and building domains,
gateways and clients inside it.  ``World.run_until_done`` drives the
event loop until a set of promises resolves, which is the idiomatic way
to make synchronous-looking test code out of the asynchronous
simulation.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Optional, Union

from ..errors import SimulationError
from ..obs import (AuditReport, AuditScope, FlightRecorder, MetricsRegistry,
                   SeriesRegistry, TraceCollector, render_text, to_json)
from .faults import FaultInjector
from .host import Host
from .network import LatencyModel, Network
from .reference_scheduler import ReferenceScheduler
from .scheduler import Scheduler
from .tcp import TcpStack
from .trace import Tracer

#: Anything a World can run on: the production calendar-queue kernel or
#: the pre-overhaul binary-heap kernel (kept as the differential-test
#: reference and the base of the race detector's permuting scheduler).
#: The two expose the same public surface and identical event ordering.
SchedulerLike = Union[Scheduler, ReferenceScheduler]


class Promise:
    """A single-assignment result used to bridge async simulation to tests.

    Resolve with :meth:`resolve` or fail with :meth:`reject`; registered
    callbacks fire immediately on completion.  ``result()`` raises the
    stored exception if the promise was rejected.
    """

    __slots__ = ("done", "_value", "_error", "_callbacks")

    def __init__(self) -> None:
        self.done = False
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._callbacks = []

    def resolve(self, value: Any = None) -> None:
        if self.done:
            return
        self.done = True
        self._value = value
        for fn in self._callbacks:
            fn(self)
        self._callbacks.clear()

    def reject(self, error: BaseException) -> None:
        if self.done:
            return
        self.done = True
        self._error = error
        for fn in self._callbacks:
            fn(self)
        self._callbacks.clear()

    def on_done(self, fn) -> None:
        if self.done:
            fn(self)
        else:
            self._callbacks.append(fn)

    @property
    def failed(self) -> bool:
        return self.done and self._error is not None

    @property
    def value(self) -> Any:
        """The resolved value (None until resolution or when rejected)."""
        return self._value

    @property
    def error(self) -> Optional[BaseException]:
        return self._error

    def result(self) -> Any:
        if not self.done:
            raise SimulationError("promise not yet resolved")
        if self._error is not None:
            raise self._error
        return self._value


class World:
    """One simulated universe: scheduler + network + TCP + faults + RNG."""

    def __init__(
        self,
        seed: int = 0,
        latency_model: Optional[LatencyModel] = None,
        trace: bool = True,
        mtu: Optional[int] = None,
        trace_spans: bool = False,
        trace_max_records: Optional[int] = None,
        scheduler: Optional[SchedulerLike] = None,
        series: bool = False,
        series_window: float = 1.0,
        series_capacity: int = 240,
        series_sample_interval: float = 0.25,
        flight: bool = False,
        flight_capacity: int = 256,
    ) -> None:
        # An injected scheduler (e.g. the race detector's cohort-
        # permuting subclass) must be fresh: it becomes this world's
        # clock and the anchor of every component built below.
        self.scheduler: SchedulerLike = (
            scheduler if scheduler is not None else Scheduler())
        self.tracer = Tracer(enabled=trace, max_records=trace_max_records)
        # One registry per world: the simulated clock is the scheduler,
        # and every component reads the same registry via its network.
        self.metrics = MetricsRegistry(clock=lambda: self.scheduler.now)
        self.scheduler.attach_metrics(self.metrics)
        # One audit scope per world (see repro.obs.audit): components
        # register their stateful collections as they are built, and
        # world.audit() checks every one against its declared floor.
        self.audit_scope = AuditScope(metrics=self.metrics,
                                      clock=lambda: self.scheduler.now)
        # Causal tracing (repro.obs.tracing): disabled by default so a
        # traced build is byte-identical — metrics, goldens, wire bytes
        # — to one without the subsystem; ``trace_spans=True`` records
        # per-invocation span trees on the simulated clock.
        # Flight recorder (repro.obs.flight): a bounded ring of recent
        # high-signal events.  Recording is purely passive (no scheduler
        # events, no metrics), so arming it never perturbs a run.
        self.flight = FlightRecorder(clock=lambda: self.scheduler.now,
                                     enabled=flight,
                                     capacity=flight_capacity)
        # Time-series layer (repro.obs.series): disabled by default so
        # the simulated event stream and metric key set stay
        # byte-identical to a build without it; ``series=True`` arms
        # event-driven per-group/per-gateway series (sampled sources
        # stay opt-in via ``world.series.sample`` because the periodic
        # sampler does add scheduler events).
        self.series = SeriesRegistry(
            clock=lambda: self.scheduler.now, enabled=series,
            capacity=series_capacity, window_s=series_window,
            sample_interval=series_sample_interval, flight=self.flight)
        self.series.attach_scheduler(self.scheduler)
        self.trace_collector = TraceCollector(
            enabled=trace_spans, clock=lambda: self.scheduler.now,
            metrics=self.metrics, flight=self.flight)
        self.network = Network(self.scheduler, latency_model=latency_model,
                               tracer=self.tracer, metrics=self.metrics,
                               audit=self.audit_scope,
                               spans=self.trace_collector,
                               series=self.series, flight=self.flight)
        self._register_scheduler_audit()
        self.tcp = TcpStack(self.network, mtu=mtu)
        self.faults = FaultInjector(self.scheduler, self.network,
                                    flight=self.flight)
        self.rng = random.Random(seed)
        self.seed = seed

    @property
    def now(self) -> float:
        return self.scheduler.now

    def _register_scheduler_audit(self) -> None:
        """Declare the event queue's hygiene contract to the audit scope.

        The queue itself legitimately holds live periodic timers at any
        quiescent instant (token rotation never stops), so its depth is
        snapshot-only; what must stay bounded is the *stale* entry count
        — cancelled or superseded heap entries — which compaction keeps
        below half the queue (or below the compaction threshold for
        small queues).
        """
        from .scheduler import _COMPACT_MIN_QUEUE
        sched = self.scheduler
        self.audit_scope.register(
            "sched.queue", lambda: sched.pending_events, floor=None,
            owner="scheduler", gauge="sched.state.queue_depth")
        self.audit_scope.register(
            "sched.queue.stale", lambda: sched.stale_entries,
            floor=lambda: max(sched.pending_events // 2,
                              _COMPACT_MIN_QUEUE - 1),
            owner="scheduler", gauge="sched.state.stale_entries")

    def audit(self, strict: bool = False) -> AuditReport:
        """Run the resource-leak audit over every registered collection.

        Returns the :class:`~repro.obs.AuditReport`; with ``strict=True``
        raises :class:`~repro.errors.AuditError` on any collection above
        its declared floor.  Also publishes the ``*.state.*`` gauge
        family into ``world.metrics`` (created on first audit)."""
        report = self.audit_scope.audit()
        flight = self.flight
        if flight.enabled:
            for row in report.violations:
                flight.record("flight.audit", name=row.name, owner=row.owner,
                              size=row.size, floor=row.floor)
        if strict:
            report.assert_clean()
        return report

    def trace_chrome_json(self) -> str:
        """Chrome ``trace_event`` JSON of the recorded spans
        (byte-identical across seeded reruns); load in ``about:tracing``
        or Perfetto, or feed to ``tools/trace_report.py``."""
        return self.trace_collector.export_chrome()

    def trace_tree(self) -> str:
        """Aligned text tree of the recorded spans, one tree per trace."""
        return self.trace_collector.export_tree()

    def series_json(self) -> str:
        """Canonical JSON dump of every time series (byte-identical
        across seeded reruns, on either twin scheduler)."""
        return self.series.to_json()

    def flight_json(self) -> str:
        """Canonical JSON dump of the flight recorder's event ring."""
        return self.flight.dump_json()

    def metrics_json(self, include_wall: bool = False) -> str:
        """Canonical JSON snapshot (byte-identical across seeded reruns
        when ``include_wall`` is False)."""
        return to_json(self.metrics, include_wall=include_wall)

    def metrics_report(self, include_wall: bool = False) -> str:
        """Human-readable metrics table for this world."""
        return render_text(self.metrics, include_wall=include_wall)

    def add_host(self, name: str, site: Optional[str] = None) -> Host:
        return self.network.add_host(name, site=site)

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> int:
        return self.scheduler.run(until=until, max_events=max_events)

    def run_until_done(self, promises: Iterable[Promise],
                       timeout: float = 120.0) -> None:
        """Drive the simulation until every promise completes."""
        pending = list(promises)
        self.scheduler.run_until(
            lambda: all(p.done for p in pending), timeout=timeout,
        )

    def await_promise(self, promise: Promise, timeout: float = 120.0) -> Any:
        """Run until ``promise`` completes and return (or raise) its result."""
        self.scheduler.run_until(lambda: promise.done, timeout=timeout)
        return promise.result()
