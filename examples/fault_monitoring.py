#!/usr/bin/env python
"""Watching a fault tolerance domain heal itself.

Subscribes a Fault Notifier (the FT-CORBA companion to the paper's
managers) to a domain and then stages a failure sequence:

  1. a replica host crashes            -> membership change, degraded
  2. the Resource Manager heals it     -> replica replaced, restored
  3. a replica turns sick (host fine)  -> FaultDetector evicts, heals
  4. the crashed processor is restarted and rejoins

Every fault report is printed as it happens, followed by the final
status report — the operational view an adopter would wire to paging.

Run:  python examples/fault_monitoring.py
"""

from repro import FaultToleranceDomain, ReplicationStyle, World
from repro.apps import COUNTER_INTERFACE, CounterServant
from repro.eternal import FaultNotifier, domain_report, format_report


class MonitoredCounter(CounterServant):
    def __init__(self):
        super().__init__()
        self.healthy = True

    def health_check(self):
        return self.healthy


def main():
    world = World(seed=4444)
    domain = FaultToleranceDomain(world, "prod", num_hosts=4)
    domain.add_gateway(port=2809)
    group = domain.create_group("Inventory", COUNTER_INTERFACE,
                                MonitoredCounter,
                                style=ReplicationStyle.ACTIVE,
                                num_replicas=3, min_replicas=3)
    domain.await_stable()
    domain.await_ready(group)
    world.await_promise(group.invoke("increment", 100))

    notifier = FaultNotifier(domain)
    notifier.subscribe(lambda report: print(
        f"  [{report.time:7.3f}s] {report.kind.value:<20} "
        f"{report.subject} {report.detail or ''}"))

    print("stage 1: crash a replica host")
    victim = group.info().placement[0]
    world.faults.crash_now(victim)
    world.run(until=world.now + 3.0)

    print("\nstage 2: poison one replica (processor stays up)")
    sick_host = group.info().placement[0]
    domain.rms[sick_host].replicas[group.group_id].servant.healthy = False
    world.run(until=world.now + 3.0)

    print("\nstage 3: restart the crashed processor's software")
    world.faults.recover_now(victim)
    domain.restart_host(victim)
    domain.await_stable()
    world.run(until=world.now + 1.0)

    print("\nthrough it all, state never flinched:")
    print("  value() ->", world.await_promise(group.invoke("value"),
                                              timeout=600))
    print("\n" + format_report(domain_report(domain)))


if __name__ == "__main__":
    main()
