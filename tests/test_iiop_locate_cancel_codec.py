"""Codec tests for LocateRequest/LocateReply/CancelRequest messages."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MarshalError
from repro.iiop import (
    GiopFramer,
    LocateStatus,
    MsgType,
    decode_cancel_request,
    decode_locate_reply,
    decode_locate_request,
    encode_cancel_request,
    encode_locate_reply,
    encode_locate_request,
    parse_header,
)


def test_locate_request_roundtrip():
    encoded = encode_locate_request(12, b"ftdomain/d/10")
    assert parse_header(encoded)[0] == MsgType.LOCATE_REQUEST
    assert decode_locate_request(encoded) == (12, b"ftdomain/d/10")


def test_locate_reply_roundtrip():
    encoded = encode_locate_reply(12, LocateStatus.OBJECT_HERE)
    assert parse_header(encoded)[0] == MsgType.LOCATE_REPLY
    assert decode_locate_reply(encoded) == (12, LocateStatus.OBJECT_HERE)


def test_cancel_request_roundtrip():
    encoded = encode_cancel_request(77)
    assert parse_header(encoded)[0] == MsgType.CANCEL_REQUEST
    assert decode_cancel_request(encoded) == 77


def test_wrong_type_rejected():
    locate = encode_locate_request(1, b"k")
    with pytest.raises(MarshalError):
        decode_cancel_request(locate)
    with pytest.raises(MarshalError):
        decode_locate_reply(locate)
    cancel = encode_cancel_request(1)
    with pytest.raises(MarshalError):
        decode_locate_request(cancel)


def test_little_endian_variants():
    encoded = encode_locate_request(9, b"key", little_endian=True)
    assert decode_locate_request(encoded) == (9, b"key")
    encoded = encode_cancel_request(9, little_endian=True)
    assert decode_cancel_request(encoded) == 9


def test_framer_handles_mixed_message_train():
    train = (encode_locate_request(1, b"k")
             + encode_cancel_request(2)
             + encode_locate_reply(1, LocateStatus.UNKNOWN_OBJECT))
    framer = GiopFramer()
    messages = framer.feed(train)
    assert [parse_header(m)[0] for m in messages] == [
        MsgType.LOCATE_REQUEST, MsgType.CANCEL_REQUEST, MsgType.LOCATE_REPLY]


@given(st.integers(0, 2**32 - 1), st.binary(min_size=0, max_size=64))
def test_locate_request_roundtrip_property(request_id, key):
    assert decode_locate_request(
        encode_locate_request(request_id, key)) == (request_id, key)
