"""Tests for Figure 6 invocation/response/operation identifiers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    InvocationId,
    OperationId,
    ResponseId,
    UNUSED_CLIENT_ID,
    dedup_key,
    external_operation_id,
)


def test_figure6_worked_example():
    """The example of Figure 6: T_A_inv=100, S_A_inv=3, T_B_inv=120,
    T_B_res=171; invocation and response share the operation id."""
    op = OperationId(parent_ts=100, child_seq=3)
    invocation = InvocationId(ts=120, op=op)
    response = ResponseId(ts=171, op=op)
    assert invocation.op == response.op
    assert invocation.ts == 120
    assert response.ts == 171
    assert str(invocation) == "inv[120,op(100,3)]"
    assert str(response) == "res[171,op(100,3)]"


def test_operation_ids_are_value_objects():
    assert OperationId(1, 2) == OperationId(1, 2)
    assert OperationId(1, 2) != OperationId(1, 3)
    assert hash(OperationId(1, 2)) == hash(OperationId(1, 2))
    assert len({OperationId(1, 2), OperationId(1, 2)}) == 1


def test_external_operation_id_has_no_parent():
    op = external_operation_id(17)
    assert op.parent_ts == 0
    assert op.child_seq == 17


def test_dedup_key_distinguishes_clients():
    """Section 3.2: source group, client id and operation id are used
    collectively — two clients with the same request numbers differ."""
    op = external_operation_id(1)
    key_a = dedup_key(1, 5, op)
    key_b = dedup_key(1, 6, op)
    assert key_a != key_b


def test_dedup_key_distinguishes_source_groups():
    op = OperationId(100, 1)
    assert dedup_key(1, UNUSED_CLIENT_ID, op) != dedup_key(2, UNUSED_CLIENT_ID, op)


def test_dedup_key_matches_for_reinvocation():
    """A reissued request (same client uid, same request id) maps to the
    same key — the property gateway failover relies on (section 3.5)."""
    first = dedup_key(1, "ftclient/browser/1#1", external_operation_id(42))
    reissued = dedup_key(1, "ftclient/browser/1#1", external_operation_id(42))
    assert first == reissued


def test_unused_client_id_collides_with_no_counter_or_uid():
    assert UNUSED_CLIENT_ID != 0
    assert UNUSED_CLIENT_ID > 2**31  # above any plausible counter value
    assert not isinstance(UNUSED_CLIENT_ID, str)


@given(st.integers(0, 2**32), st.integers(0, 2**16),
       st.integers(0, 2**32), st.integers(0, 2**16))
def test_distinct_parents_never_collide_property(ts1, seq1, ts2, seq2):
    op1, op2 = OperationId(ts1, seq1), OperationId(ts2, seq2)
    if (ts1, seq1) != (ts2, seq2):
        assert op1 != op2
    else:
        assert op1 == op2


@given(st.lists(st.tuples(st.integers(1, 1000), st.integers(1, 50)),
                min_size=1, max_size=200, unique=True))
def test_operation_ids_unique_across_parent_children_property(pairs):
    """Totem timestamps are unique, child counters restart per parent:
    the pair is globally unique — the paper's uniqueness argument."""
    ids = {OperationId(ts, seq) for ts, seq in pairs}
    assert len(ids) == len(pairs)
