"""Common Data Representation (CDR) encoding and decoding.

CDR is the marshalling format underneath GIOP/IIOP (CORBA 2.3, chapter
15).  This module implements the subset the reproduction needs, but
implements it properly: natural alignment relative to the start of the
stream, both byte orders, primitive types, strings (with trailing NUL),
octet sequences, and nested encapsulations (which restart alignment and
carry their own endianness octet).

The gateway genuinely decodes these bytes off a simulated TCP stream,
so correctness here is load-bearing for the whole reproduction — and
because every request and reply crosses this code at least twice, it is
also one of the hottest wall-clock paths in the simulator.  Two
optimisations keep it fast without changing a single wire byte:

* every primitive codec is a precompiled :class:`struct.Struct` (one
  per (kind, byte order)), so encoding never rebuilds a format string
  and decoding uses ``unpack_from`` straight off the underlying buffer
  — no per-read slice allocation;
* :class:`CdrInputStream` accepts any bytes-like object (``bytes``,
  ``bytearray``, ``memoryview``), which lets callers hand it borrowed
  views of larger buffers instead of copies.
"""

from __future__ import annotations

import struct

from ..errors import MarshalError

BIG_ENDIAN = False  # CDR flag value: False/0 means big-endian
LITTLE_ENDIAN = True

_ALIGNMENT = {
    "short": 2, "ushort": 2,
    "long": 4, "ulong": 4, "float": 4,
    "longlong": 8, "ulonglong": 8, "double": 8,
}

_FORMATS = {
    "short": "h", "ushort": "H",
    "long": "i", "ulong": "I",
    "longlong": "q", "ulonglong": "Q",
    "float": "f", "double": "d",
}

# Precompiled codecs: (kind, little_endian) -> struct.Struct.  Built
# once at import; every numeric read/write goes through these.
_CODECS = {
    (kind, little): struct.Struct(("<" if little else ">") + fmt)
    for kind, fmt in _FORMATS.items()
    for little in (False, True)
}


class CdrOutputStream:
    """Append-only CDR encoder."""

    def __init__(self, little_endian: bool = False) -> None:
        self.little_endian = little_endian
        self._buffer = bytearray()

    def __len__(self) -> int:
        return len(self._buffer)

    def getvalue(self) -> bytes:
        return bytes(self._buffer)

    def getvalue_from(self, offset: int) -> bytes:
        """The encoded bytes from ``offset`` on, in a single copy."""
        with memoryview(self._buffer) as view:
            return bytes(view[offset:])

    # -- alignment ------------------------------------------------------

    def align(self, boundary: int) -> None:
        remainder = len(self._buffer) % boundary
        if remainder:
            self._buffer.extend(b"\x00" * (boundary - remainder))

    # -- primitives -----------------------------------------------------

    def write_octet(self, value: int) -> None:
        if not 0 <= value <= 0xFF:
            raise MarshalError(f"octet out of range: {value}")
        self._buffer.append(value)

    def write_boolean(self, value: bool) -> None:
        self._buffer.append(1 if value else 0)

    def write_char(self, value: str) -> None:
        if len(value) != 1:
            raise MarshalError(f"char must be a single character: {value!r}")
        self._buffer.extend(value.encode("latin-1"))

    def _write_numeric(self, kind: str, value) -> None:
        self.align(_ALIGNMENT[kind])
        codec = _CODECS[kind, self.little_endian]
        try:
            self._buffer.extend(codec.pack(value))
        except struct.error as exc:
            raise MarshalError(f"cannot encode {kind} {value!r}: {exc}") from exc

    def write_short(self, value: int) -> None:
        self._write_numeric("short", value)

    def write_ushort(self, value: int) -> None:
        self._write_numeric("ushort", value)

    def write_long(self, value: int) -> None:
        self._write_numeric("long", value)

    def write_ulong(self, value: int) -> None:
        self._write_numeric("ulong", value)

    def write_longlong(self, value: int) -> None:
        self._write_numeric("longlong", value)

    def write_ulonglong(self, value: int) -> None:
        self._write_numeric("ulonglong", value)

    def write_float(self, value: float) -> None:
        self._write_numeric("float", value)

    def write_double(self, value: float) -> None:
        self._write_numeric("double", value)

    # -- constructed types ----------------------------------------------

    def write_string(self, value: str) -> None:
        """CORBA string: ulong length including trailing NUL, bytes, NUL."""
        encoded = value.encode("utf-8")
        if b"\x00" in encoded:
            raise MarshalError("CORBA strings cannot contain NUL")
        self.write_ulong(len(encoded) + 1)
        self._buffer.extend(encoded)
        self._buffer.append(0)

    def write_octets(self, value: bytes) -> None:
        """sequence<octet>: ulong length then raw bytes."""
        self.write_ulong(len(value))
        self._buffer.extend(value)

    def write_raw(self, value: bytes) -> None:
        """Raw bytes with no length prefix (already-encoded material)."""
        self._buffer.extend(value)

    def patch_raw(self, offset: int, value: bytes) -> None:
        """Overwrite already-written bytes in place (e.g. a reserved
        header slot filled in once the body length is known)."""
        end = offset + len(value)
        if offset < 0 or end > len(self._buffer):
            raise MarshalError(
                f"patch of {len(value)} bytes at {offset} outside stream "
                f"of {len(self._buffer)}"
            )
        self._buffer[offset:end] = value

    def write_encapsulation(self, build_fn) -> None:
        """Write a CDR encapsulation produced by ``build_fn(inner_stream)``.

        Encapsulations are octet sequences whose first octet records the
        byte order of the interior; alignment restarts at offset zero.
        """
        inner = CdrOutputStream(little_endian=self.little_endian)
        inner.write_boolean(self.little_endian)
        build_fn(inner)
        self.write_octets(inner.getvalue())


class CdrInputStream:
    """Cursor-based CDR decoder over any immutable bytes-like buffer.

    Numeric reads decode in place with precompiled ``unpack_from``
    codecs — the cursor moves, but no intermediate slice is allocated.
    ``bytes``-returning reads (strings, octet sequences, raw spans)
    still copy, because their results outlive the stream.
    """

    def __init__(self, data, little_endian: bool = False) -> None:
        self._data = data
        self._len = len(data)
        self._pos = 0
        self.little_endian = little_endian

    @property
    def position(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return self._len - self._pos

    def align(self, boundary: int) -> None:
        remainder = self._pos % boundary
        if remainder:
            self._pos += boundary - remainder

    def _take(self, count: int) -> bytes:
        if count < 0:
            raise MarshalError(f"negative CDR read of {count} bytes")
        pos = self._pos
        if pos + count > self._len:
            raise MarshalError(
                f"CDR underflow: need {count} bytes at {pos}, have {self._len}"
            )
        chunk = self._data[pos:pos + count]
        self._pos = pos + count
        return chunk if type(chunk) is bytes else bytes(chunk)

    # -- primitives -----------------------------------------------------

    def read_octet(self) -> int:
        pos = self._pos
        if pos >= self._len:
            raise MarshalError(
                f"CDR underflow: need 1 byte at {pos}, have {self._len}")
        self._pos = pos + 1
        return self._data[pos]

    def read_boolean(self) -> bool:
        return self.read_octet() != 0

    def read_char(self) -> str:
        return self._take(1).decode("latin-1")

    def _read_numeric(self, kind: str):
        self.align(_ALIGNMENT[kind])
        codec = _CODECS[kind, self.little_endian]
        pos = self._pos
        end = pos + codec.size
        if end > self._len:
            raise MarshalError(
                f"CDR underflow: need {codec.size} bytes at {pos}, "
                f"have {self._len}"
            )
        self._pos = end
        return codec.unpack_from(self._data, pos)[0]

    def read_short(self) -> int:
        return self._read_numeric("short")

    def read_ushort(self) -> int:
        return self._read_numeric("ushort")

    def read_long(self) -> int:
        return self._read_numeric("long")

    def read_ulong(self) -> int:
        return self._read_numeric("ulong")

    def read_longlong(self) -> int:
        return self._read_numeric("longlong")

    def read_ulonglong(self) -> int:
        return self._read_numeric("ulonglong")

    def read_float(self) -> float:
        return self._read_numeric("float")

    def read_double(self) -> float:
        return self._read_numeric("double")

    # -- constructed types ----------------------------------------------

    def read_string(self) -> str:
        length = self.read_ulong()
        if length == 0:
            raise MarshalError("CORBA string length 0 is invalid (must include NUL)")
        raw = self._take(length)
        if raw[-1] != 0:
            raise MarshalError("CORBA string missing trailing NUL")
        return raw[:-1].decode("utf-8")

    def read_octets(self) -> bytes:
        length = self.read_ulong()
        return self._take(length)

    def read_raw(self, count: int) -> bytes:
        return self._take(count)

    def skip(self, count: int) -> None:
        """Advance the cursor without materialising the spanned bytes."""
        if count < 0:
            raise MarshalError(f"negative CDR skip of {count} bytes")
        if self._pos + count > self._len:
            raise MarshalError(
                f"CDR underflow: need {count} bytes at {self._pos}, "
                f"have {self._len}"
            )
        self._pos += count

    def read_encapsulation(self) -> "CdrInputStream":
        """Read an octet-sequence encapsulation; returns an inner stream
        positioned after its endianness octet."""
        raw = self.read_octets()
        if not raw:
            raise MarshalError("empty CDR encapsulation")
        inner = CdrInputStream(raw)
        inner.little_endian = inner.read_boolean()
        return inner


def encapsulate(build_fn, little_endian: bool = False) -> bytes:
    """Build a standalone encapsulation (endianness octet + body)."""
    out = CdrOutputStream(little_endian=little_endian)
    out.write_boolean(little_endian)
    build_fn(out)
    return out.getvalue()


def decapsulate(data: bytes) -> CdrInputStream:
    """Open a standalone encapsulation produced by :func:`encapsulate`."""
    stream = CdrInputStream(data)
    if stream.remaining == 0:
        raise MarshalError("empty CDR encapsulation")
    stream.little_endian = stream.read_boolean()
    return stream
