"""Property-based tests: the registry converges under any idempotent
control sequence applied in the same order, regardless of duplication.

This is the backbone of the decentralised design: every processor
applies the same control stream (total order), possibly with duplicated
control messages (replicated managers emit redundantly), and must end
with an identical directory.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eternal import GroupInfo, GroupRegistry, ReplicationStyle

HOSTS = ["h0", "h1", "h2", "h3"]

ops = st.one_of(
    st.tuples(st.just("announce"), st.integers(10, 14),
              st.sampled_from(["A", "B", "C"])),
    st.tuples(st.just("add"), st.integers(10, 14), st.sampled_from(HOSTS)),
    st.tuples(st.just("remove_replica"), st.integers(10, 14),
              st.sampled_from(HOSTS)),
    st.tuples(st.just("remove"), st.integers(10, 14), st.none()),
    st.tuples(st.just("prune"), st.lists(st.sampled_from(HOSTS),
                                         min_size=1, unique=True), st.none()),
)


def apply(registry, op):
    kind, a, b = op
    if kind == "announce":
        registry.announce(GroupInfo(
            group_id=a, name=f"{b}{a}", interface_name="I",
            factory_name="f", style=ReplicationStyle.ACTIVE,
            placement=tuple(HOSTS[: (a % 3) + 1])))
    elif kind == "add":
        registry.add_replica(a, b)
    elif kind == "remove_replica":
        registry.remove_replica(a, b)
    elif kind == "remove":
        registry.remove(a)
    elif kind == "prune":
        registry.prune_dead_hosts(a)


def snapshot(registry):
    return tuple((g.group_id, g.name, g.placement, g.version)
                 for g in registry.all_groups())


@settings(max_examples=200)
@given(st.lists(ops, max_size=40))
def test_same_sequence_same_registry_property(sequence):
    a, b = GroupRegistry(), GroupRegistry()
    for op in sequence:
        apply(a, op)
        apply(b, op)
    assert snapshot(a) == snapshot(b)


@settings(max_examples=200)
@given(st.lists(ops, max_size=30), st.data())
def test_duplicated_controls_do_not_diverge_property(sequence, data):
    """Registry B sees every operation one or more times (as when
    several manager replicas emit the same control); it must still end
    identical to registry A which saw each exactly once."""
    a, b = GroupRegistry(), GroupRegistry()
    for op in sequence:
        apply(a, op)
        repeats = data.draw(st.integers(1, 3))
        for _ in range(repeats):
            apply(b, op)
    assert snapshot(a) == snapshot(b)


@settings(max_examples=100)
@given(st.lists(ops, max_size=30))
def test_primary_is_always_live_or_none_property(sequence):
    registry = GroupRegistry()
    for op in sequence:
        apply(registry, op)
    live = ["h0", "h2"]
    for info in registry.all_groups():
        primary = info.primary(live)
        assert primary is None or primary in live
        assert primary is None or primary in info.placement
