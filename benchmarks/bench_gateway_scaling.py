"""E10 (section 3.2): one gateway multiplexing many TCP clients.

The gateway keeps one spawned socket and one counter-assigned client id
per external client; routing uses (destination group, source group,
TCP client id) collectively.  This benchmark sweeps the number of
concurrent clients and reports:

* simulated completion time for a fixed total workload (the shape:
  concurrency amortises WAN latency until the total-order ring
  serialises everything);
* bookkeeping correctness at scale: distinct client ids, per-client
  response routing, zero misdeliveries.
"""

import pytest

from repro import World

from common import build_domain, counter_group, external_stub

TOTAL_REQUESTS = 24


def run_clients(num_clients, trace_spans=False, series=False):
    """Run the fixed workload; ``trace_spans`` turns on causal tracing
    (used by ``tools/bench_compare.py --trace-overhead`` to measure the
    instrumentation cost against the default untraced run) and
    ``series`` arms the time-series registry the same way for
    ``--series-overhead``.  Neither may change the returned simulated
    row; the enabled series snapshot is exposed out-of-band as
    ``run_clients.last_series`` so the overhead gate can report per-group
    latency aggregates without perturbing the comparison."""
    world = World(seed=1000 + num_clients, trace=False,
                  trace_spans=trace_spans, series=series)
    domain = build_domain(world, gateways=1)
    group = counter_group(domain)
    stubs = []
    for i in range(num_clients):
        stub, _ = external_stub(world, domain, group, enhanced=False,
                                host_name=f"client{i}")
        stubs.append(stub)
    per_client = TOTAL_REQUESTS // num_clients
    t0 = world.now
    promises = []

    def issue_chain(stub, remaining):
        """Each client works sequentially: next request on completion."""
        promise = stub.call("increment", 1)
        promises.append(promise)
        if remaining > 1:
            promise.on_done(lambda _p: issue_chain(stub, remaining - 1))

    for stub in stubs:
        issue_chain(stub, per_client)
    world.scheduler.run_until(
        lambda: len(promises) == TOTAL_REQUESTS and
        all(p.done for p in promises), timeout=600)
    elapsed = world.now - t0
    world.run(until=world.now + 0.5)
    gateway = domain.gateways[0]
    run_clients.last_series = (world.series.snapshot(world.now)
                               if series else None)
    results = sorted(p.result() for p in promises)
    return {
        "clients": num_clients,
        "total_requests": len(promises),
        "simulated_completion_s": round(elapsed, 4),
        "distinct_client_ids": len({cid for cid in gateway._conn_ids.values()}),
        "responses_delivered": gateway.stats["responses_delivered"],
        "responses_unroutable": gateway.stats["responses_unroutable"],
        "serializable": results == list(range(1, len(promises) + 1)),
    }


@pytest.mark.parametrize("clients", [1, 2, 4, 8])
def test_gateway_scaling_clients(benchmark, clients):
    row = benchmark.pedantic(run_clients, args=(clients,), rounds=1,
                             iterations=1)
    assert row["distinct_client_ids"] == clients
    assert row["responses_delivered"] == row["total_requests"]
    assert row["responses_unroutable"] == 0
    assert row["serializable"]  # the total order serialised all updates
    benchmark.extra_info.update(row)


def test_gateway_scaling_concurrency_amortises_latency(benchmark):
    def run():
        return {n: run_clients(n)["simulated_completion_s"] for n in (1, 8)}

    latencies = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {f"completion_{k}_clients_s": v for k, v in latencies.items()})
    # 8 clients issue the same total workload concurrently: wall-clock
    # (simulated) completion must drop substantially vs 1 client.
    assert latencies[8] < latencies[1] * 0.7
