"""Protocol-surface extraction + conformance rules (FLOW001/002/003).

The protocol surface of this reproduction has four families:

* **Domain control messages** — members of the ``MsgKind`` enum
  (``config.msg_kind_classes``).  A *send site* is a ``MsgKind.X``
  reference used as a call argument (``DomainMessage(kind=MsgKind.X)``);
  a *dispatch site* is one used in a comparison (``kind is MsgKind.X``,
  ``kind in (MsgKind.A, ...)``) or as a dict-dispatch key.
* **Totem wire messages** — top-level classes of
  ``config.totem_message_modules``.  A send site is a construction
  outside the defining module; a dispatch site is an ``isinstance``
  check or a class-keyed dict whose values are callables.
* **GIOP codecs** — top-level ``encode_X``/``decode_X`` functions of
  ``config.giop_codec_modules``, paired by suffix, plus the ``MsgType``
  octet constants (inventoried in the dump).
* **Observability kinds** — flight-recorder event kinds and trace span
  names (dump inventory only; the catalogue contract is OBS001's job).

Cross-checks:

* **FLOW001** — a message kind with send sites but no dispatch site:
  the wire can carry it, nothing will ever act on it.
* **FLOW002** — dead protocol surface: a kind dispatched but never
  sent, a kind neither sent nor dispatched, or a codec function no
  code in the project calls (resolved through the call graph, so
  package re-exports count).
* **FLOW003** — codec asymmetry: an ``encode_X`` with no ``decode_X``
  or vice versa.  Header-only messages that legitimately need no body
  decoder carry justified suppressions at the definition.

All extraction is over the lint run's own parsed files: linting a
subset of the tree (a single fixture file, one package) checks exactly
that subset's surface against itself.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .callgraph import _aliases_for, _resolve, build_callgraph
from .lint import LintContext, ProjectContext, ProjectRule, Violation


@dataclass(frozen=True)
class Ref:
    """One source location inside the linted set."""

    path: str
    line: int
    col: int
    snippet: str = ""


@dataclass
class KindUsage:
    """Send/dispatch sites of one message-kind enum member."""

    member: str
    definition: Optional[Ref] = None
    sends: List[Ref] = field(default_factory=list)
    dispatches: List[Ref] = field(default_factory=list)


@dataclass
class WireClassUsage:
    """Construction/dispatch sites of one Totem wire-message class."""

    qname: str
    definition: Optional[Ref] = None
    constructs: List[Ref] = field(default_factory=list)
    dispatches: List[Ref] = field(default_factory=list)


@dataclass
class CodecPair:
    """The ``encode_X``/``decode_X`` functions for one message suffix."""

    suffix: str
    encoder: Optional[Ref] = None
    decoder: Optional[Ref] = None
    encoder_qname: Optional[str] = None
    decoder_qname: Optional[str] = None


@dataclass
class ProtocolSurface:
    """Everything the protocol rules cross-check, plus dump inventory."""

    #: kind-class name -> member name -> usage.
    kinds: Dict[str, Dict[str, KindUsage]] = field(default_factory=dict)
    #: wire-class qname -> usage.
    wire_classes: Dict[str, WireClassUsage] = field(default_factory=dict)
    #: codec suffix -> pair.
    codecs: Dict[str, CodecPair] = field(default_factory=dict)
    #: GIOP MsgType constant name -> octet value (dump inventory).
    giop_msg_types: Dict[str, int] = field(default_factory=dict)
    #: Flight-recorder event kinds seen at ``.record("a.b", ...)`` sites.
    flight_kinds: List[str] = field(default_factory=list)
    #: Trace span names seen at ``.start(_, "a.b")``/``.instant`` sites.
    span_names: List[str] = field(default_factory=list)


def _ref(ctx: LintContext, node: ast.AST) -> Ref:
    line = getattr(node, "lineno", 1)
    return Ref(path=ctx.path, line=line,
               col=getattr(node, "col_offset", 0),
               snippet=ctx.line_text(line))


def _callable_ish(node: ast.AST) -> bool:
    """Would this dict value dispatch (a handler), not just label?"""
    return isinstance(node, (ast.Name, ast.Attribute, ast.Lambda))


class _SurfaceBuilder:
    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self.config = project.config
        self.surface = ProtocolSurface()
        self._wire_by_name: Dict[str, str] = {}  # class name -> qname

    def build(self) -> ProtocolSurface:
        for ctx in self.project.contexts:
            self._collect_definitions(ctx)
        for ctx in self.project.contexts:
            aliases = _aliases_for(ctx)
            self._collect_kind_sites(ctx)
            self._collect_wire_sites(ctx, aliases)
            self._collect_obs_names(ctx)
        self.surface.flight_kinds = sorted(set(self.surface.flight_kinds))
        self.surface.span_names = sorted(set(self.surface.span_names))
        return self.surface

    # -- definitions ---------------------------------------------------

    def _collect_definitions(self, ctx: LintContext) -> None:
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                if node.name in self.config.msg_kind_classes:
                    self._collect_kind_members(ctx, node)
                if ctx.module in self.config.totem_message_modules:
                    qname = f"{ctx.module}.{node.name}"
                    self.surface.wire_classes[qname] = WireClassUsage(
                        qname=qname, definition=_ref(ctx, node))
                    self._wire_by_name[node.name] = qname
                if (node.name == "MsgType"
                        and ctx.module in self.config.giop_codec_modules):
                    self._collect_msg_types(node)
            elif (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and ctx.module in self.config.giop_codec_modules):
                for prefix, slot in (("encode_", "encoder"),
                                     ("decode_", "decoder")):
                    if not node.name.startswith(prefix):
                        continue
                    suffix = node.name[len(prefix):]
                    pair = self.surface.codecs.setdefault(
                        suffix, CodecPair(suffix=suffix))
                    setattr(pair, slot, _ref(ctx, node))
                    setattr(pair, f"{slot}_qname",
                            f"{ctx.module}.{node.name}")

    def _collect_kind_members(self, ctx: LintContext,
                              node: ast.ClassDef) -> None:
        table = self.surface.kinds.setdefault(node.name, {})
        for item in node.body:
            if (isinstance(item, ast.Assign) and len(item.targets) == 1
                    and isinstance(item.targets[0], ast.Name)
                    and item.targets[0].id.isupper()):
                member = item.targets[0].id
                table.setdefault(member, KindUsage(member=member))
                table[member].definition = _ref(ctx, item)

    def _collect_msg_types(self, node: ast.ClassDef) -> None:
        for item in node.body:
            if (isinstance(item, ast.Assign) and len(item.targets) == 1
                    and isinstance(item.targets[0], ast.Name)
                    and isinstance(item.value, ast.Constant)
                    and isinstance(item.value.value, int)):
                self.surface.giop_msg_types[item.targets[0].id] = (
                    item.value.value)

    # -- MsgKind send/dispatch sites ----------------------------------

    def _kind_member(self, node: ast.AST) -> Optional[Tuple[str, str]]:
        """(kind-class name, member) if ``node`` is ``MsgKind.X``."""
        if not isinstance(node, ast.Attribute):
            return None
        holder = node.value
        name = (holder.id if isinstance(holder, ast.Name)
                else holder.attr if isinstance(holder, ast.Attribute)
                else None)
        if name is None or name not in self.surface.kinds:
            return None
        if node.attr in self.surface.kinds[name]:
            return name, node.attr
        return None

    def _note_kind(self, ctx: LintContext, node: ast.AST,
                   bucket: str) -> None:
        found = self._kind_member(node)
        if found is None:
            return
        cls_name, member = found
        usage = self.surface.kinds[cls_name][member]
        refs = usage.sends if bucket == "send" else usage.dispatches
        refs.append(_ref(ctx, node))

    def _collect_kind_sites(self, ctx: LintContext) -> None:
        if not self.surface.kinds:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                for arg in node.args:
                    self._note_kind(ctx, arg, "send")
                for keyword in node.keywords:
                    self._note_kind(ctx, keyword.value, "send")
            elif isinstance(node, ast.Compare):
                for side in [node.left, *node.comparators]:
                    self._note_kind(ctx, side, "dispatch")
                    if isinstance(side, (ast.Tuple, ast.List, ast.Set)):
                        for element in side.elts:
                            self._note_kind(ctx, element, "dispatch")
            elif isinstance(node, ast.Dict):
                if not all(_callable_ish(v) for v in node.values):
                    continue
                for key in node.keys:
                    if key is not None:
                        self._note_kind(ctx, key, "dispatch")
            elif isinstance(node, ast.match_case):
                for sub in ast.walk(node.pattern):
                    if isinstance(sub, ast.MatchValue):
                        self._note_kind(ctx, sub.value, "dispatch")

    # -- Totem wire-class sites ---------------------------------------

    def _wire_qname(self, node: ast.AST,
                    aliases: Dict[str, str]) -> Optional[str]:
        origin = _resolve(node, aliases)
        if origin is None:
            return None
        if origin in self.surface.wire_classes:
            return origin
        return self._wire_by_name.get(origin)

    def _collect_wire_sites(self, ctx: LintContext,
                            aliases: Dict[str, str]) -> None:
        if not self.surface.wire_classes:
            return
        defining = ctx.module in self.config.totem_message_modules
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                if (isinstance(node.func, ast.Name)
                        and node.func.id == "isinstance"
                        and len(node.args) == 2):
                    probe = node.args[1]
                    candidates = (probe.elts
                                  if isinstance(probe, ast.Tuple)
                                  else [probe])
                    for candidate in candidates:
                        qname = self._wire_qname(candidate, aliases)
                        if qname is not None:
                            self.surface.wire_classes[qname].dispatches \
                                .append(_ref(ctx, candidate))
                    continue
                qname = self._wire_qname(node.func, aliases)
                if qname is not None and not defining:
                    self.surface.wire_classes[qname].constructs.append(
                        _ref(ctx, node))
            elif isinstance(node, ast.Dict):
                if not all(_callable_ish(v) for v in node.values):
                    continue
                for key in node.keys:
                    if key is None:
                        continue
                    qname = self._wire_qname(key, aliases)
                    if qname is not None:
                        self.surface.wire_classes[qname].dispatches.append(
                            _ref(ctx, key))

    # -- observability inventory (dump only) --------------------------

    def _collect_obs_names(self, ctx: LintContext) -> None:
        if not ctx.module.startswith("repro"):
            return
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            attr = node.func.attr
            if attr == "record" and node.args:
                first = node.args[0]
                if (isinstance(first, ast.Constant)
                        and isinstance(first.value, str)
                        and "." in first.value):
                    self.surface.flight_kinds.append(first.value)
            elif attr in ("start", "instant") and len(node.args) >= 2:
                second = node.args[1]
                if (isinstance(second, ast.Constant)
                        and isinstance(second.value, str)
                        and "." in second.value):
                    self.surface.span_names.append(second.value)


def build_protocol_surface(project: ProjectContext) -> ProtocolSurface:
    """The run's shared protocol surface (built once, memoised)."""
    return project.cached(
        "protocol", lambda: _SurfaceBuilder(project).build())


def render_protocol_json(project: ProjectContext) -> Dict[str, object]:
    """The ``--protocol-dump`` payload (schema in docs/STATIC_ANALYSIS.md)."""
    surface = build_protocol_surface(project)

    def refs(items: List[Ref]) -> List[Dict[str, object]]:
        return [{"path": r.path, "line": r.line} for r in items]

    return {
        "schema": 1,
        "kinds": {
            cls: {
                member: {"sends": refs(usage.sends),
                         "dispatches": refs(usage.dispatches)}
                for member, usage in sorted(table.items())}
            for cls, table in sorted(surface.kinds.items())},
        "wire_classes": {
            qname: {"constructs": refs(usage.constructs),
                    "dispatches": refs(usage.dispatches)}
            for qname, usage in sorted(surface.wire_classes.items())},
        "codecs": {
            suffix: {"encoder": pair.encoder_qname,
                     "decoder": pair.decoder_qname}
            for suffix, pair in sorted(surface.codecs.items())},
        "giop_msg_types": dict(sorted(surface.giop_msg_types.items())),
        "flight_kinds": surface.flight_kinds,
        "span_names": surface.span_names,
    }


# ----------------------------------------------------------------------
# FLOW001 / FLOW002 / FLOW003
# ----------------------------------------------------------------------


def _violation(code: str, message: str, ref: Ref) -> Violation:
    return Violation(code=code, message=message, path=ref.path,
                     line=ref.line, col=ref.col, snippet=ref.snippet)


class SentNeverHandledRule(ProjectRule):
    """FLOW001: a message kind the system can send but never acts on."""

    code = "FLOW001"
    name = "sent-never-handled"
    description = "message kind sent/encoded but never handled/dispatched"

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        surface = build_protocol_surface(project)
        for cls, table in sorted(surface.kinds.items()):
            for member, usage in sorted(table.items()):
                if usage.sends and not usage.dispatches:
                    anchor = min(usage.sends,
                                 key=lambda r: (r.path, r.line))
                    yield _violation(
                        self.code,
                        f"`{cls}.{member}` is sent here but no dispatch "
                        "site handles it; every sendable kind needs a "
                        "live handler", anchor)
        for qname, usage in sorted(surface.wire_classes.items()):
            if usage.constructs and not usage.dispatches:
                anchor = min(usage.constructs,
                             key=lambda r: (r.path, r.line))
                yield _violation(
                    self.code,
                    f"wire message `{qname}` is constructed here but "
                    "never dispatched (no isinstance/table entry)", anchor)


class DeadHandlerRule(ProjectRule):
    """FLOW002: dead protocol surface — handlers (or kinds, or codecs)
    nothing can reach."""

    code = "FLOW002"
    name = "dead-handler"
    description = ("handler/codec/kind that no send site can ever reach")

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        surface = build_protocol_surface(project)
        graph = build_callgraph(project)
        for cls, table in sorted(surface.kinds.items()):
            for member, usage in sorted(table.items()):
                if usage.sends:
                    continue
                if usage.dispatches:
                    anchor = min(usage.dispatches,
                                 key=lambda r: (r.path, r.line))
                    yield _violation(
                        self.code,
                        f"dead handler: `{cls}.{member}` is dispatched "
                        "here but nothing ever sends it", anchor)
                elif usage.definition is not None:
                    yield _violation(
                        self.code,
                        f"dead message kind: `{cls}.{member}` is neither "
                        "sent nor handled anywhere in the linted set",
                        usage.definition)
        for qname, usage in sorted(surface.wire_classes.items()):
            if usage.dispatches and not usage.constructs:
                anchor = min(usage.dispatches,
                             key=lambda r: (r.path, r.line))
                yield _violation(
                    self.code,
                    f"dead handler: wire message `{qname}` is dispatched "
                    "here but never constructed", anchor)
        for _suffix, pair in sorted(surface.codecs.items()):
            for qname, ref in ((pair.encoder_qname, pair.encoder),
                               (pair.decoder_qname, pair.decoder)):
                if qname is None or ref is None:
                    continue
                if not graph.callers(qname):
                    yield _violation(
                        self.code,
                        f"dead codec: no code in the linted set calls "
                        f"`{qname}`", ref)


class CodecAsymmetryRule(ProjectRule):
    """FLOW003: an encoder with no decoder, or vice versa."""

    code = "FLOW003"
    name = "codec-asymmetry"
    description = "encode_X/decode_X codec pair is asymmetric"

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        surface = build_protocol_surface(project)
        for suffix, pair in sorted(surface.codecs.items()):
            if pair.encoder is not None and pair.decoder is None:
                yield _violation(
                    self.code,
                    f"`encode_{suffix}` has no matching "
                    f"`decode_{suffix}`; peers cannot parse what this "
                    "side can emit", pair.encoder)
            elif pair.decoder is not None and pair.encoder is None:
                yield _violation(
                    self.code,
                    f"`decode_{suffix}` has no matching "
                    f"`encode_{suffix}`; this side parses a shape it "
                    "can never produce", pair.decoder)
