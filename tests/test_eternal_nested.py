"""Integration tests: nested invocations and Figure 6 identifiers."""

import pytest

from repro import NestedCall, ReplicationStyle, Servant, World
from repro.apps import (
    ACCOUNT_INTERFACE,
    AccountServant,
    LEDGER_INTERFACE,
    LedgerServant,
    TRANSFER_INTERFACE,
    TransferAgentServant,
)
from repro.errors import InvocationFailure
from repro.iiop import TC_LONG, TC_STRING
from repro.orb import Interface, Operation, Param

from tests.helpers import make_domain


def make_bank(world, num_hosts=4, style=ReplicationStyle.ACTIVE):
    domain = make_domain(world, num_hosts=num_hosts)
    accounts = domain.create_group("Accounts", ACCOUNT_INTERFACE,
                                   AccountServant, style=style)
    ledger = domain.create_group("Ledger", LEDGER_INTERFACE, LedgerServant,
                                 style=style)
    agent = domain.create_group("Transfers", TRANSFER_INTERFACE,
                                TransferAgentServant, style=style)
    return domain, accounts, ledger, agent


def ledger_entries(domain, ledger):
    for rm in domain.rms.values():
        record = rm.replicas.get(ledger.group_id)
        if record is not None:
            return list(record.servant.log)
    return []


def test_transfer_chains_three_nested_calls(world):
    domain, accounts, ledger, agent = make_bank(world)
    world.await_promise(accounts.invoke("deposit", "alice", 100))
    result = world.await_promise(agent.invoke("transfer", "alice", "bob", 40))
    assert result == 40  # bob's new balance
    assert world.await_promise(accounts.invoke("balance", "alice")) == 60
    assert world.await_promise(ledger.invoke("entries")) == 1


def test_nested_calls_execute_exactly_once_despite_replication(world):
    """Three TransferAgent replicas each issue the nested calls; the
    Figure 6 operation identifiers make the targets execute them once."""
    domain, accounts, ledger, agent = make_bank(world)
    world.await_promise(accounts.invoke("deposit", "alice", 100))
    world.await_promise(agent.invoke("transfer", "alice", "bob", 10))
    world.run(until=world.now + 0.2)
    assert ledger_entries(domain, ledger) == ["alice->bob:10"]
    # Every accounts replica applied the withdraw+deposit exactly once.
    for rm in domain.rms.values():
        record = rm.replicas.get(accounts.group_id)
        if record is not None:
            assert record.servant.balances == {"alice": 90, "bob": 10}


def test_sequential_transfers_keep_books_balanced(world):
    domain, accounts, ledger, agent = make_bank(world)
    world.await_promise(accounts.invoke("deposit", "alice", 1000))
    for i in range(5):
        world.await_promise(agent.invoke("transfer", "alice", "bob", 100))
    assert world.await_promise(accounts.invoke("balance", "alice")) == 500
    assert world.await_promise(accounts.invoke("balance", "bob")) == 500
    assert world.await_promise(ledger.invoke("entries")) == 5


def test_nested_user_exception_propagates_to_parent(world):
    domain, accounts, ledger, agent = make_bank(world)
    # alice has no funds: the nested withdraw raises InsufficientFunds,
    # which surfaces through the transfer generator to the caller.
    with pytest.raises(InvocationFailure) as excinfo:
        world.await_promise(agent.invoke("transfer", "alice", "bob", 40))
    assert "InsufficientFunds" in excinfo.value.repo_id
    # No partial effects: the deposit and ledger record never ran.
    assert world.await_promise(accounts.invoke("balance", "bob")) == 0
    assert world.await_promise(ledger.invoke("entries")) == 0


def test_servant_can_catch_nested_exception(world):
    CAREFUL = Interface("Careful", [
        Operation("try_transfer", [Param("amount", TC_LONG)], TC_STRING),
    ])

    class CarefulServant(Servant):
        interface = CAREFUL

        def try_transfer(self, amount):
            try:
                yield NestedCall("Accounts", "withdraw", ["nobody", amount])
            except InvocationFailure:
                return "declined"
            return "ok"

    domain, accounts, ledger, agent = make_bank(world)
    careful = domain.create_group("Careful", CAREFUL, CarefulServant)
    assert world.await_promise(careful.invoke("try_transfer", 5)) == "declined"


def test_nested_chain_two_levels_deep(world):
    """Parent -> TransferAgent -> Accounts/Ledger: identifiers stay
    unique through multi-level nesting."""
    OUTER = Interface("Outer", [
        Operation("run", [], TC_LONG),
    ])

    class OuterServant(Servant):
        interface = OUTER

        def run(self):
            yield NestedCall("Accounts", "deposit", ["carol", 50])
            result = yield NestedCall("Transfers", "transfer",
                                      ["carol", "dave", 20])
            return result

    domain, accounts, ledger, agent = make_bank(world)
    outer = domain.create_group("Outer", OUTER, OuterServant)
    assert world.await_promise(outer.invoke("run"), timeout=60) == 20
    assert world.await_promise(accounts.invoke("balance", "carol")) == 30
    assert world.await_promise(accounts.invoke("balance", "dave")) == 20


def test_unknown_nested_target_raises_in_parent(world):
    BROKEN = Interface("Broken", [Operation("go", [], TC_LONG)])

    class BrokenServant(Servant):
        interface = BROKEN

        def go(self):
            result = yield NestedCall("NoSuchGroup", "op", [])
            return result

    domain = make_domain(world)
    broken = domain.create_group("Broken", BROKEN, BrokenServant)
    with pytest.raises(Exception):
        world.await_promise(broken.invoke("go"))


def test_operation_identifiers_derived_from_parent_timestamp(world):
    """Inspect the dedup tables: nested invocations carry op ids whose
    parent_ts equals the parent invocation's delivery timestamp and
    whose child_seq counts 1, 2, 3 (Figure 6)."""
    domain, accounts, ledger, agent = make_bank(world)
    world.await_promise(accounts.invoke("deposit", "alice", 100))
    world.await_promise(agent.invoke("transfer", "alice", "bob", 10))
    world.run(until=world.now + 0.2)
    rm = next(rm for rm in domain.rms.values()
              if accounts.group_id in rm.replicas)
    seen = rm._invocations_seen[accounts.group_id]
    nested_ops = [op for (src, client, op) in seen
                  if src == agent.group_id]
    assert len(nested_ops) == 2  # withdraw + deposit
    parents = {op.parent_ts for op in nested_ops}
    assert len(parents) == 1 and parents.pop() > 0
    assert sorted(op.child_seq for op in nested_ops) == [1, 2]


def test_transfer_agent_survives_replica_crash_mid_stream(world):
    domain, accounts, ledger, agent = make_bank(world, num_hosts=5)
    world.await_promise(accounts.invoke("deposit", "alice", 1000))
    world.await_promise(agent.invoke("transfer", "alice", "bob", 100))
    victim = agent.info().placement[0]
    world.faults.crash_now(victim)
    world.await_promise(agent.invoke("transfer", "alice", "bob", 100))
    assert world.await_promise(accounts.invoke("balance", "bob")) == 200
    assert world.await_promise(ledger.invoke("entries")) == 2
