#!/usr/bin/env python
"""Critical-path analysis of an exported causal trace.

Usage:
    python tools/trace_report.py trace.json [--top 5]
    python -m repro --trace-json | python tools/trace_report.py -

Consumes the Chrome ``trace_event`` JSON written by
``TraceCollector.export_chrome()`` (``python -m repro --trace-json``,
``World.trace_chrome_json()``) and prints, per invocation trace:

* the end-to-end latency (the root ``client.request`` or, for plain-ORB
  clients, the gateway-rooted ``gateway.request`` span);
* the latency breakdown across causal phases — ordering wait
  (``totem.order.*``), replica execution (``rm.execute``), gateway
  processing — and the residue (client/gateway transport, failover
  stalls);
* a slowest-invocations table (``--top``, default 5).

All numbers are *simulated* milliseconds; the breakdown is exact, not
sampled, because every hop of every invocation is recorded.

``--json`` replaces the tables with a canonical JSON document (sorted
keys, no whitespace — byte-identical for the same trace) holding the
per-trace critical-path rows plus the aggregate totals, for scripted
consumers and CI artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List

# Span names charged to each breakdown phase.  A span contributes its
# own duration; phases never overlap in the causal chain (ordering ends
# where execution begins, executions of different replicas overlap and
# are charged once via max, see _phase_time).
PHASES = (
    ("ordering", ("totem.order.invocation", "totem.order.response")),
    ("execution", ("rm.execute",)),
)


def load_events(path: str) -> List[Dict[str, Any]]:
    stream = sys.stdin if path == "-" else open(path)
    try:
        doc = json.load(stream)
    finally:
        if stream is not sys.stdin:
            stream.close()
    return [e for e in doc.get("traceEvents", []) if e.get("ph") == "X"]


def group_by_trace(events: List[Dict[str, Any]]) -> Dict[str, List[Dict[str, Any]]]:
    traces: Dict[str, List[Dict[str, Any]]] = {}
    for event in events:
        traces.setdefault(event["cat"], []).append(event)
    return traces


def _root(spans: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The trace's root: its earliest parentless span (the client root
    when the client is enhanced, the gateway container otherwise)."""
    roots = [s for s in spans if "parent_id" not in s.get("args", {})]
    return min(roots or spans, key=lambda s: (s["ts"], s["args"]["span_id"]))


def _phase_time(spans: List[Dict[str, Any]], names) -> int:
    """Total µs charged to a phase: overlapping intervals (e.g. the
    per-replica ``rm.execute`` spans of an active group) are merged so
    concurrent work counts once, like a wall-clock profiler."""
    intervals = sorted((s["ts"], s["ts"] + s["dur"])
                       for s in spans if s["name"] in names)
    total, cursor = 0, None
    for start, end in intervals:
        if cursor is None or start > cursor:
            total += end - start
            cursor = end
        elif end > cursor:
            total += end - cursor
            cursor = end
    return total


def analyze(traces: Dict[str, List[Dict[str, Any]]]) -> List[Dict[str, Any]]:
    rows = []
    for trace_id, spans in traces.items():
        root = _root(spans)
        total = root["dur"]
        row = {"trace": trace_id, "total_us": total,
               "op": root["args"].get("op", root["args"].get("client", "")),
               "root": root["name"], "hops": len(spans)}
        accounted = 0
        for phase, names in PHASES:
            charged = _phase_time(spans, names)
            row[phase + "_us"] = charged
            accounted += charged
        row["other_us"] = max(0, total - accounted)
        rows.append(row)
    return rows


def _ms(us: int) -> str:
    return f"{us / 1000:9.3f}"


def render(rows: List[Dict[str, Any]], top: int) -> str:
    lines = []
    header = (f"{'trace':<28} {'total ms':>9} {'ordering':>9} "
              f"{'execute':>9} {'other':>9} {'hops':>5}")
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(f"{row['trace']:<28} {_ms(row['total_us'])} "
                     f"{_ms(row['ordering_us'])} {_ms(row['execution_us'])} "
                     f"{_ms(row['other_us'])} {row['hops']:>5}")
    totals = {k: sum(r[k] for r in rows)
              for k in ("total_us", "ordering_us", "execution_us", "other_us")}
    lines.append("-" * len(header))
    lines.append(f"{'TOTAL':<28} {_ms(totals['total_us'])} "
                 f"{_ms(totals['ordering_us'])} {_ms(totals['execution_us'])} "
                 f"{_ms(totals['other_us'])} "
                 f"{sum(r['hops'] for r in rows):>5}")
    if totals["total_us"]:
        share = {k: 100.0 * totals[k] / totals["total_us"]
                 for k in ("ordering_us", "execution_us", "other_us")}
        lines.append(f"{'share of critical path':<28} {'100.0%':>9} "
                     f"{share['ordering_us']:>8.1f}% {share['execution_us']:>8.1f}% "
                     f"{share['other_us']:>8.1f}%")
    slowest = sorted(rows, key=lambda r: -r["total_us"])[:top]
    if slowest:
        lines.append("")
        lines.append(f"slowest {len(slowest)} invocations:")
        for row in slowest:
            lines.append(f"  {row['trace']:<28} {_ms(row['total_us'])} ms "
                         f"(root {row['root']}, {row['hops']} spans)")
    return "\n".join(lines)


def render_json(rows: List[Dict[str, Any]]) -> str:
    """Canonical JSON critical-path document (machine consumers)."""
    totals = {k: sum(r[k] for r in rows)
              for k in ("total_us", "ordering_us", "execution_us",
                        "other_us")}
    totals["hops"] = sum(r["hops"] for r in rows)
    document = {"schema": 1, "rows": rows, "totals": totals}
    return json.dumps(document, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="critical-path breakdown of an exported causal trace")
    parser.add_argument("trace", help="Chrome trace_event JSON file, or - "
                                      "for stdin")
    parser.add_argument("--top", type=int, default=5,
                        help="slowest-invocations table size (default 5)")
    parser.add_argument("--json", action="store_true",
                        help="emit the critical-path rows as canonical "
                             "JSON instead of the tables")
    args = parser.parse_args(argv)
    events = load_events(args.trace)
    if not events:
        if args.json:
            print(render_json([]))
        else:
            print("no spans in trace")
        return 1
    rows = analyze(group_by_trace(events))
    rows.sort(key=lambda r: r["trace"])
    if args.json:
        print(render_json(rows))
    else:
        print(render(rows, args.top))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
