#!/usr/bin/env python
"""race_sweep — replay golden scenarios under permuted tie-break orders.

Usage:
    python tools/race_sweep.py [--seeds 1,2,3] [--json report.json]
                               [--scenario NAME]

The dynamic companion to ``reprolint`` (docs/STATIC_ANALYSIS.md): runs
every golden scenario once on the stock scheduler, once in
identity-replay mode, and once per permutation seed, permuting the
order of same-instant network arrivals from *different* source hosts —
the orderings a real LAN never promises.  Exits non-zero if any
semantic artifact (delivery traces, final replica states, semantic
metric series) differs byte-for-byte from the baseline; transport
*effort* series (retransmissions, datagram/byte counts) legitimately
vary with arrival order and are reported as informational deltas.
"""

import argparse
import json
import pathlib
import sys

sys.path.insert(0, "src")

from repro.analysis.race import permutation_sweep  # noqa: E402
from repro.analysis.scenarios import GOLDEN_SCENARIOS  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="race_sweep",
        description="permute same-time tie-break orders over the golden "
                    "scenarios and diff the artifacts")
    parser.add_argument("--seeds", default="1,2,3",
                        help="comma-separated permutation seeds "
                             "(default: 1,2,3)")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write the machine-readable report to FILE")
    parser.add_argument("--scenario", choices=sorted(GOLDEN_SCENARIOS),
                        default=None,
                        help="sweep a single scenario (default: all)")
    args = parser.parse_args(argv)
    seeds = tuple(int(s) for s in args.seeds.split(",") if s.strip())

    scenarios = ({args.scenario: GOLDEN_SCENARIOS[args.scenario]}
                 if args.scenario else GOLDEN_SCENARIOS)
    reports = []
    ok = True
    for name, scenario in scenarios.items():
        report = permutation_sweep(scenario, name=name,
                                   permutation_seeds=seeds)
        reports.append(report)
        ok = ok and report.ok
        print(f"{name}: {'OK' if report.ok else 'DIVERGED'} "
              f"({len(report.runs)} runs, seeds {list(seeds)})")
        for run in report.runs:
            stats = run.recorder or {}
            print(f"  {run.label}: cohorts={stats.get('cohorts', 0)} "
                  f"multi_lane={stats.get('multi_lane_cohorts', 0)} "
                  f"effort_deltas={len(run.effort_deltas)} "
                  f"divergences={len(run.divergences)}")
            for key, note in sorted(run.divergences.items()):
                print(f"    DIVERGED {key}: {note}")

    if args.json:
        payload = {"schema": 1, "ok": ok,
                   "seeds": list(seeds),
                   "sweeps": [r.to_dict() for r in reports]}
        pathlib.Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"race_sweep: wrote {args.json}")
    print("race sweep:", "every semantic artifact byte-identical"
          if ok else "SEMANTIC DIVERGENCE — tie-break order leaked")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
