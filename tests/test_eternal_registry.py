"""Unit tests for the replicated group directory."""

import pytest

from repro.errors import ConfigurationError
from repro.eternal import GroupInfo, GroupRegistry, ReplicationStyle


def info(gid=10, name="G", placement=("h0", "h1", "h2"), **kwargs):
    fields = dict(group_id=gid, name=name, interface_name="I",
                  factory_name="f", style=ReplicationStyle.ACTIVE,
                  placement=tuple(placement))
    fields.update(kwargs)
    return GroupInfo(**fields)


def test_announce_and_lookup():
    reg = GroupRegistry()
    assert reg.announce(info()) is True
    assert reg.get(10).name == "G"
    assert reg.by_name("G").group_id == 10
    assert 10 in reg


def test_announce_is_idempotent():
    reg = GroupRegistry()
    assert reg.announce(info()) is True
    assert reg.announce(info()) is False
    assert len(reg.all_groups()) == 1


def test_announce_overwrite_renames():
    reg = GroupRegistry()
    reg.announce(info(name="Old"))
    reg.announce(info(name="New"))
    assert reg.by_name("Old") is None
    assert reg.by_name("New").group_id == 10


def test_require_raises_for_unknown():
    reg = GroupRegistry()
    with pytest.raises(ConfigurationError):
        reg.require(99)


def test_remove():
    reg = GroupRegistry()
    reg.announce(info())
    removed = reg.remove(10)
    assert removed.name == "G"
    assert reg.get(10) is None
    assert reg.by_name("G") is None
    assert reg.remove(10) is None  # idempotent


def test_add_and_remove_replica():
    reg = GroupRegistry()
    reg.announce(info(placement=("h0",)))
    assert reg.add_replica(10, "h1") is True
    assert reg.add_replica(10, "h1") is False  # idempotent
    assert reg.get(10).placement == ("h0", "h1")
    assert reg.remove_replica(10, "h0") is True
    assert reg.remove_replica(10, "h0") is False
    assert reg.get(10).placement == ("h1",)


def test_primary_is_first_live_in_placement_order():
    entry = info(placement=("h2", "h0", "h1"))
    assert entry.primary(["h0", "h1", "h2"]) == "h2"
    assert entry.primary(["h0", "h1"]) == "h0"
    assert entry.primary([]) is None


def test_prune_dead_hosts():
    reg = GroupRegistry()
    reg.announce(info(gid=10, name="A", placement=("h0", "h1")))
    reg.announce(info(gid=11, name="B", placement=("h1", "h2")))
    removed = reg.prune_dead_hosts(["h0", "h2"])
    assert set(removed) == {(10, "h1"), (11, "h1")}
    assert reg.get(10).placement == ("h0",)
    assert reg.get(11).placement == ("h2",)


def test_bump_version():
    reg = GroupRegistry()
    reg.announce(info())
    reg.bump_version(10, "f2")
    assert reg.get(10).version == 2
    assert reg.get(10).factory_name == "f2"


def test_groups_on_host():
    reg = GroupRegistry()
    reg.announce(info(gid=10, name="A", placement=("h0", "h1")))
    reg.announce(info(gid=11, name="B", placement=("h2",)))
    assert [g.group_id for g in reg.groups_on("h1")] == [10]
    assert [g.group_id for g in reg.groups_on("h2")] == [11]


def test_all_groups_sorted_by_id():
    reg = GroupRegistry()
    reg.announce(info(gid=12, name="B"))
    reg.announce(info(gid=10, name="A"))
    assert [g.group_id for g in reg.all_groups()] == [10, 12]
