"""Tests: registry synchronization for processors that join late."""

from repro import ReplicationStyle, World
from repro.eternal import REPLICATION_MANAGER_GROUP

from tests.helpers import external_client, make_counter_group, make_domain


def test_gateway_added_after_groups_learns_the_directory(world):
    domain = make_domain(world)
    group = make_counter_group(domain)
    world.await_promise(group.invoke("increment", 3))
    # Now attach a gateway: it must discover the existing groups.
    domain.add_gateway(port=2809)
    domain.await_stable()
    gateway_rm = domain.rms[domain.gateways[0].host.name]
    assert gateway_rm.synced
    assert gateway_rm.registry.get(group.group_id) is not None
    # And it can serve an external client for the pre-existing group.
    _, stub, _ = external_client(world, domain, group)
    assert world.await_promise(stub.call("value")) == 3


def test_second_gateway_also_syncs(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    world.await_promise(group.invoke("increment", 1))
    domain.add_gateway(port=2809)
    domain.await_stable()
    for gateway in domain.gateways:
        rm = domain.rms[gateway.host.name]
        assert rm.synced
        assert group.group_id in rm.registry


def test_joiner_buffers_traffic_delivered_before_snapshot(world):
    """Messages ordered between the joiner's membership install and the
    snapshot delivery are buffered and replayed, not lost."""
    domain = make_domain(world)
    group = make_counter_group(domain)
    world.await_promise(group.invoke("increment", 1))
    domain.add_gateway(port=2809)
    # Keep invoking while the gateway is still syncing.
    promises = [group.invoke("increment", 1) for _ in range(5)]
    world.run_until_done(promises)
    domain.await_stable()
    gateway_rm = domain.rms[domain.gateways[0].host.name]
    assert gateway_rm.synced
    assert not gateway_rm._presync_buffer


def test_sync_includes_manager_group(world):
    domain = make_domain(world)
    domain.add_gateway(port=2809)
    domain.await_stable()
    gateway_rm = domain.rms[domain.gateways[0].host.name]
    assert REPLICATION_MANAGER_GROUP in gateway_rm.registry


def test_unsynced_joiner_does_not_act_on_invocations(world):
    domain = make_domain(world)
    group = make_counter_group(domain)
    world.await_promise(group.invoke("increment", 1))
    gateway = domain.add_gateway(port=2809)
    rm = domain.rms[gateway.host.name]
    # Before sync, deliveries are buffered; the joiner hosts nothing and
    # executes nothing.
    assert rm.stats["invocations_executed"] == 0
    domain.await_stable()
    assert rm.stats["invocations_executed"] == 0  # still hosts no replicas
