"""repro.obs — metrics and instrumentation for the reproduction.

One :class:`MetricsRegistry` per :class:`~repro.sim.world.World`
(``world.metrics``) collects typed counters, gauges, and streaming
histograms from every instrumented layer: the gateway, the Totem ring,
the GIOP connections, and the Eternal fault handling machinery.  See
docs/OBSERVABILITY.md for the metric catalogue and clock semantics.
"""

from .audit import AuditEntry, AuditReport, AuditRow, AuditScope
from .export import (canonical_json, parse_json, render_prometheus,
                     render_text, to_json)
from .flight import FlightRecorder
from .hostclock import (override_wall_clock, reset_wall_clock,
                        set_wall_clock, wall_clock)
from .metrics import Counter, Gauge, Histogram, Metric, MetricsRegistry, Span
from .series import (Ewma, QuantileSketch, RingBuffer, Series, SeriesRegistry,
                     SlidingRate)
from .tracing import TraceCollector, TraceSpan

__all__ = [
    "AuditEntry",
    "AuditReport",
    "AuditRow",
    "AuditScope",
    "Counter",
    "Ewma",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "QuantileSketch",
    "RingBuffer",
    "Series",
    "SeriesRegistry",
    "SlidingRate",
    "Span",
    "TraceCollector",
    "TraceSpan",
    "canonical_json",
    "override_wall_clock",
    "parse_json",
    "render_prometheus",
    "render_text",
    "reset_wall_clock",
    "set_wall_clock",
    "to_json",
    "wall_clock",
]
