# reprolint: module=repro.sim.fixture_exc
"""EXC001 bad: broad excepts on a sim-driven path that swallow."""


class Pump:
    def tick(self):
        try:
            self.advance()
        except Exception:
            pass

    def advance(self):
        raise RuntimeError("boom")


def drain(events):
    for event in events:
        try:
            event()
        except:
            continue
