# reprolint: module=repro.sim.fixture_flow
"""FLOW002 bad: a handler nothing can reach, and a kind nobody uses."""


class MsgKind:
    PING = "ping"
    RETIRED = "retired"
    GHOST = "ghost"


class Bus:
    def __init__(self):
        self.sent = []

    def send(self, kind, payload):
        self.sent.append((kind, payload))


def emit(bus):
    bus.send(MsgKind.PING, b"x")


def deliver(kind):
    if kind is MsgKind.PING:
        return "pong"
    elif kind is MsgKind.RETIRED:
        # Dead handler: nothing sends RETIRED any more.
        return "late"
    else:
        return None
