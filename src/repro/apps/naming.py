"""A replicated CORBA Naming Service.

The CORBA-era idiom for bootstrapping: clients hold one well-known IOR
(the naming service's) and resolve everything else by name.  Replicated
inside a fault tolerance domain and reached through the gateway, the
naming service is itself fault-tolerant — the paper's manager objects
follow the same pattern.

``FaultToleranceDomain.enable_naming`` (see
:mod:`repro.eternal.domain`) creates this group and auto-binds every
subsequently created application group.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import InvocationFailure
from ..iiop.types import SequenceTC, TC_STRING, TC_VOID
from ..orb.idl import Interface, Operation, Param

NAMING_INTERFACE = Interface("NamingService", [
    Operation("bind", [Param("name", TC_STRING),
                       Param("ior", TC_STRING)], TC_VOID),
    Operation("rebind", [Param("name", TC_STRING),
                         Param("ior", TC_STRING)], TC_VOID),
    Operation("resolve", [Param("name", TC_STRING)], TC_STRING),
    Operation("unbind", [Param("name", TC_STRING)], TC_VOID),
    Operation("list_names", [], SequenceTC(TC_STRING)),
])

ALREADY_BOUND = "IDL:omg.org/CosNaming/NamingContext/AlreadyBound:1.0"
NOT_FOUND = "IDL:omg.org/CosNaming/NamingContext/NotFound:1.0"


from ..orb.servant import Servant


class NamingServant(Servant):
    """Flat name -> stringified-IOR bindings (CosNaming, one level)."""

    interface = NAMING_INTERFACE

    def __init__(self) -> None:
        self.bindings: Dict[str, str] = {}

    def bind(self, name: str, ior: str) -> None:
        if name in self.bindings:
            raise InvocationFailure(ALREADY_BOUND, name)
        self.bindings[name] = ior

    def rebind(self, name: str, ior: str) -> None:
        self.bindings[name] = ior

    def resolve(self, name: str) -> str:
        ior = self.bindings.get(name)
        if ior is None:
            raise InvocationFailure(NOT_FOUND, name)
        return ior

    def unbind(self, name: str) -> None:
        if name not in self.bindings:
            raise InvocationFailure(NOT_FOUND, name)
        del self.bindings[name]

    def list_names(self) -> List[str]:
        return sorted(self.bindings)
