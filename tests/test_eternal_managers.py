"""Integration tests for the Replication, Resource and Evolution Managers."""

import json

import pytest

from repro import ReplicationStyle, World
from repro.apps import COUNTER_INTERFACE, CounterServant
from repro.errors import InvocationFailure
from repro.eternal import REPLICATION_MANAGER_GROUP
from repro.iiop import Ior

from tests.helpers import make_counter_group, make_domain, replica_counts


def test_replication_manager_is_itself_replicated(world):
    domain = make_domain(world)
    hosting = [h for h, rm in domain.rms.items()
               if REPLICATION_MANAGER_GROUP in rm.replicas]
    assert len(hosting) == 3


def test_create_object_via_corba_interface(world):
    """The runtime path: invoke create_object on the replicated manager
    group; the group becomes invocable and the returned IOR names it."""
    domain = make_domain(world, gateways=1)
    domain.register_interface(COUNTER_INTERFACE)
    domain.register_factory("counter_factory", CounterServant)
    ior_string = world.await_promise(domain.invoke(
        "EternalReplicationManager", "create_object",
        ["Counter", "Counter", "counter_factory", "active", 3, 2]))
    assert ior_string.startswith("IOR:")
    ior = Ior.from_string(ior_string)
    assert ior.primary_profile().host == "dom-gw0"
    handle = domain.resolve("Counter")
    assert world.await_promise(handle.invoke("increment", 5)) == 5


def test_create_object_is_idempotent_across_manager_replicas(world):
    """Every manager replica executes create_object and multicasts the
    same announcement; the registry must hold exactly one entry."""
    domain = make_domain(world, gateways=1)
    domain.register_interface(COUNTER_INTERFACE)
    domain.register_factory("counter_factory", CounterServant)
    world.await_promise(domain.invoke(
        "EternalReplicationManager", "create_object",
        ["Counter", "Counter", "counter_factory", "active", 2, 1]))
    world.run(until=world.now + 0.2)
    registries = [rm.registry for rm in domain.rms.values()]
    for registry in registries:
        matches = [g for g in registry.all_groups() if g.name == "Counter"]
        assert len(matches) == 1


def test_create_object_rejects_bad_style(world):
    domain = make_domain(world, gateways=1)
    with pytest.raises(InvocationFailure):
        world.await_promise(domain.invoke(
            "EternalReplicationManager", "create_object",
            ["X", "Counter", "f", "no_such_style", 2, 1]))


def test_get_properties_reports_fault_tolerance_properties(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain, style=ReplicationStyle.WARM_PASSIVE)
    domain.await_ready(group)
    props = json.loads(world.await_promise(domain.invoke(
        "EternalReplicationManager", "get_properties", ["Counter"])))
    assert props["style"] == "warm_passive"
    assert props["group_id"] == group.group_id
    assert len(props["placement"]) == 3


def test_remove_object_deletes_group_everywhere(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    world.await_promise(group.invoke("increment", 1))
    world.await_promise(domain.invoke(
        "EternalReplicationManager", "remove_object", ["Counter"]))
    world.run(until=world.now + 0.2)
    for rm in domain.rms.values():
        assert group.group_id not in rm.replicas
        assert rm.registry.get(group.group_id) is None


def test_manager_survives_host_crash(world):
    domain = make_domain(world, num_hosts=4, gateways=1)
    domain.register_interface(COUNTER_INTERFACE)
    domain.register_factory("counter_factory", CounterServant)
    hosting = [h for h, rm in domain.rms.items()
               if REPLICATION_MANAGER_GROUP in rm.replicas]
    world.faults.crash_now(hosting[0])
    ior_string = world.await_promise(domain.invoke(
        "EternalReplicationManager", "create_object",
        ["Counter", "Counter", "counter_factory", "active", 2, 1]))
    assert ior_string.startswith("IOR:")


def test_resource_manager_stops_when_no_candidates_left(world):
    domain = make_domain(world, num_hosts=3)
    group = make_counter_group(domain, replicas=3, min_replicas=3)
    world.await_promise(group.invoke("increment", 1))
    world.faults.crash_now(group.info().placement[0])
    world.run(until=world.now + 2.0)
    # Only two hosts remain: placement cannot reach 3 again, and the
    # resource manager must not loop forever or crash.
    assert len(group.info().placement) == 2
    assert world.await_promise(group.invoke("value")) == 1


def test_evolution_manager_rolling_upgrade(world):
    class CounterV2(CounterServant):
        def increment(self, amount):
            self.count += amount * 2
            return self.count

    domain = make_domain(world, num_hosts=4)
    group = make_counter_group(domain)
    world.await_promise(group.invoke("increment", 5))
    domain.register_factory("factory.v2", CounterV2)
    version = world.await_promise(
        domain.evolution.upgrade_group("Counter", "factory.v2"), timeout=60)
    assert version == 2
    # State preserved, behaviour upgraded, all replicas on new code.
    assert world.await_promise(group.invoke("increment", 5)) == 15
    for rm in domain.rms.values():
        record = rm.replicas.get(group.group_id)
        if record is not None:
            assert type(record.servant).__name__ == "CounterV2"


def test_evolution_upgrade_keeps_group_available_throughout(world):
    class CounterV2(CounterServant):
        pass

    domain = make_domain(world, num_hosts=4)
    group = make_counter_group(domain)
    world.await_promise(group.invoke("increment", 1))
    domain.register_factory("factory.v2", CounterV2)
    upgrade = domain.evolution.upgrade_group("Counter", "factory.v2")
    # Interleave invocations with the rolling upgrade.
    results = [world.await_promise(group.invoke("increment", 1), )
               for _ in range(5)]
    world.await_promise(upgrade, timeout=60)
    assert results == [2, 3, 4, 5, 6]
    assert set(replica_counts(domain, group).values()) == {6}


def test_upgrade_unknown_group_rejected(world):
    domain = make_domain(world)
    promise = domain.evolution.upgrade_group("Ghost", "factory.v2")
    with pytest.raises(InvocationFailure):
        world.await_promise(promise)


def test_create_object_with_properties_json(world):
    import json as json_module
    domain = make_domain(world, gateways=1)
    domain.register_interface(COUNTER_INTERFACE)
    domain.register_factory("counter_factory", CounterServant)
    properties = {
        "org.omg.ft.ReplicationStyle": "cold_passive",
        "org.omg.ft.InitialNumberReplicas": "2",
        "org.omg.ft.MinimumNumberReplicas": "1",
        "org.omg.ft.CheckpointInterval": "4",
    }
    ior = world.await_promise(domain.invoke(
        "EternalReplicationManager", "create_object_with_properties",
        ["PropGroup", "Counter", "counter_factory",
         json_module.dumps(properties)]), timeout=600)
    assert ior.startswith("IOR:")
    handle = domain.resolve("PropGroup")
    domain.await_ready(handle)
    info = handle.info()
    assert info.style.value == "cold_passive"
    assert len(info.placement) == 2
    assert info.min_replicas == 1
    assert info.checkpoint_interval == 4
    assert world.await_promise(handle.invoke("increment", 3),
                               timeout=600) == 3


def test_create_object_with_bad_properties_rejected(world):
    domain = make_domain(world, gateways=1)
    with pytest.raises(InvocationFailure):
        world.await_promise(domain.invoke(
            "EternalReplicationManager", "create_object_with_properties",
            ["Bad", "Counter", "f", "{\"org.omg.ft.Nope\": \"1\"}"]),
            timeout=600)
    with pytest.raises(InvocationFailure):
        world.await_promise(domain.invoke(
            "EternalReplicationManager", "create_object_with_properties",
            ["Bad2", "Counter", "f", "not json at all"]), timeout=600)
