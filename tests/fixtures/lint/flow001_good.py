# reprolint: module=repro.sim.fixture_flow
"""FLOW001 good: every sendable kind has a live dispatch site."""


class MsgKind:
    PING = "ping"
    PONG = "pong"


class Bus:
    def __init__(self):
        self.sent = []

    def send(self, kind, payload):
        self.sent.append((kind, payload))


def emit(bus):
    bus.send(MsgKind.PING, b"x")
    bus.send(MsgKind.PONG, b"y")


def deliver(kind, payload):
    if kind is MsgKind.PING:
        return payload
    elif kind is MsgKind.PONG:
        return None
    else:
        return None
