"""The protocol extractor, pinned against the real repro surface.

These tests lint ``src/`` once and assert the extracted protocol
surface matches what docs/PROTOCOL.md documents: the 16 ``MsgKind``
members (each sent *and* dispatched), the four Totem wire messages,
the GIOP codec pairs, and the ``MsgType`` octet table.  A refactor
that silently drops a handler or a codec moves one of these sets and
fails here even before the FLOW rules anchor a violation.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.callgraph import _module_in, build_callgraph
from repro.analysis.lint import (DETERMINISTIC_PREFIXES, default_config,
                                 lint_paths)
from repro.analysis.protocol import (build_protocol_surface,
                                     render_protocol_json)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"

MSG_KINDS = {
    "INVOCATION", "RESPONSE", "GROUP_ANNOUNCE", "GROUP_REMOVE",
    "ADD_REPLICA", "REMOVE_REPLICA", "REPLICA_READY", "CHECKPOINT",
    "STATE_UPDATE", "STATE_TRANSFER", "GATEWAY_MIRROR", "CLIENT_GONE",
    "ORDER_RECORD", "STYLE_SWITCH", "REGISTRY_SYNC",
    "REGISTRY_SYNC_REQUEST",
}

TOTEM_CLASSES = {
    "repro.totem.messages.RegularMessage",
    "repro.totem.messages.Token",
    "repro.totem.messages.JoinMessage",
    "repro.totem.messages.CommitMessage",
}

#: codec suffix -> (has encoder, has decoder).  The asymmetric entries
#: are header-only / client-side shapes with justified suppressions.
CODEC_TABLE = {
    "request": (True, True),
    "reply": (True, True),
    "locate_request": (True, True),
    "locate_reply": (True, True),
    "locate_forward": (False, True),
    "cancel_request": (True, True),
    "close_connection": (True, False),
    "message_error": (True, False),
}


@pytest.fixture(scope="module")
def project():
    result = lint_paths([SRC], config=default_config(REPO_ROOT),
                        root=REPO_ROOT)
    assert result.project is not None
    return result.project


def test_every_msg_kind_is_sent_and_dispatched(project):
    surface = build_protocol_surface(project)
    assert set(surface.kinds) == {"MsgKind"}
    table = surface.kinds["MsgKind"]
    assert set(table) == MSG_KINDS
    for member, usage in table.items():
        assert usage.definition is not None, member
        assert usage.sends, f"{member} has no send site"
        assert usage.dispatches, f"{member} has no dispatch site"


def test_totem_wire_classes_are_constructed_and_dispatched(project):
    surface = build_protocol_surface(project)
    assert set(surface.wire_classes) == TOTEM_CLASSES
    for qname, usage in surface.wire_classes.items():
        assert usage.constructs, f"{qname} is never constructed"
        assert usage.dispatches, f"{qname} is never dispatched"


def test_giop_codec_pairs_match_the_documented_table(project):
    surface = build_protocol_surface(project)
    pairs = {suffix: (pair.encoder is not None, pair.decoder is not None)
             for suffix, pair in surface.codecs.items()}
    assert pairs == CODEC_TABLE
    graph = build_callgraph(project)
    uncalled = {
        qname
        for pair in surface.codecs.values()
        for qname in (pair.encoder_qname, pair.decoder_qname)
        if qname is not None and not graph.callers(qname)}
    # Exactly the client-side codecs (exercised from tests/, with
    # justified FLOW002 suppressions at their definitions) are
    # uncalled inside src/ — nothing else may join this set.
    assert uncalled == {
        "repro.iiop.giop.encode_locate_request",
        "repro.iiop.giop.decode_locate_forward",
        "repro.iiop.giop.encode_cancel_request",
        "repro.iiop.giop.encode_close_connection",
    }


def test_giop_msg_type_octets(project):
    surface = build_protocol_surface(project)
    assert surface.giop_msg_types == {
        "REQUEST": 0, "REPLY": 1, "CANCEL_REQUEST": 2,
        "LOCATE_REQUEST": 3, "LOCATE_REPLY": 4, "CLOSE_CONNECTION": 5,
        "MESSAGE_ERROR": 6,
    }


def test_observability_inventory_is_dotted_and_sorted(project):
    surface = build_protocol_surface(project)
    assert surface.flight_kinds and surface.span_names
    for name in surface.flight_kinds + surface.span_names:
        assert "." in name
    assert surface.flight_kinds == sorted(set(surface.flight_kinds))
    assert surface.span_names == sorted(set(surface.span_names))


def test_protocol_dump_schema(project):
    dump = render_protocol_json(project)
    assert dump["schema"] == 1
    assert set(dump["kinds"]["MsgKind"]) == MSG_KINDS
    entry = dump["kinds"]["MsgKind"]["INVOCATION"]
    assert entry["sends"] and entry["dispatches"]
    assert all(set(ref) == {"path", "line"} for ref in entry["sends"])
    assert set(dump["wire_classes"]) == TOTEM_CLASSES
    assert dump["codecs"]["request"] == {
        "encoder": "repro.iiop.giop.encode_request",
        "decoder": "repro.iiop.giop.decode_request"}
    assert dump["giop_msg_types"]["MESSAGE_ERROR"] == 6


def test_reexported_codec_callers_resolve_through_the_package(project):
    """connection.py imports codecs from the ``repro.iiop`` package;
    the graph must still attribute the calls to the defining module."""
    graph = build_callgraph(project)
    callers = graph.callers("repro.iiop.giop.encode_message_error")
    assert ("repro.orb.connection.IiopServerConnection._on_data"
            in callers)


def test_no_deterministic_function_is_wall_tainted(project):
    """The gate invariant behind DET101, asserted structurally: no
    in-scope function transitively reaches an unsuppressed wall read."""
    graph = build_callgraph(project)
    offenders = [
        qname for qname in graph.taint("wall")
        if _module_in(graph.functions[qname].module,
                      DETERMINISTIC_PREFIXES)]
    assert offenders == []
