"""Deterministic discrete-event scheduler.

Every moving part of the reproduction — simulated TCP, Totem token
rotation, replica execution, crash/recovery fault injection — runs on a
single instance of :class:`Scheduler`.  Events scheduled for the same
simulated time fire in the order they were scheduled (a monotonically
increasing tie-break counter), which makes every run exactly
reproducible for a given seed and script of events.

The scheduler is intentionally minimal: ``call_at`` / ``call_after``
return :class:`Timer` handles that can be cancelled, and ``run`` drives
the event loop until a time bound, an event budget, or quiescence.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError


class Timer:
    """Handle for a scheduled callback; cancellable until it fires."""

    __slots__ = ("time", "fn", "args", "cancelled", "fired")

    def __init__(self, time: float, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already fired)."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Timer t={self.time:.6f} {name} {state}>"


class Scheduler:
    """Priority-queue event loop with deterministic same-time ordering."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, Timer]] = []
        self._tiebreak = itertools.count()
        self._events_processed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        timer = Timer(time, fn, args)
        heapq.heappush(self._queue, (time, next(self._tiebreak), timer))
        return timer

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` after a relative ``delay`` (>= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self.now + delay, fn, *args)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at the current time (after pending events)."""
        return self.call_at(self.now, fn, *args)

    # ------------------------------------------------------------------
    # Driving the loop
    # ------------------------------------------------------------------

    @property
    def pending_events(self) -> int:
        """Number of queued events, including cancelled ones not yet popped."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        while self._queue:
            time, _, timer = heapq.heappop(self._queue)
            if timer.cancelled:
                continue
            self.now = time
            timer.fired = True
            self._events_processed += 1
            timer.fn(*timer.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 10_000_000,
    ) -> int:
        """Run events until quiescence, ``until`` time, or ``max_events``.

        Returns the number of events processed by this call.  When
        ``until`` is given the clock is advanced to ``until`` even if the
        queue drains earlier, so follow-up ``call_after`` calls measure
        from the bound.
        """
        if self._running:
            raise SimulationError("scheduler re-entered: run() called from an event")
        self._running = True
        processed = 0
        try:
            while self._queue and processed < max_events:
                time, _, timer = self._queue[0]
                if until is not None and time > until:
                    break
                heapq.heappop(self._queue)
                if timer.cancelled:
                    continue
                self.now = time
                timer.fired = True
                self._events_processed += 1
                processed += 1
                timer.fn(*timer.args)
            if processed >= max_events:
                raise SimulationError(
                    f"event budget exhausted ({max_events} events): likely a livelock"
                )
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        return processed

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 60.0,
        max_events: int = 10_000_000,
    ) -> None:
        """Run until ``predicate()`` is true; raise on simulated timeout."""
        deadline = self.now + timeout
        processed = 0
        while not predicate():
            if not self._queue:
                raise SimulationError(
                    "simulation quiesced before condition became true"
                )
            time, _, timer = heapq.heappop(self._queue)
            if timer.cancelled:
                continue
            if time > deadline:
                raise SimulationError(
                    f"condition not reached within {timeout}s of simulated time"
                )
            self.now = time
            timer.fired = True
            self._events_processed += 1
            processed += 1
            if processed > max_events:
                raise SimulationError("event budget exhausted in run_until")
            timer.fn(*timer.args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Scheduler now={self.now:.6f} queued={len(self._queue)}>"
