"""Unit and property-based tests for the repro.obs metrics layer."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_json,
    render_prometheus,
    render_text,
    to_json,
)


# ----------------------------------------------------------------------
# Names
# ----------------------------------------------------------------------

@pytest.mark.parametrize("name", [
    "gateway.req.latency", "totem.token.rotation", "a", "a_b.c0",
])
def test_valid_names_accepted(name):
    assert MetricsRegistry().counter(name).name == name


@pytest.mark.parametrize("name", [
    "", ".", "a.", ".a", "a..b", "A.b", "a-b", "a b", "giop.msg.Reply",
])
def test_invalid_names_rejected(name):
    with pytest.raises(ConfigurationError):
        MetricsRegistry().counter(name)


# ----------------------------------------------------------------------
# Counter / gauge semantics
# ----------------------------------------------------------------------

def test_counter_monotonic():
    c = Counter("t.c")
    assert c.value == 0
    c.inc()
    c.inc(5)
    assert c.value == 6
    with pytest.raises(ValueError):
        c.inc(-1)
    assert c.value == 6
    assert c.snapshot() == {"type": "counter", "unit": "", "value": 6}


def test_gauge_moves_both_ways():
    g = Gauge("t.g", unit="conn")
    g.set(10)
    g.inc(2)
    g.dec(5)
    assert g.value == 7
    assert g.snapshot() == {"type": "gauge", "unit": "conn", "value": 7}


def test_registry_interns_and_checks_types():
    registry = MetricsRegistry()
    c1 = registry.counter("x.y")
    assert registry.counter("x.y") is c1
    with pytest.raises(ConfigurationError):
        registry.gauge("x.y")
    with pytest.raises(ConfigurationError):
        registry.counter("x.y", wall=True)
    assert registry.names() == ["x.y"]
    assert registry.get("x.y") is c1
    assert registry.get("missing") is None


def test_registry_value_convenience():
    registry = MetricsRegistry()
    assert registry.value("absent.counter") == 0
    registry.counter("a.b").inc(3)
    assert registry.value("a.b") == 3
    registry.histogram("h.h").observe(1.0)
    with pytest.raises(ConfigurationError):
        registry.value("h.h")


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------

def test_histogram_empty():
    h = Histogram("t.h")
    assert h.count == 0
    assert h.quantile(0.5) is None
    assert h.mean is None
    snap = h.snapshot()
    assert snap["count"] == 0 and snap["p50"] is None


def test_histogram_clamps_negative_and_nan():
    h = Histogram("t.h")
    h.observe(-5.0)
    h.observe(float("nan"))
    assert h.count == 2
    assert h.min == 0.0 and h.max == 0.0
    assert h.quantile(0.99) == 0.0


def test_histogram_single_value_quantiles_exact():
    h = Histogram("t.h")
    h.observe(0.125)
    for q in (0.01, 0.5, 0.95, 1.0):
        # Clamping to [min, max] collapses the estimate to the value.
        assert h.quantile(q) == pytest.approx(0.125)


def _exact_quantile(values, q):
    """Rank convention matched by Histogram.quantile: the ceil(q*n)-th
    smallest observation (1-indexed)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=300),
    q=st.sampled_from([0.25, 0.5, 0.9, 0.95, 0.99, 1.0]),
)
def test_histogram_quantile_bounded_error(values, q):
    h = Histogram("t.h")
    for v in values:
        h.observe(v)
    exact = _exact_quantile(values, q)
    estimate = h.quantile(q)
    # The estimate interpolates within the bucket holding the exact
    # rank, so the error is bounded by that bucket's width.
    bound = max(Histogram.BASE, exact * (Histogram.GROWTH - 1))
    assert abs(estimate - exact) <= bound * (1 + 1e-9) + 1e-12
    assert h.min <= estimate <= h.max


@given(values=st.lists(
    st.floats(min_value=0.0, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=300))
def test_histogram_aggregates_exact(values):
    h = Histogram("t.h")
    for v in values:
        h.observe(v)
    assert h.count == len(values)
    assert h.sum == pytest.approx(math.fsum(values))
    assert h.min == min(values)
    assert h.max == max(values)


# ----------------------------------------------------------------------
# Timing helpers
# ----------------------------------------------------------------------

def test_timer_and_span_use_registry_clock():
    fake = [0.0]
    registry = MetricsRegistry(clock=lambda: fake[0])
    with registry.timer("t.block"):
        fake[0] = 1.5
    h = registry.histogram("t.block")
    assert h.count == 1 and h.sum == pytest.approx(1.5)

    span = registry.span("t.span")
    fake[0] = 4.0
    assert span.stop() == pytest.approx(2.5)
    fake[0] = 9.0
    # stop() is idempotent: the second call reports but does not record.
    span.stop()
    assert registry.histogram("t.span").count == 1
    assert registry.now == 9.0


def test_wall_metrics_excluded_from_default_snapshot():
    registry = MetricsRegistry(clock=lambda: 0.0, wall_clock=lambda: 0.0)
    registry.counter("sim.events").inc()
    registry.counter("wall.elapsed", wall=True).inc()
    assert set(registry.snapshot()) == {"sim.events"}
    assert set(registry.snapshot(include_wall=True)) == {
        "sim.events", "wall.elapsed"}


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------

def test_json_round_trip_simple():
    registry = MetricsRegistry()
    registry.counter("a.count", unit="B").inc(42)
    registry.gauge("b.depth").set(-3)
    registry.histogram("c.latency").observe(0.25)
    assert parse_json(to_json(registry)) == registry.snapshot()


def test_json_is_canonical_and_versioned():
    registry = MetricsRegistry()
    registry.counter("z.last").inc()
    registry.counter("a.first").inc()
    text = to_json(registry)
    assert text.index('"a.first"') < text.index('"z.last"')
    assert '"schema":1' in text
    with pytest.raises(ValueError):
        parse_json('{"schema":99,"metrics":{}}')


@given(counts=st.dictionaries(
    st.sampled_from(["a.x", "b.y", "c.z"]),
    st.integers(min_value=0, max_value=10**9), max_size=3),
    observations=st.lists(
        st.floats(min_value=0.0, max_value=1e6,
                  allow_nan=False, allow_infinity=False), max_size=50))
def test_json_round_trip_property(counts, observations):
    registry = MetricsRegistry()
    for name, value in counts.items():
        registry.counter(name).inc(value)
    h = registry.histogram("h.obs")
    for v in observations:
        h.observe(v)
    assert parse_json(to_json(registry)) == registry.snapshot()


def test_render_text_lists_every_metric():
    registry = MetricsRegistry()
    assert render_text(registry) == "(no metrics recorded)"
    registry.counter("a.count", unit="B").inc(7)
    registry.histogram("b.latency").observe(0.5)
    text = render_text(registry)
    lines = text.splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("a.count") and "7 B" in lines[0]
    assert "count=1" in lines[1] and "p50=0.5" in lines[1]


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def test_render_prometheus_empty_registry():
    assert render_prometheus(MetricsRegistry()) == ""


def test_render_prometheus_golden_format():
    """Exact golden rendering: counters and gauges map 1:1, histograms
    expose cumulative exponential buckets (with the +Inf terminator)
    and summary-style quantile labels plus the flattened
    _count/_sum/min/max/quantile gauges, dots become underscores, and
    output order follows the (sorted) snapshot."""
    registry = MetricsRegistry()
    registry.counter("gateway.req.received").inc(3)
    registry.gauge("rm.state.log_entries").set(12)
    h = registry.histogram("gateway.req.latency", unit="s")
    h.observe(0.25)
    (bound, _), = (p for p in h.cumulative_buckets() if p[0] is not None)
    assert render_prometheus(registry) == (
        "# TYPE gateway_req_latency_count counter\n"
        "gateway_req_latency_count 1\n"
        "# TYPE gateway_req_latency_sum counter\n"
        "gateway_req_latency_sum 0.25\n"
        "# TYPE gateway_req_latency_bucket counter\n"
        f'gateway_req_latency_bucket{{le="{bound!r}"}} 1\n'
        'gateway_req_latency_bucket{le="+Inf"} 1\n'
        'gateway_req_latency{quantile="0.5"} 0.25\n'
        'gateway_req_latency{quantile="0.95"} 0.25\n'
        'gateway_req_latency{quantile="0.99"} 0.25\n'
        "# TYPE gateway_req_latency_min gauge\n"
        "gateway_req_latency_min 0.25\n"
        "# TYPE gateway_req_latency_max gauge\n"
        "gateway_req_latency_max 0.25\n"
        "# TYPE gateway_req_latency_p50 gauge\n"
        "gateway_req_latency_p50 0.25\n"
        "# TYPE gateway_req_latency_p95 gauge\n"
        "gateway_req_latency_p95 0.25\n"
        "# TYPE gateway_req_latency_p99 gauge\n"
        "gateway_req_latency_p99 0.25\n"
        "# TYPE gateway_req_received counter\n"
        "gateway_req_received 3\n"
        "# TYPE rm_state_log_entries gauge\n"
        "rm_state_log_entries 12\n"
    )


def test_render_prometheus_buckets_are_cumulative():
    registry = MetricsRegistry()
    h = registry.histogram("h.lat")
    for value in (0.001, 0.001, 0.5, 2.0):
        h.observe(value)
    pairs = h.cumulative_buckets()
    assert pairs[-1] == (None, 4)                  # +Inf sees everything
    counts = [count for _, count in pairs]
    assert counts == sorted(counts)                # cumulative, monotone
    bounds = [bound for bound, _ in pairs[:-1]]
    assert bounds == sorted(bounds)
    text = render_prometheus(registry)
    assert 'h_lat_bucket{le="+Inf"} 4' in text


def test_render_prometheus_series_last_values():
    from repro.obs import SeriesRegistry

    registry = MetricsRegistry()
    registry.counter("a.count").inc()
    series = SeriesRegistry(enabled=True)
    series.observe("series.gateway.group.latency", 0.125, group="7")
    text = render_prometheus(registry, series=series)
    assert "# TYPE series_gateway_group_latency gauge" in text
    assert 'series_gateway_group_latency{group="7"} 0.125' in text


def test_render_prometheus_empty_histogram_quantiles_are_nan():
    registry = MetricsRegistry()
    registry.histogram("empty.latency")
    text = render_prometheus(registry)
    assert "empty_latency_count 0" in text
    assert "empty_latency_p50 NaN" in text


def test_render_prometheus_is_deterministic():
    def build():
        registry = MetricsRegistry()
        registry.counter("z.last").inc()
        registry.counter("a.first").inc(5)
        registry.histogram("m.mid").observe(1.5)
        return render_prometheus(registry)

    first, second = build(), build()
    assert first == second
    assert first.index("a_first") < first.index("m_mid") < first.index("z_last")
