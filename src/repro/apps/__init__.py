"""Example application servants used by examples, tests, and benchmarks."""

from .bank import (
    ACCOUNT_INTERFACE,
    AccountServant,
    LEDGER_INTERFACE,
    LedgerServant,
    TRANSFER_INTERFACE,
    TransferAgentServant,
)
from .counter import COUNTER_INTERFACE, CounterServant
from .naming import NAMING_INTERFACE, NamingServant
from .stock_trading import (
    QUOTE_INTERFACE,
    QuoteServant,
    SETTLEMENT_INTERFACE,
    SettlementServant,
    TRADING_INTERFACE,
    TradingDeskServant,
)

__all__ = [
    "ACCOUNT_INTERFACE",
    "AccountServant",
    "COUNTER_INTERFACE",
    "CounterServant",
    "LEDGER_INTERFACE",
    "LedgerServant",
    "NAMING_INTERFACE",
    "NamingServant",
    "QUOTE_INTERFACE",
    "QuoteServant",
    "SETTLEMENT_INTERFACE",
    "SettlementServant",
    "TRADING_INTERFACE",
    "TradingDeskServant",
    "TRANSFER_INTERFACE",
    "TransferAgentServant",
]
