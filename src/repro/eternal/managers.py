"""The Eternal Replication, Resource, and Evolution Managers (Figure 2).

*Replication Manager* — "replicates each application object, according
to user-specified fault tolerance properties ... and distributes the
replicas across the system."  Implemented as a genuine replicated CORBA
object group (the paper notes the managers are themselves CORBA objects
that benefit from Eternal's fault tolerance): every replica executes
``create_object`` deterministically and emits the same idempotent
GROUP_ANNOUNCE control message, so duplicate emission is harmless.

*Resource Manager* — "monitors the system resources, and maintains the
initial and minimum number of replicas."  Implemented as a per-host
infrastructure component: after every membership change (and on a slow
periodic tick) each host deterministically computes the same
replacement placements from the shared registry and multicasts
idempotent ADD_REPLICA messages.

*Evolution Manager* — "exploits object replication to support upgrades
to the CORBA application objects."  Implemented as a rolling-upgrade
driver: bump the group's factory/version in the registry, then replace
replicas one host at a time, waiting for each new replica's
REPLICA_READY before touching the next (state transfer keeps the group
available throughout).
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Sequence, Tuple, TYPE_CHECKING

from dataclasses import replace as dc_replace

from ..errors import InvocationFailure
from ..iiop.types import TC_LONG, TC_STRING, TC_VOID
from ..orb.idl import Interface, Operation, Param
from ..orb.servant import Servant
from ..sim.world import Promise
from .messages import DomainMessage, MsgKind
from .naming import FIRST_APPLICATION_GROUP
from .registry import GroupInfo
from .styles import ReplicationStyle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .domain import FaultToleranceDomain
    from .replication import ReplicationMechanisms
    from .styles import StylePolicy


REPLICATION_MANAGER_INTERFACE = Interface("EternalReplicationManager", [
    Operation("create_object", [
        Param("name", TC_STRING),
        Param("interface_name", TC_STRING),
        Param("factory_name", TC_STRING),
        Param("style", TC_STRING),
        Param("num_replicas", TC_LONG),
        Param("min_replicas", TC_LONG),
    ], TC_STRING),                        # returns the published IOR string
    Operation("remove_object", [Param("name", TC_STRING)], TC_VOID),
    Operation("get_properties", [Param("name", TC_STRING)], TC_STRING),
    # FT-CORBA style: properties given as a JSON-encoded property map
    # using the org.omg.ft.* names (see repro.eternal.properties).
    Operation("create_object_with_properties", [
        Param("name", TC_STRING),
        Param("interface_name", TC_STRING),
        Param("factory_name", TC_STRING),
        Param("properties_json", TC_STRING),
    ], TC_STRING),
])


class ReplicationManagerServant(Servant):
    """Replicated manager servant; one replica per manager host.

    All decisions (group id, placement) are derived from the registry
    and membership of the *local* Replication Mechanisms at the point
    in the total order where the invocation is executed — identical on
    every replica — so every replica multicasts the same announcement.
    """

    interface = REPLICATION_MANAGER_INTERFACE

    def __init__(self, rm: "ReplicationMechanisms",
                 ior_builder: Callable[[int, str], str],
                 replica_hosts: Sequence[str]) -> None:
        self._rm = rm
        self._ior_builder = ior_builder
        self._replica_hosts = replica_hosts

    # -- operations -------------------------------------------------------

    def create_object(self, name: str, interface_name: str,
                      factory_name: str, style: str, num_replicas: int,
                      min_replicas: int) -> str:
        registry = self._rm.registry
        existing = registry.by_name(name)
        if existing is not None:
            return self._ior_builder(existing.group_id,
                                     existing.interface_name)
        try:
            chosen_style = ReplicationStyle(style)
        except ValueError:
            raise InvocationFailure("IDL:repro/BadProperty:1.0",
                                    f"unknown replication style {style!r}")
        group_id = max([FIRST_APPLICATION_GROUP - 1]
                       + [g.group_id for g in registry.all_groups()]) + 1
        placement = self._choose_placement(num_replicas)
        info = GroupInfo(
            group_id=group_id, name=name, interface_name=interface_name,
            factory_name=factory_name, style=chosen_style,
            placement=placement, min_replicas=max(1, min_replicas),
            initial_replicas=num_replicas)
        self._rm.multicast(DomainMessage(
            kind=MsgKind.GROUP_ANNOUNCE, source_group=0, target_group=0,
            data={"info": info}))
        return self._ior_builder(group_id, interface_name)

    def create_object_with_properties(self, name: str, interface_name: str,
                                      factory_name: str,
                                      properties_json: str) -> str:
        """FT-CORBA flavoured creation: org.omg.ft.* property map."""
        from ..errors import ConfigurationError
        from .properties import FaultToleranceProperties
        try:
            raw = json.loads(properties_json)
            if not isinstance(raw, dict):
                raise ValueError("property map must be a JSON object")
            props = FaultToleranceProperties.from_properties(
                {str(k): str(v) for k, v in raw.items()})
        except (ValueError, ConfigurationError) as exc:
            raise InvocationFailure("IDL:repro/BadProperty:1.0", str(exc))
        registry = self._rm.registry
        existing = registry.by_name(name)
        if existing is not None:
            return self._ior_builder(existing.group_id,
                                     existing.interface_name)
        group_id = max([FIRST_APPLICATION_GROUP - 1]
                       + [g.group_id for g in registry.all_groups()]) + 1
        info = GroupInfo(
            group_id=group_id, name=name, interface_name=interface_name,
            factory_name=factory_name, style=props.replication_style,
            placement=self._choose_placement(props.initial_number_replicas),
            min_replicas=props.minimum_number_replicas,
            initial_replicas=props.initial_number_replicas,
            checkpoint_interval=props.checkpoint_interval)
        self._rm.multicast(DomainMessage(
            kind=MsgKind.GROUP_ANNOUNCE, source_group=0, target_group=0,
            data={"info": info}))
        return self._ior_builder(group_id, interface_name)

    def remove_object(self, name: str) -> None:
        info = self._rm.registry.by_name(name)
        if info is None:
            raise InvocationFailure("IDL:repro/NoSuchObject:1.0", name)
        self._rm.multicast(DomainMessage(
            kind=MsgKind.GROUP_REMOVE, source_group=0, target_group=0,
            data={"group_id": info.group_id}))

    def get_properties(self, name: str) -> str:
        info = self._rm.registry.by_name(name)
        if info is None:
            raise InvocationFailure("IDL:repro/NoSuchObject:1.0", name)
        return json.dumps({
            "group_id": info.group_id,
            "style": info.style.value,
            "placement": list(info.placement),
            "min_replicas": info.min_replicas,
            "version": info.version,
        }, sort_keys=True)

    # -- helpers ----------------------------------------------------------

    def _choose_placement(self, num_replicas: int) -> Tuple[str, ...]:
        """Least-loaded live replica hosts, ties broken by name."""
        live = [h for h in self._replica_hosts if h in self._rm.live_hosts]
        load: Dict[str, int] = {h: 0 for h in live}
        for info in self._rm.registry.all_groups():
            for host in info.placement:
                if host in load:
                    load[host] += 1
        ranked = sorted(live, key=lambda h: (load[h], h))
        return tuple(ranked[:max(1, num_replicas)])

    # Managers hold no transferable application state.
    def get_state(self) -> dict:
        return {}

    def set_state(self, state: dict) -> None:
        return None


class ResourceManager:
    """Per-host replica-count maintenance (idempotent, leaderless)."""

    def __init__(self, rm: "ReplicationMechanisms",
                 replica_hosts: Sequence[str],
                 check_interval: float = 0.5) -> None:
        self.rm = rm
        self.replica_hosts = replica_hosts
        self.check_interval = check_interval
        self.stats = {"replacements_requested": 0}
        rm.on_membership_change(self._on_membership)
        self._schedule_tick()

    def _schedule_tick(self) -> None:
        if self.rm.alive:
            self.rm.after(self.check_interval, self._tick)

    def _tick(self) -> None:
        self._maintain()
        self._schedule_tick()

    def _on_membership(self, live_hosts: Tuple[str, ...]) -> None:
        self._maintain()

    def _maintain(self) -> None:
        """Request replacements for groups below their minimum.

        Every host computes the same candidate from the same registry
        and membership, so the redundant ADD_REPLICA multicasts are
        identical and idempotent at every receiver.
        """
        live = set(self.rm.live_hosts)
        for info in self.rm.registry.all_groups():
            if info.factory_name == "":
                continue  # infrastructure pseudo-groups (gateways)
            alive = [h for h in info.placement if h in live]
            want = max(info.min_replicas, 0)
            if len(alive) >= want:
                continue
            candidates = self._candidates(info, live)
            needed = want - len(alive)
            for host in candidates[:needed]:
                self.stats["replacements_requested"] += 1
                self.rm.multicast(DomainMessage(
                    kind=MsgKind.ADD_REPLICA, source_group=0, target_group=0,
                    data={"group_id": info.group_id, "host": host}))

    def _candidates(self, info: GroupInfo, live: set) -> List[str]:
        load: Dict[str, int] = {}
        for host in self.replica_hosts:
            if host in live and host not in info.placement:
                load[host] = 0
        for other in self.rm.registry.all_groups():
            for host in other.placement:
                if host in load:
                    load[host] += 1
        return sorted(load, key=lambda h: (load[h], h))


class StyleManager:
    """Adaptive replication-style control (leaderless, deterministic).

    Watches the world-shared metrics registry for overload (admission
    sheds, client-observed latency) and fault pressure (detector
    declarations, failovers) and switches live groups between their
    configured style and a cheaper one — by default
    ``LEADER_FOLLOWER``, which keeps hot replicas but multicasts a
    single response instead of N (and never waits on a voting quorum):

    * **demote** under load: an ``ACTIVE`` / ``ACTIVE_WITH_VOTING``
      group whose domain sheds requests faster than
      ``demote_shed_rate`` per second, or whose p50 client latency
      exceeds ``demote_latency_s``, is switched to
      ``policy.demote_to`` (its original style is remembered);
    * **promote** under faults: a demoted group is switched back to
      its remembered style when the fault rate reaches
      ``promote_fault_rate`` per second — redundancy is worth paying
      for again when processors are actually dying.

    Like the :class:`ResourceManager`, one instance runs per replica
    host with no leader: every instance reads the same shared registry
    and metrics at the same simulated instants, computes the same
    decision, and multicasts the same STYLE_SWITCH carrying the same
    target epoch — the epoch guard in the Replication Mechanisms
    applies the redundant copies exactly once.  ``min_dwell_s``
    (restarted by *any* observed epoch change, including operator
    switches) prevents flapping.

    **Signal sources.**  When the world's time-series registry is armed
    (``World(series=True)``), overload is judged *per group* from the
    windowed ``series.gateway.group.shed`` / ``.latency`` series the
    gateways feed — two groups with very different op costs sharing a
    domain are demoted independently instead of being dragged down by
    each other's latency.  Without series the manager falls back to the
    original global scalars (total shed delta, whole-domain latency
    p50).  Reads of the shared windowed aggregators at identical
    instants return identical values on every host, so the leaderless
    agreement argument is unchanged.  Fault pressure (promotion) stays
    global either way: processor deaths are a domain-level signal.
    """

    def __init__(self, rm: "ReplicationMechanisms",
                 policy: "StylePolicy" = None,
                 groups: Sequence[int] = None,
                 tick_interval: float = 0.25) -> None:
        from .styles import StylePolicy
        self.rm = rm
        self.policy = policy if policy is not None else StylePolicy()
        self.groups = None if groups is None else set(groups)
        self.tick_interval = tick_interval
        self.stats = {"demotions_requested": 0, "promotions_requested": 0}
        self._baseline: Dict[int, ReplicationStyle] = {}
        self._seen_epoch: Dict[int, int] = {}
        self._last_change: Dict[int, float] = {}
        self._last_shed = 0
        self._last_faults = 0
        self._schedule_tick()

    def _schedule_tick(self) -> None:
        if self.rm.alive:
            self.rm.after(self.tick_interval, self._tick)

    def _tick(self) -> None:
        self._evaluate()
        self._schedule_tick()

    def _rates(self):
        """Per-tick deltas of the overload/fault signals, as rates."""
        m = self.rm.metrics
        shed = m.value("gateway.adm.shed")
        faults = (m.value("fault.detector.faults")
                  + m.value("fault.failover.count"))
        shed_rate = (shed - self._last_shed) / self.tick_interval
        fault_rate = (faults - self._last_faults) / self.tick_interval
        self._last_shed, self._last_faults = shed, faults
        latency = m.get("gateway.req.latency")
        p50 = (latency.quantile(0.5)
               if latency is not None and latency.count else None)
        return shed_rate, fault_rate, p50

    def _group_signals(self, gid: int, now: float):
        """Windowed per-group (shed_rate, p50) from the series registry.

        A group with no recent samples reads as healthy (rate 0, p50
        None) — sparse traffic is the opposite of overload.  p50 is
        only trusted once the window holds ``min_series_samples``
        observations, so one straggler cannot demote a quiet group.
        """
        sr = self.rm.series
        shed_rate = 0.0
        shed = sr.get("series.gateway.group.shed", group=gid)
        if shed is not None:
            shed_rate = shed.rate(now)
        p50 = None
        latency = sr.get("series.gateway.group.latency", group=gid)
        if (latency is not None
                and latency.window_count(now) >= self.policy.min_series_samples):
            p50 = latency.quantile(0.5, now)
        return shed_rate, p50

    def _evaluate(self) -> None:
        shed_rate, fault_rate, p50 = self._rates()
        now = self.rm.scheduler.now
        policy = self.policy
        per_group = self.rm.series.enabled
        for info in self.rm.registry.all_groups():
            gid = info.group_id
            if self.groups is not None and gid not in self.groups:
                continue
            if info.factory_name == "":
                continue  # infrastructure pseudo-groups (gateways)
            # Restart the dwell clock on any epoch change, ours or not:
            # an operator switch must also buy its settling time.
            if self._seen_epoch.get(gid) != info.style_epoch:
                self._seen_epoch[gid] = info.style_epoch
                self._last_change[gid] = now
            if now - self._last_change.get(gid, 0.0) < policy.min_dwell_s:
                continue
            if per_group:
                group_shed_rate, group_p50 = self._group_signals(gid, now)
            else:
                group_shed_rate, group_p50 = shed_rate, p50
            overloaded = (
                group_shed_rate >= policy.demote_shed_rate
                or (group_p50 is not None
                    and group_p50 >= policy.demote_latency_s))
            if (info.style in (ReplicationStyle.ACTIVE,
                               ReplicationStyle.ACTIVE_WITH_VOTING)
                    and info.style is not policy.demote_to and overloaded):
                self._baseline.setdefault(gid, info.style)
                self.stats["demotions_requested"] += 1
                self._emit(info, policy.demote_to, reason="overload",
                           shed_rate=group_shed_rate, p50=group_p50)
            elif (info.style is policy.demote_to
                    and gid in self._baseline
                    and fault_rate >= policy.promote_fault_rate):
                self.stats["promotions_requested"] += 1
                self._emit(info, self._baseline[gid], reason="faults",
                           fault_rate=fault_rate)

    def _emit(self, info: GroupInfo, style: ReplicationStyle,
              reason: str = "", **signals) -> None:
        fl = self.rm.flight
        if fl.enabled:
            fl.record("flight.style", group=info.group_id,
                      style=style.value, epoch=info.style_epoch + 1,
                      reason=reason,
                      **{k: v for k, v in sorted(signals.items())})
        self.rm.multicast(DomainMessage(
            kind=MsgKind.STYLE_SWITCH, source_group=0, target_group=0,
            data={"group_id": info.group_id, "style": style.value,
                  "epoch": info.style_epoch + 1}))


class EvolutionManager:
    """Rolling live-upgrade driver (one replica at a time)."""

    def __init__(self, domain: "FaultToleranceDomain") -> None:
        self.domain = domain

    def upgrade_group(self, group_name: str, new_factory_name: str,
                      settle_timeout: float = 30.0) -> Promise:
        """Upgrade every replica of ``group_name`` to ``new_factory_name``.

        Returns a promise resolved with the new version number once all
        replicas run the new factory's code.
        """
        promise = Promise()
        rm = self.domain.coordinator_rm()
        info = rm.registry.by_name(group_name)
        if info is None:
            promise.reject(InvocationFailure("IDL:repro/NoSuchObject:1.0",
                                             group_name))
            return promise
        new_version = info.version + 1
        upgraded = dc_replace(info, version=new_version,
                              factory_name=new_factory_name)
        rm.multicast(DomainMessage(
            kind=MsgKind.GROUP_ANNOUNCE, source_group=0, target_group=0,
            data={"info": upgraded}))
        plan = list(info.placement)
        state = {"remaining": plan, "current": None}

        def step() -> None:
            if not state["remaining"]:
                promise.resolve(new_version)
                return
            host = state["remaining"].pop(0)
            state["current"] = host
            rm.multicast(DomainMessage(
                kind=MsgKind.REMOVE_REPLICA, source_group=0, target_group=0,
                data={"group_id": info.group_id, "host": host}))
            rm.multicast(DomainMessage(
                kind=MsgKind.ADD_REPLICA, source_group=0, target_group=0,
                data={"group_id": info.group_id, "host": host}))

        def on_ready(group_id: int, host: str, version: int) -> None:
            if promise.done or group_id != info.group_id:
                return
            if host == state["current"]:
                step()

        rm.on_replica_ready(on_ready)
        step()
        return promise
