"""Marshalling-level request/reply dispatch shared by ORB and Eternal.

Both the plain ORB server (an unreplicated CORBA server outside any
fault tolerance domain) and the Eternal Replication Mechanisms (which
dispatch delivered IIOP requests to local replicas) perform the same
steps: unmarshal arguments per the interface definition, invoke the
servant method, and marshal a reply — mapping Python exceptions to
CORBA user/system exceptions.  Keeping the logic here guarantees the
two paths produce byte-identical replies for identical inputs, which is
what lets the gateway forward server-replica replies verbatim to
unreplicated clients.
"""

from __future__ import annotations

import inspect
from typing import Any, List, Sequence, Tuple

from ..errors import (
    BadOperation,
    CorbaSystemException,
    InvocationFailure,
    MarshalError,
)
from ..iiop.cdr import CdrInputStream, CdrOutputStream
from ..iiop.giop import ReplyMessage, ReplyStatus, RequestMessage, encode_reply
from ..iiop.types import decode_values, encode_values
from .idl import Operation
from .servant import Servant


def decode_arguments(op: Operation, request: RequestMessage,
                     little_endian: bool = False) -> List[Any]:
    """Unmarshal the request body per the operation's parameter list."""
    stream = CdrInputStream(request.body, little_endian=little_endian)
    return decode_values(op.param_typecodes, stream)


def encode_arguments(op: Operation, args: Sequence[Any]) -> bytes:
    """Marshal arguments into a request body (big-endian)."""
    out = CdrOutputStream()
    encode_values(op.param_typecodes, list(args), out)
    return out.getvalue()


def encode_result_body(op: Operation, value: Any) -> bytes:
    out = CdrOutputStream()
    op.result.encode(out, value)
    return out.getvalue()


def decode_result(op: Operation, reply: ReplyMessage,
                  little_endian: bool = False) -> Any:
    """Turn a Reply into a return value or raise the carried exception."""
    stream = CdrInputStream(reply.body, little_endian=little_endian)
    if reply.status == ReplyStatus.NO_EXCEPTION:
        return op.result.decode(stream)
    if reply.status == ReplyStatus.USER_EXCEPTION:
        repo_id = stream.read_string()
        detail = stream.read_string()
        raise InvocationFailure(repo_id, detail)
    if reply.status == ReplyStatus.SYSTEM_EXCEPTION:
        repo_id = stream.read_string()
        minor = stream.read_ulong()
        raise CorbaSystemException(repo_id, minor=minor)
    raise MarshalError(f"unsupported reply status {reply.status}")


def _user_exception_body(exc: InvocationFailure) -> bytes:
    out = CdrOutputStream()
    out.write_string(exc.repo_id)
    out.write_string(exc.detail)
    return out.getvalue()


def _system_exception_body(exc: Exception) -> bytes:
    out = CdrOutputStream()
    out.write_string(f"IDL:omg.org/CORBA/{type(exc).__name__}:1.0")
    out.write_ulong(getattr(exc, "minor", 0))
    return out.getvalue()


def reply_for_exception(request_id: int, exc: Exception) -> bytes:
    """Encode the Reply bytes reporting ``exc`` for ``request_id``."""
    if isinstance(exc, InvocationFailure):
        status, body = ReplyStatus.USER_EXCEPTION, _user_exception_body(exc)
    else:
        status, body = ReplyStatus.SYSTEM_EXCEPTION, _system_exception_body(exc)
    return encode_reply(ReplyMessage(request_id=request_id, status=status,
                                     body=body))


def reply_for_result(request_id: int, op: Operation, value: Any) -> bytes:
    """Encode the successful Reply bytes for ``request_id``."""
    return encode_reply(ReplyMessage(
        request_id=request_id,
        status=ReplyStatus.NO_EXCEPTION,
        body=encode_result_body(op, value),
    ))


def start_invocation(servant: Servant, request: RequestMessage,
                     little_endian: bool = False) -> Tuple[Operation, Any]:
    """Begin executing a request against a servant.

    Returns ``(operation, outcome)`` where ``outcome`` is either the
    final return value or a *generator* (the servant needs nested
    invocations; the caller — the Replication Mechanisms — must drive
    it).  Marshalling or application errors propagate as exceptions for
    the caller to convert via :func:`reply_for_exception`.
    """
    interface = servant.interface
    op = interface.operation(request.operation)
    args = decode_arguments(op, request, little_endian=little_endian)
    method = getattr(servant, op.name, None)
    if method is None:
        raise BadOperation(
            f"servant {type(servant).__name__} lacks method {op.name!r}")
    outcome = method(*args)
    return op, outcome


def run_to_completion(servant: Servant, request: RequestMessage,
                      little_endian: bool = False) -> Tuple[Operation, Any]:
    """Execute a request that must not perform nested invocations.

    Plain (non-Eternal) servers use this: a generator outcome means the
    servant wanted a nested call, which an unreplicated server in this
    reproduction does not support.
    """
    op, outcome = start_invocation(servant, request, little_endian)
    if inspect.isgenerator(outcome):
        raise CorbaSystemException(
            "NO_IMPLEMENT: nested invocations require the fault tolerance "
            "infrastructure")
    return op, outcome
