"""The pre-overhaul binary-heap scheduler, preserved as a semantic oracle.

This module is the single-heap kernel that drove the simulation before
the calendar-queue rewrite in :mod:`repro.sim.scheduler`.  It is kept —
verbatim apart from the ``run_until`` parity fixes and the ``post`` /
``call_every`` additions mirrored in the new kernel — for two reasons:

* **Differential testing.**  ``tests/test_scheduler_differential.py``
  replays every golden scenario and hundreds of Hypothesis-generated
  timer programs on this kernel and the new one side by side and
  requires identical ``(time, tiebreak)`` firing orders.  A reference
  implementation whose behaviour is pinned by years of tests is a far
  stronger oracle than a re-derived model.
* **The race detector.**  :class:`repro.analysis.race.RaceScheduler`
  reorders same-time cohorts by reaching into the heap representation
  (``_queue`` entries, ``Timer._key``, ``_pop_stale``).  It subclasses
  this kernel, whose layout is frozen, rather than chasing the
  performance kernel's internals.

The semantics contract shared with :class:`repro.sim.scheduler.Scheduler`:
events fire in ``(time, tiebreak)`` order with the tiebreak drawn at
scheduling (or reschedule/rearm) time; ``reschedule`` to a later time is
lazy (the stale heap entry re-pushes the authoritative key when it
surfaces); cancelled entries are dropped at pop time and compacted away
when they outnumber half the queue.  Any observable divergence between
the two kernels is a bug in one of them.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError

# Compaction only pays for itself once the queue is non-trivial.
_COMPACT_MIN_QUEUE = 64


class ReferenceTimer:
    """Handle for a scheduled callback; cancellable until it fires.

    ``_key`` is the authoritative ``(time, tiebreak)`` position of the
    timer; ``_queued_key`` is the key of the newest heap entry pushed
    for it.  The two differ only while a lazy ``reschedule`` to a later
    time is pending, in which case the stale entry re-pushes the timer
    at ``_key`` when it surfaces.
    """

    __slots__ = ("time", "fn", "args", "cancelled", "fired",
                 "_key", "_queued_key", "_sched")

    def __init__(self, time: float, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self._key: Tuple[float, int] = (time, -1)
        self._queued_key: Tuple[float, int] = self._key
        self._sched: Optional["ReferenceScheduler"] = None

    def cancel(self) -> None:
        """Prevent the callback from running (no-op if already fired)."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sched is not None:
            self._sched._note_cancelled()

    @property
    def active(self) -> bool:
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<ReferenceTimer t={self.time:.6f} {name} {state}>"


class ReferenceScheduler:
    """Single binary-heap event loop with deterministic same-time ordering."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: List[Tuple[float, int, ReferenceTimer]] = []
        self._tiebreak = itertools.count()
        self._events_processed = 0
        self._running = False
        self._cancelled_in_queue = 0
        self.timers_rescheduled = 0
        self.queue_compactions = 0
        self.batched_posted = 0
        self._m_rescheduled = None  # optional repro.obs counters
        self._m_compactions = None

    def attach_metrics(self, registry) -> None:
        """Export reschedule/compaction counts through a metrics registry."""
        self._m_rescheduled = registry.counter("sched.timers.rescheduled")
        self._m_compactions = registry.counter("sched.queue.compactions")
        registry.counter_fn("sched.post.batched",
                            lambda: self.batched_posted)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> ReferenceTimer:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        timer = ReferenceTimer(time, fn, args)
        timer._sched = self
        key = (time, next(self._tiebreak))
        timer._key = key
        timer._queued_key = key
        heapq.heappush(self._queue, (key[0], key[1], timer))
        return timer

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> ReferenceTimer:
        """Schedule ``fn(*args)`` after a relative ``delay`` (>= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self.now + delay
        timer = ReferenceTimer(time, fn, args)
        timer._sched = self
        key = (time, next(self._tiebreak))
        timer._key = key
        timer._queued_key = key
        heapq.heappush(self._queue, (time, key[1], timer))
        return timer

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> ReferenceTimer:
        """Schedule ``fn(*args)`` at the current time (after pending events)."""
        return self.call_at(self.now, fn, *args)

    def post(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget ``call_after``: no handle is returned.

        Semantically identical to ``call_after`` (one tiebreak is drawn
        here) minus the ability to cancel or reschedule.  The reference
        kernel still allocates a timer; the performance kernel skips the
        allocation entirely, which is the point of the API.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self.now + delay
        timer = ReferenceTimer(time, fn, args)
        timer._sched = self
        key = (time, next(self._tiebreak))
        timer._key = key
        timer._queued_key = key
        heapq.heappush(self._queue, (time, key[1], timer))

    def post_batch(self, delay: float, fn: Callable[..., Any],
                   argss: List[tuple]) -> None:
        """Same-time-cohort bulk push: one ``post`` per ``args``.

        The reference kernel has no bulk fast path — this shim exists so
        the differential harness can replay ``post_batch`` programs on
        both kernels and prove the batch is semantically a loop.
        """
        if not isinstance(argss, (list, tuple)):
            argss = list(argss)
        self.batched_posted += len(argss)
        for args in argss:
            self.post(delay, fn, *args)

    def call_every(self, interval: float, fn: Callable[..., Any],
                   *args: Any) -> ReferenceTimer:
        """Schedule ``fn(*args)`` every ``interval`` until cancelled.

        The first firing is at ``now + interval``.  Each firing re-arms
        the timer *before* running ``fn`` — drawing exactly one fresh
        tiebreak per period, like the chained-``call_after`` idiom it
        replaces — so anything ``fn`` itself schedules sorts after the
        next period's slot.  Cancel the returned handle to stop.
        """
        if interval <= 0:
            raise SimulationError(
                f"call_every requires a positive interval, got {interval}")

        def tick() -> None:
            self.rearm_after(timer, interval)
            if args:
                fn(*args)
            else:
                fn()

        timer = self.call_after(interval, tick)
        return timer

    def reschedule(self, timer: ReferenceTimer, time: float) -> ReferenceTimer:
        """Move a pending timer to absolute ``time`` without re-allocating.

        Exactly equivalent — including same-time ordering — to
        ``timer.cancel()`` followed by ``call_at(time, timer.fn,
        *timer.args)``.  Moves to a later time are lazy: the stale heap
        entry re-pushes the authoritative key when it surfaces.
        """
        if not timer.active:
            raise SimulationError(f"cannot reschedule inactive timer {timer!r}")
        if timer._sched is not self:
            raise SimulationError("timer belongs to a different scheduler")
        if time < self.now:
            raise SimulationError(
                f"cannot reschedule event to t={time} before now={self.now}"
            )
        timer.time = time
        timer._key = (time, next(self._tiebreak))
        if time < timer._queued_key[0]:
            timer._queued_key = timer._key
            heapq.heappush(self._queue, (time, timer._key[1], timer))
        self.timers_rescheduled += 1
        if self._m_rescheduled is not None:
            self._m_rescheduled.inc()
        return timer

    def reschedule_after(self, timer: ReferenceTimer, delay: float) -> ReferenceTimer:
        """Move a pending timer to ``now + delay``; see ``reschedule``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        if timer.cancelled or timer.fired:
            raise SimulationError(f"cannot reschedule inactive timer {timer!r}")
        if timer._sched is not self:
            raise SimulationError("timer belongs to a different scheduler")
        time = self.now + delay
        timer.time = time
        timer._key = (time, next(self._tiebreak))
        if time < timer._queued_key[0]:
            timer._queued_key = timer._key
            heapq.heappush(self._queue, (time, timer._key[1], timer))
        self.timers_rescheduled += 1
        if self._m_rescheduled is not None:
            self._m_rescheduled.inc()
        return timer

    def rearm_after(self, timer: ReferenceTimer, delay: float) -> ReferenceTimer:
        """Re-schedule a timer that has already *fired*, reusing the object."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        if timer.cancelled or not timer.fired:
            raise SimulationError(f"can only rearm a fired timer, got {timer!r}")
        if timer._sched is not self:
            raise SimulationError("timer belongs to a different scheduler")
        timer.fired = False
        time = self.now + delay
        timer.time = time
        key = (time, next(self._tiebreak))
        timer._key = key
        timer._queued_key = key
        heapq.heappush(self._queue, (time, key[1], timer))
        return timer

    # ------------------------------------------------------------------
    # Queue hygiene
    # ------------------------------------------------------------------

    def _note_cancelled(self) -> None:
        self._cancelled_in_queue += 1
        if (len(self._queue) >= _COMPACT_MIN_QUEUE
                and self._cancelled_in_queue > len(self._queue) // 2):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled/duplicate entries and normalise pending lazy
        reschedules to their authoritative keys, in one heapify."""
        live: List[Tuple[float, int, ReferenceTimer]] = []
        for time, tiebreak, timer in self._queue:
            if not timer.active:
                continue
            if (time, tiebreak) != timer._queued_key:
                continue  # superseded duplicate from an earlier-move push
            key = timer._key
            timer._queued_key = key
            live.append((key[0], key[1], timer))
        heapq.heapify(live)
        self._queue = live
        self._cancelled_in_queue = 0
        self.queue_compactions += 1
        if self._m_compactions is not None:
            self._m_compactions.inc()

    def _pop_stale(self, time: float, tiebreak: int, timer: ReferenceTimer) -> None:
        """Bookkeeping for a popped garbage entry (cancelled, superseded,
        or lazily rescheduled)."""
        if timer.cancelled:
            if self._cancelled_in_queue:
                self._cancelled_in_queue -= 1
            return
        if (time, tiebreak) == timer._queued_key:
            key = timer._key
            timer._queued_key = key
            heapq.heappush(self._queue, (key[0], key[1], timer))

    # ------------------------------------------------------------------
    # Driving the loop
    # ------------------------------------------------------------------

    @property
    def pending_events(self) -> int:
        """Number of queued events, including cancelled ones not yet popped."""
        return len(self._queue)

    @property
    def stale_entries(self) -> int:
        """Cancelled entries still sitting in the queue."""
        return self._cancelled_in_queue

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        while self._queue:
            time, tiebreak, timer = heapq.heappop(self._queue)
            if timer.cancelled or (time, tiebreak) != timer._key:
                self._pop_stale(time, tiebreak, timer)
                continue
            self.now = time
            timer.fired = True
            self._events_processed += 1
            timer.fn(*timer.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 10_000_000,
    ) -> int:
        """Run events until quiescence, ``until`` time, or ``max_events``."""
        if self._running:
            raise SimulationError("scheduler re-entered: run() called from an event")
        self._running = True
        processed = 0
        heappop = heapq.heappop
        try:
            # NOTE: self._queue is re-read every iteration on purpose —
            # a compaction triggered inside an event handler rebinds it.
            while self._queue and processed < max_events:
                time, tiebreak, timer = self._queue[0]
                if until is not None and time > until:
                    break
                heappop(self._queue)
                if timer.cancelled or (time, tiebreak) != timer._key:
                    self._pop_stale(time, tiebreak, timer)
                    continue
                self.now = time
                timer.fired = True
                self._events_processed += 1
                processed += 1
                timer.fn(*timer.args)
            if processed >= max_events:
                raise SimulationError(
                    f"event budget exhausted ({max_events} events): likely a livelock"
                )
        finally:
            self._running = False
        if until is not None and self.now < until:
            self.now = until
        return processed

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 60.0,
        max_events: int = 10_000_000,
    ) -> None:
        """Run until ``predicate()`` is true; raise on simulated timeout.

        Mirrors ``run`` exactly (the historical drift is fixed in both
        kernels): re-entry from an event handler raises instead of
        corrupting the loop; the deadline is checked against the *peeked*
        head so a timeout leaves the due event queued rather than
        silently consuming it; and the event budget raises the moment it
        is fully spent, exactly as ``run(max_events=N)`` does after its
        N-th event.
        """
        if self._running:
            raise SimulationError(
                "scheduler re-entered: run_until() called from an event")
        self._running = True
        processed = 0
        deadline = self.now + timeout
        heappop = heapq.heappop
        try:
            while not predicate():
                queue = self._queue
                if not queue:
                    raise SimulationError(
                        "simulation quiesced before condition became true"
                    )
                time, tiebreak, timer = queue[0]
                if timer.cancelled or (time, tiebreak) != timer._key:
                    heappop(queue)
                    self._pop_stale(time, tiebreak, timer)
                    continue
                if time > deadline:
                    raise SimulationError(
                        f"condition not reached within {timeout}s of simulated time"
                    )
                heappop(queue)
                self.now = time
                timer.fired = True
                self._events_processed += 1
                processed += 1
                timer.fn(*timer.args)
                if processed >= max_events:
                    raise SimulationError(
                        f"event budget exhausted in run_until "
                        f"({max_events} events)")
        finally:
            self._running = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ReferenceScheduler now={self.now:.6f} queued={len(self._queue)}>"
