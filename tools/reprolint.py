#!/usr/bin/env python
"""reprolint — determinism & sim-discipline lint for the reproduction.

Usage:
    python tools/reprolint.py [paths...] [--json report.json]
                              [--graph-dump graph.json]
                              [--protocol-dump protocol.json]
                              [--budget seconds]
                              [--write-baseline] [--verbose]

Thin wrapper over :mod:`repro.analysis.cli`; see docs/STATIC_ANALYSIS.md
for the rule catalogue and suppression syntax.  Exits non-zero on any
violation, parse error, stale baseline entry, or unused/unjustified
suppression — the same bar as the blocking CI job and
``tests/test_reprolint.py``.
"""

import sys

sys.path.insert(0, "src")

from repro.analysis.cli import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
