"""End-to-end: administering the domain from OUTSIDE through the gateway.

The Replication Manager is itself a replicated CORBA object group
(paper section 2), so an external, unreplicated administration client
can drive it through the gateway like any other group: create objects,
inspect properties, remove objects — with the manager's replicas kept
consistent by the same mechanisms.
"""

import json

import pytest

from repro import FtClientLayer, Orb, World
from repro.apps import COUNTER_INTERFACE, CounterServant
from repro.eternal import REPLICATION_MANAGER_GROUP
from repro.eternal.managers import REPLICATION_MANAGER_INTERFACE

from tests.helpers import make_domain


def admin_stub(world, domain, enhanced=True):
    host = world.add_host("admin-console")
    orb = Orb(world, host, request_timeout=None)
    ior = domain.interceptor.published_ior(
        REPLICATION_MANAGER_GROUP, REPLICATION_MANAGER_INTERFACE.repo_id)
    if enhanced:
        layer = FtClientLayer(orb, client_uid="admin/console")
        return layer.string_to_object(ior.to_string(),
                                      REPLICATION_MANAGER_INTERFACE)
    return orb.string_to_object(ior.to_string(),
                                REPLICATION_MANAGER_INTERFACE)


def test_external_admin_creates_object_group(world):
    domain = make_domain(world, gateways=1)
    domain.register_interface(COUNTER_INTERFACE)
    domain.register_factory("counter_factory", CounterServant)
    admin = admin_stub(world, domain)
    ior_string = world.await_promise(admin.call(
        "create_object", "AdminCounter", "Counter", "counter_factory",
        "active", 3, 2), timeout=600)
    assert ior_string.startswith("IOR:")
    # The created group is live: invoke it through the same gateway.
    handle = domain.resolve("AdminCounter")
    assert world.await_promise(handle.invoke("increment", 4),
                               timeout=600) == 4


def test_external_admin_reads_properties(world):
    domain = make_domain(world, gateways=1)
    domain.register_interface(COUNTER_INTERFACE)
    domain.register_factory("counter_factory", CounterServant)
    admin = admin_stub(world, domain)
    world.await_promise(admin.call(
        "create_object", "X", "Counter", "counter_factory",
        "warm_passive", 2, 1), timeout=600)
    props = json.loads(world.await_promise(
        admin.call("get_properties", "X"), timeout=600))
    assert props["style"] == "warm_passive"
    assert len(props["placement"]) == 2


def test_external_admin_removes_object(world):
    domain = make_domain(world, gateways=1)
    domain.register_interface(COUNTER_INTERFACE)
    domain.register_factory("counter_factory", CounterServant)
    admin = admin_stub(world, domain)
    world.await_promise(admin.call(
        "create_object", "Doomed", "Counter", "counter_factory",
        "active", 2, 1), timeout=600)
    world.await_promise(admin.call("remove_object", "Doomed"), timeout=600)
    world.run(until=world.now + 0.5)
    assert domain.coordinator_rm().registry.by_name("Doomed") is None


def test_admin_survives_gateway_failover(world):
    domain = make_domain(world, gateways=2)
    domain.register_interface(COUNTER_INTERFACE)
    domain.register_factory("counter_factory", CounterServant)
    admin = admin_stub(world, domain, enhanced=True)
    world.await_promise(admin.call(
        "create_object", "A", "Counter", "counter_factory", "active", 2, 1),
        timeout=600)
    world.faults.crash_now(domain.gateways[0].host.name)
    props = world.await_promise(admin.call("get_properties", "A"),
                                timeout=600)
    assert json.loads(props)["group_id"] >= 10


def test_manager_replicas_stay_consistent_under_admin_load(world):
    domain = make_domain(world, gateways=1)
    domain.register_interface(COUNTER_INTERFACE)
    domain.register_factory("counter_factory", CounterServant)
    admin = admin_stub(world, domain)
    for i in range(4):
        world.await_promise(admin.call(
            "create_object", f"G{i}", "Counter", "counter_factory",
            "active", 2, 1), timeout=600)
    world.run(until=world.now + 0.5)
    snapshots = set()
    for rm in domain.rms.values():
        if rm.alive:
            snapshots.add(tuple(sorted(
                g.name for g in rm.registry.all_groups())))
    assert len(snapshots) == 1
    assert {"G0", "G1", "G2", "G3"} <= set(snapshots.pop())
