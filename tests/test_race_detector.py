"""Tests for the dynamic race detector (``repro.analysis.race``).

Three layers: the :class:`RaceScheduler` must be observationally
equivalent to the base :class:`Scheduler` when replaying the identity
order; the :class:`CohortPermuter` must only ever emit *legal*
orderings (per-source FIFO kept, barriers immovable); and the full
:func:`permutation_sweep` over the golden scenarios must hold every
semantic artifact byte-identical — the acceptance property this PR
exists to verify.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.race import (CohortPermuter, RaceRecorder, RaceScheduler,
                                 _lane_of, partition_metric_series,
                                 permutation_sweep)
from repro.analysis.scenarios import GOLDEN_SCENARIOS
from repro.errors import SimulationError
from repro.sim.reference_scheduler import ReferenceTimer
from repro.sim.scheduler import Scheduler


# ----------------------------------------------------------------------
# Identity equivalence: RaceScheduler(permuter=None) == Scheduler
# ----------------------------------------------------------------------


def _exercise(sched):
    """A workload with same-time cohorts, cancels, lazy reschedules and
    events that schedule follow-ups at the current instant."""
    log = []

    def note(tag):
        log.append((sched.now, tag))

    def chain(tag, depth):
        log.append((sched.now, tag))
        if depth:
            sched.call_soon(chain, f"{tag}+", depth - 1)

    sched.call_at(1.0, note, "a")
    sched.call_at(1.0, note, "b")
    victim = sched.call_at(1.0, note, "never")
    sched.call_at(1.0, victim.cancel)
    sched.call_at(1.0, chain, "c", 2)
    moved = sched.call_at(2.0, note, "moved")
    sched.call_at(1.5, lambda: sched.reschedule(moved, 3.0))
    late = sched.call_at(5.0, note, "late")
    sched.call_at(2.5, lambda: sched.reschedule(late, 2.5))
    sched.run()
    return log, sched.now, sched.events_processed


def test_identity_replay_matches_base_scheduler():
    base = _exercise(Scheduler())
    race = _exercise(RaceScheduler())
    assert race == base


def test_cancel_inside_cohort_respected():
    """A cohort member cancelling a same-time sibling must still win:
    liveness is re-checked at fire time, not just at extraction."""
    sched = RaceScheduler()
    fired = []
    victim = sched.call_at(1.0, fired.append, "victim")
    sched.call_at(1.0, victim.cancel)
    sched.call_at(1.0, fired.append, "survivor")
    sched.run()
    # The cancel was scheduled *after* the victim, so in identity order
    # the victim fires first — but a fresh pre-cancelled one must not:
    assert fired == ["victim", "survivor"]
    sched2 = RaceScheduler()
    fired2 = []
    pre = sched2.call_at(1.0, fired2.append, "victim")
    sched2.call_at(0.5, pre.cancel)
    sched2.call_at(1.0, fired2.append, "survivor")
    sched2.run()
    assert fired2 == ["survivor"]


def test_racescheduler_loop_contracts():
    sched = RaceScheduler()
    assert sched.step() is False
    hits = []
    sched.call_after(1.0, hits.append, 1)
    sched.call_after(1.0, hits.append, 2)
    assert sched.pending_events == 2
    assert sched.step() is True
    # The second cohort member sits extracted in the ready deque:
    assert sched.pending_events == 1
    assert sched.step() is True and hits == [1, 2]

    sched.call_after(1.0, lambda: sched.run())
    with pytest.raises(SimulationError, match="re-entered"):
        sched.run()

    looping = RaceScheduler()

    def again():
        looping.call_soon(again)

    looping.call_soon(again)
    with pytest.raises(SimulationError, match="budget"):
        looping.run(max_events=100)

    waiting = RaceScheduler()
    waiting.call_after(1.0, lambda: None)
    with pytest.raises(SimulationError, match="quiesced"):
        waiting.run_until(lambda: False)
    timed = RaceScheduler()
    timed.call_after(100.0, lambda: None)
    with pytest.raises(SimulationError, match="not reached"):
        timed.run_until(lambda: False, timeout=1.0)


def test_run_advances_clock_to_bound():
    sched = RaceScheduler()
    sched.call_at(1.0, lambda: None)
    sched.run(until=10.0)
    assert sched.now == 10.0


# ----------------------------------------------------------------------
# Permuter legality
# ----------------------------------------------------------------------


class Network:
    """Stand-in whose ``_arrive`` qualname matches the real network's."""

    def _arrive(self, src, payload):
        pass


def _arrival(time, tiebreak, src):
    timer = ReferenceTimer(time, Network()._arrive, (src, b""))
    timer._key = (time, tiebreak)
    return (time, tiebreak, timer)


def _barrier(time, tiebreak):
    def crash():
        pass

    timer = ReferenceTimer(time, crash, ())
    timer._key = (time, tiebreak)
    return (time, tiebreak, timer)


def test_lane_classification():
    assert _lane_of(_arrival(1.0, 0, "h1")[2]) == ("net", "h1")
    assert _lane_of(_barrier(1.0, 0)[2]) is None


def test_permuter_respects_fifo_and_barriers():
    a1, b1, a2 = (_arrival(1.0, 0, "A"), _arrival(1.0, 1, "B"),
                  _arrival(1.0, 2, "A"))
    bar = _barrier(1.0, 3)
    c1, a3 = _arrival(1.0, 4, "C"), _arrival(1.0, 5, "A")
    cohort = [a1, b1, a2, bar, c1, a3]
    changed = 0
    for seed in range(20):
        out = CohortPermuter(seed).permute(1.0, list(cohort))
        assert sorted(map(id, out)) == sorted(map(id, cohort))
        # The barrier never moves, and nothing crosses it:
        assert out[3] is bar
        assert set(map(id, out[:3])) == {id(a1), id(b1), id(a2)}
        # Per-source FIFO: A's arrivals keep their relative order.
        a_order = [e for e in out if _lane_of(e[2]) == ("net", "A")]
        assert a_order == [a1, a2, a3]
        if out != cohort:
            changed += 1
    assert changed > 0, "20 seeds never produced a reordering"


def test_permuter_single_lane_run_is_untouched():
    cohort = [_arrival(2.0, i, "only") for i in range(4)]
    permuter = CohortPermuter(7)
    assert permuter.permute(2.0, list(cohort)) == cohort
    assert permuter.permuted_runs == 0
    assert permuter.changed_cohorts == 0


def test_recorder_counts_and_caps():
    recorder = RaceRecorder(max_records=1)
    recorder.record(1.0, [_arrival(1.0, 0, "A"), _arrival(1.0, 1, "B")])
    recorder.record(2.0, [_arrival(2.0, 2, "A"), _barrier(2.0, 3)])
    summary = recorder.summary()
    assert summary == {"cohorts": 2, "colliding_events": 4,
                       "multi_lane_cohorts": 1, "recorded": 1}


# ----------------------------------------------------------------------
# Metric partition
# ----------------------------------------------------------------------


def test_partition_metric_series_splits_and_canonicalises():
    payload = {"schema": 1, "metrics": {
        "gateway.req.received": {"value": 4},
        "net.bytes.sent": {"value": 480},
        "totem.broadcasts{host=h1}": {"value": 7},
        "sched.queue.compactions": {"value": 2},
    }}
    semantic, effort = partition_metric_series(json.dumps(payload))
    sem = json.loads(semantic)
    assert list(sem["metrics"]) == ["gateway.req.received"]
    assert sem["schema"] == 1
    eff = json.loads(effort)
    # Labelled series partition by their base name; volatile is dropped.
    assert sorted(eff) == ["net.bytes.sent", "totem.broadcasts{host=h1}"]
    # Canonical byte form: compact separators, sorted keys.
    assert semantic == json.dumps(sem, sort_keys=True,
                                  separators=(",", ":"))


# ----------------------------------------------------------------------
# The acceptance property: golden scenarios survive legal reorderings
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(GOLDEN_SCENARIOS))
def test_permutation_sweep_keeps_semantic_artifacts_identical(name):
    report = permutation_sweep(GOLDEN_SCENARIOS[name], name,
                               permutation_seeds=(1, 2, 3))
    assert report.ok, json.dumps(
        report.to_dict()["runs"], indent=2, default=str)
    assert report.divergent_runs == []
    labels = [run.label for run in report.runs]
    assert labels == ["baseline", "identity", "permutation-1",
                      "permutation-2", "permutation-3"]
    # The scenarios genuinely race: every instrumented run saw cohorts,
    # and at least one seed actually reordered something (otherwise the
    # sweep proves nothing).
    for run in report.runs[1:]:
        assert run.recorder["cohorts"] > 0
    assert any(run.permuter["changed_cohorts"] > 0
               for run in report.runs[2:])
    # The report round-trips to JSON for the CI artifact.
    json.dumps(report.to_dict())
