"""E4 (Figure 4): message formats and header overhead.

Figure 4 gives three message layouts: (a) client <-> gateway (bare
IIOP), (b) gateway -> domain and (c) intra-domain (multicast header +
FT/gateway header + IIOP).  This benchmark regenerates the byte-level
table — the size of each layout for a representative invocation — and
measures encode/decode throughput of the header machinery (the work
added to every message crossing the gateway).
"""

from repro.core import (
    OperationId,
    UNUSED_CLIENT_ID,
    decode_ft_header,
    encode_ft_header,
    encode_multicast_message,
    header_overhead,
)
from repro.iiop import RequestMessage, encode_request
from repro.iiop.service_context import ClientIdContext


def representative_request(enhanced=False):
    contexts = []
    if enhanced:
        contexts.append(ClientIdContext("customer/sb/1").to_service_context())
    return encode_request(RequestMessage(
        request_id=42,
        response_expected=True,
        object_key=b"ftdomain/trading/10",
        operation="buy",
        service_contexts=contexts,
        body=b"\x00" * 24,
    ))


def format_table():
    """The Figure 4 table: bytes per layout."""
    plain_iiop = representative_request(enhanced=False)
    enhanced_iiop = representative_request(enhanced=True)
    op = OperationId(0, 42)
    gateway_to_domain = encode_multicast_message(
        client_id=7, source_group=1, target_group=10, op_id=op,
        timestamp=0, iiop=plain_iiop, ring_generation=1,
        sequence_number=120, sender="gw0")
    intra_domain = encode_multicast_message(
        client_id=UNUSED_CLIENT_ID, source_group=10, target_group=11,
        op_id=OperationId(120, 1), timestamp=0, iiop=plain_iiop,
        ring_generation=1, sequence_number=121, sender="h0")
    return {
        "a_client_gateway_iiop_bytes": len(plain_iiop),
        "a_enhanced_client_iiop_bytes": len(enhanced_iiop),
        "enhanced_context_overhead_bytes": len(enhanced_iiop) - len(plain_iiop),
        "b_gateway_to_domain_bytes": len(gateway_to_domain),
        "c_intra_domain_bytes": len(intra_domain),
        "ft_header_overhead_bytes": header_overhead(7),
    }


def test_fig4_format_sizes(benchmark):
    table = benchmark.pedantic(format_table, rounds=5, iterations=10)
    # Shapes: the FT/gateway header is a small constant (tens of bytes);
    # layouts (b) and (c) are the IIOP message plus bounded headers; the
    # enhanced client's service context costs a few dozen bytes.
    assert table["ft_header_overhead_bytes"] <= 64
    assert table["b_gateway_to_domain_bytes"] < 2 * table["a_client_gateway_iiop_bytes"]
    assert 8 <= table["enhanced_context_overhead_bytes"] <= 96
    benchmark.extra_info.update(table)


def test_fig4_header_encode_throughput(benchmark):
    op = OperationId(120, 3)

    def encode():
        return encode_ft_header("customer/sb/1#1", 1, 10, op, 171)

    data = benchmark(encode)
    benchmark.extra_info["header_bytes"] = len(data)


def test_fig4_header_decode_throughput(benchmark):
    data = encode_ft_header("customer/sb/1#1", 1, 10, OperationId(120, 3), 171)
    decoded = benchmark(decode_ft_header, data)
    assert decoded[0] == "customer/sb/1#1"


def test_fig4_full_request_encode_throughput(benchmark):
    """The gateway-side cost of re-framing one client request."""
    iiop = representative_request(enhanced=True)
    op = OperationId(0, 42)

    def reframe():
        return encode_multicast_message(
            client_id="customer/sb/1#1", source_group=1, target_group=10,
            op_id=op, timestamp=0, iiop=iiop, ring_generation=1,
            sequence_number=120, sender="gw0")

    message = benchmark(reframe)
    assert len(message) > len(iiop)
