# reprolint: module=repro.core.gateway
"""AUD001 good fixture: every stateful collection is registered."""


class Thing:
    def __init__(self, scope):
        self._pending = {}
        self._cache = {}
        scope.register("thing.pending", lambda: len(self._pending),
                       floor=0)
        scope.register("thing.cache", lambda: len(self._cache),
                       floor=None)
