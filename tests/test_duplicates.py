"""Unit tests for duplicate response suppression and voting (section 3.3)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import DuplicateSuppressor


def test_first_response_delivered_rest_suppressed():
    s = DuplicateSuppressor()
    s.expect("op1")
    verdict, payload = s.offer("op1", b"reply", responder="r0")
    assert verdict == DuplicateSuppressor.DELIVER
    assert payload == b"reply"
    for responder in ("r1", "r2"):
        verdict, _ = s.offer("op1", b"reply", responder=responder)
        assert verdict == DuplicateSuppressor.DUPLICATE
    assert s.stats["delivered"] == 1
    assert s.stats["duplicates_suppressed"] == 2


def test_unexpected_response_reported():
    s = DuplicateSuppressor()
    verdict, _ = s.offer("unknown", b"x")
    assert verdict == DuplicateSuppressor.UNEXPECTED
    assert s.stats["unexpected"] == 1


def test_voting_requires_majority():
    s = DuplicateSuppressor()
    s.expect("op", votes_needed=2)
    verdict, _ = s.offer("op", b"good", responder="r0")
    assert verdict == DuplicateSuppressor.PENDING
    verdict, payload = s.offer("op", b"good", responder="r1")
    assert verdict == DuplicateSuppressor.DELIVER
    assert payload == b"good"


def test_voting_masks_minority_value_fault():
    """One faulty replica returns different bytes; majority wins."""
    s = DuplicateSuppressor()
    s.expect("op", votes_needed=2)
    assert s.offer("op", b"WRONG", responder="bad")[0] == DuplicateSuppressor.PENDING
    assert s.offer("op", b"good", responder="r1")[0] == DuplicateSuppressor.PENDING
    verdict, payload = s.offer("op", b"good", responder="r2")
    assert verdict == DuplicateSuppressor.DELIVER
    assert payload == b"good"


def test_same_responder_cannot_vote_twice():
    s = DuplicateSuppressor()
    s.expect("op", votes_needed=2)
    assert s.offer("op", b"x", responder="r0")[0] == DuplicateSuppressor.PENDING
    assert s.offer("op", b"x", responder="r0")[0] == DuplicateSuppressor.DUPLICATE
    assert s.offer("op", b"x", responder="r1")[0] == DuplicateSuppressor.DELIVER


def test_expect_is_idempotent():
    s = DuplicateSuppressor()
    s.expect("op", votes_needed=2)
    s.expect("op", votes_needed=1)  # later expect does not weaken voting
    assert s.offer("op", b"x", responder="a")[0] == DuplicateSuppressor.PENDING


def test_expect_after_delivery_is_ignored():
    s = DuplicateSuppressor()
    s.expect("op")
    s.offer("op", b"x")
    s.expect("op")
    assert s.offer("op", b"x")[0] == DuplicateSuppressor.DUPLICATE


def test_cancel_removes_expectation():
    s = DuplicateSuppressor()
    s.expect("op")
    s.cancel("op")
    assert s.offer("op", b"x")[0] == DuplicateSuppressor.UNEXPECTED


def test_delivered_memory_is_bounded():
    s = DuplicateSuppressor(remember_delivered=10)
    for i in range(25):
        s.expect(i)
        s.offer(i, b"r")
    # The oldest delivered keys have been evicted.
    assert not s.was_delivered(0)
    assert s.was_delivered(24)


def test_independent_keys_do_not_interfere():
    s = DuplicateSuppressor()
    s.expect("a")
    s.expect("b")
    assert s.offer("a", b"ra")[0] == DuplicateSuppressor.DELIVER
    assert s.offer("b", b"rb")[0] == DuplicateSuppressor.DELIVER


@given(st.integers(1, 7), st.integers(1, 7))
def test_exactly_one_delivery_property(replicas, votes_needed):
    """However many replica responses arrive, at most one is delivered,
    and it is delivered iff enough identical votes arrived."""
    s = DuplicateSuppressor()
    s.expect("op", votes_needed=votes_needed)
    delivered = 0
    for i in range(replicas):
        verdict, _ = s.offer("op", b"same", responder=f"r{i}")
        if verdict == DuplicateSuppressor.DELIVER:
            delivered += 1
    assert delivered == (1 if replicas >= votes_needed else 0)
