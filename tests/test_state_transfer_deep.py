"""Deep coverage of state transfer to new and recovering replicas."""

import pytest

from repro import ReplicationStyle, World
from repro.eternal import DomainMessage, MsgKind

from tests.helpers import make_counter_group, make_domain, replica_counts


def add_replica(domain, group, host):
    domain.coordinator_rm().multicast(DomainMessage(
        kind=MsgKind.ADD_REPLICA, source_group=0, target_group=0,
        data={"group_id": group.group_id, "host": host}))


def spare_host(domain, group):
    return [h for h in domain.replica_host_names
            if h not in group.info().placement][0]


def test_dedup_table_travels_with_state(world):
    """A joiner must inherit the donor's duplicate-detection table, or a
    reissued old invocation would re-execute at the new replica only."""
    domain = make_domain(world, num_hosts=4, gateways=1)
    group = make_counter_group(domain, replicas=3, min_replicas=3)
    from tests.helpers import external_client
    _, stub, _ = external_client(world, domain, group)
    world.await_promise(stub.call("increment", 5), timeout=600)
    world.run(until=world.now + 0.3)
    victim = group.info().placement[0]
    world.faults.crash_now(victim)
    world.run(until=world.now + 2.0)   # replacement + transfer
    replacement = [h for h in group.info().placement if h != victim][-1]
    rm = domain.rms[replacement]
    seen = rm._invocations_seen.get(group.group_id, {})
    assert seen, "dedup table was not transferred"
    # Cached responses came along too (the reissue path depends on them).
    assert any(entry.response_iiop for entry in seen.values())


def test_passive_transfer_records_snapshot_as_checkpoint(world):
    """The snapshot already contains the logged ops' effects, so the
    joiner's log must be empty with a checkpoint at the cut — a later
    promotion replays nothing stale (no double execution)."""
    domain = make_domain(world, num_hosts=4)
    group = make_counter_group(domain, style=ReplicationStyle.COLD_PASSIVE,
                               replicas=3, min_replicas=3,
                               checkpoint_interval=50)  # no checkpoint yet
    for _ in range(4):
        world.await_promise(group.invoke("increment", 1))
    world.run(until=world.now + 0.3)
    victim = group.info().placement[1]   # a backup
    world.faults.crash_now(victim)
    world.run(until=world.now + 2.0)
    replacement = [h for h in group.info().placement][-1]
    log = domain.rms[replacement].logs.get(group.group_id)
    assert log is not None
    assert len(log) == 0                       # covered by the snapshot
    assert log.latest_covered_ts() > 0         # checkpoint at the cut
    # Promotion after the transfer must not double-apply anything:
    # crash the primary; the fresh backup takes over exactly-once.
    primary = group.info().primary(domain.coordinator_rm().live_hosts)
    world.faults.crash_now(primary)
    assert world.await_promise(group.invoke("increment", 1),
                               timeout=600) == 5


def test_two_simultaneous_joiners(world):
    domain = make_domain(world, num_hosts=5)
    group = make_counter_group(domain, replicas=2, min_replicas=2)
    world.await_promise(group.invoke("increment", 9))
    spares = [h for h in domain.replica_host_names
              if h not in group.info().placement][:2]
    for host in spares:
        add_replica(domain, group, host)
    world.run(until=world.now + 2.0)
    info = group.info()
    assert set(spares) <= set(info.placement)
    for host in spares:
        record = domain.rms[host].replicas[group.group_id]
        assert record.ready and record.servant.count == 9
    # All four replicas stay consistent under further traffic.
    world.await_promise(group.invoke("increment", 1))
    world.run(until=world.now + 0.3)
    assert set(replica_counts(domain, group).values()) == {10}


def test_donor_crash_before_transfer_leaves_joiner_pending(world):
    """If the only donor dies before its STATE_TRANSFER is sent, the
    joiner stays un-ready rather than serving uninitialised state."""
    domain = make_domain(world, num_hosts=4)
    group = make_counter_group(domain, replicas=1, min_replicas=1,
                               placement=["dom-h0"])
    world.await_promise(group.invoke("increment", 3))
    # Sabotage the donor: its state-transfer send is suppressed, then
    # it dies — the joiner must not fabricate state.
    donor_rm = domain.rms["dom-h0"]
    original = donor_rm.multicast

    def drop_transfers(message):
        if message.kind is MsgKind.STATE_TRANSFER:
            return
        original(message)

    donor_rm.multicast = drop_transfers
    add_replica(domain, group, "dom-h1")
    world.run(until=world.now + 1.0)
    joiner = domain.rms["dom-h1"].replicas[group.group_id]
    assert not joiner.ready
    # Invocations meanwhile are buffered, not executed, at the joiner.
    promise = group.invoke("increment", 1)
    world.await_promise(promise, timeout=600)  # donor still serves
    assert joiner.buffered


def test_transfer_includes_in_flight_buffering_boundary(world):
    """Invocations ordered between ADD_REPLICA and STATE_TRANSFER are
    buffered at the joiner and applied exactly once after the snapshot
    (the snapshot covers everything before the cut, the buffer after)."""
    domain = make_domain(world, num_hosts=4)
    group = make_counter_group(domain, replicas=2, min_replicas=2)
    world.await_promise(group.invoke("increment", 1))
    spare = spare_host(domain, group)
    add_replica(domain, group, spare)
    # Race traffic into the transfer window.
    promises = [group.invoke("increment", 1) for _ in range(8)]
    world.run_until_done(promises, timeout=600)
    world.run(until=world.now + 2.0)
    counts = replica_counts(domain, group)
    assert counts[spare] == 9
    assert set(counts.values()) == {9}


def test_replacement_after_replacement(world):
    """Serial failures: each replacement becomes a donor for the next."""
    domain = make_domain(world, num_hosts=5)
    group = make_counter_group(domain, replicas=2, min_replicas=2)
    world.await_promise(group.invoke("increment", 4))
    for round_no in range(2):
        victim = group.info().placement[0]
        world.faults.crash_now(victim)
        world.run(until=world.now + 2.0)
        assert len(group.info().placement) == 2
        world.await_promise(group.invoke("increment", 1), timeout=600)
    assert set(replica_counts(domain, group).values()) == {6}
