"""Systematic fault sweep: crash every component at a grid of instants.

A lightweight model-checking-style campaign: the same fixed workload is
run once per (victim, crash-time) pair covering every processor in the
domain — replica hosts, both gateways — and a grid of crash instants
spanning connection setup, request forwarding, execution and reply.
After every run the invariants must hold:

* the enhanced client's completed operations form a prefix-free,
  exactly-once sequence (results are 1..k for some k = all of them,
  since redundant gateways + reissue mask every single fault);
* every surviving replica holds exactly k;
* the simulation reached quiescence (no livelock).

The full cartesian sweep lives in ``tools/chaos_sweep.py``; this test
runs a bounded grid so the suite stays fast.
"""

import pytest

from repro import FtClientLayer, Orb, World
from repro.apps import COUNTER_INTERFACE

from tests.helpers import make_counter_group, make_domain, replica_counts

OPERATIONS = 4


def run_scenario(victim_index, crash_delay, seed=5):
    world = World(seed=seed, trace=False)
    domain = make_domain(world, num_hosts=4, gateways=2)
    group = make_counter_group(domain, replicas=3, min_replicas=2)
    host = world.add_host("browser")
    orb = Orb(world, host, request_timeout=None)
    layer = FtClientLayer(orb, client_uid="chaos")
    stub = layer.string_to_object(domain.ior_for(group).to_string(),
                                  COUNTER_INTERFACE)

    victims = ([h.name for h in domain.hosts])
    victim = victims[victim_index % len(victims)]
    world.scheduler.call_after(crash_delay,
                               lambda: world.faults.crash_now(victim))
    results = []
    for _ in range(OPERATIONS):
        results.append(world.await_promise(stub.call("increment", 1),
                                           timeout=600))
    world.run(until=world.now + 2.0)
    counts = set(replica_counts(domain, group).values())
    # Quiescence also means reclamation: no live component may hold
    # per-client state above its declared floor (repro.obs.audit).
    world.audit(strict=True)
    return victim, results, counts


# Crash instants (seconds): before the first request arrives, during
# forwarding, during execution/reply, and between operations.
GRID = [0.01, 0.05, 0.09, 0.2, 0.5]


@pytest.mark.parametrize("victim_index", range(6))
@pytest.mark.parametrize("crash_delay", GRID)
def test_single_fault_never_violates_exactly_once(victim_index, crash_delay):
    victim, results, counts = run_scenario(victim_index, crash_delay)
    assert results == [1, 2, 3, 4], (victim, crash_delay, results)
    assert counts == {OPERATIONS}, (victim, crash_delay, counts)
