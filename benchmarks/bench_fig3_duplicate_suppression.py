"""E3 (Figure 3): duplicate response suppression at the gateway.

The paper's claim: an actively replicated server of degree *n* returns
*n* responses to each invocation; the gateway delivers exactly one to
the unreplicated client and suppresses the other *n-1*.

The benchmark sweeps the replication degree and reports, per degree,
the responses generated, delivered, and suppressed — the series a
Figure 3 measurement would plot — and asserts the n-1 shape.
"""

import pytest

from repro import World

from common import build_domain, counter_group, external_stub, replica_values

DEGREES = [1, 2, 3, 5]
REQUESTS = 10


def run_degree(degree):
    world = World(seed=100 + degree, trace=False)
    domain = build_domain(world, num_hosts=max(3, degree), gateways=1)
    group = counter_group(domain, replicas=degree)
    stub, _ = external_stub(world, domain, group, enhanced=False)
    for _ in range(REQUESTS):
        world.await_promise(stub.call("increment", 1), timeout=600)
    world.run(until=world.now + 0.5)  # drain trailing duplicates
    gateway = domain.gateways[0]
    assert set(replica_values(domain, group).values()) == {REQUESTS}
    return {
        "degree": degree,
        "delivered": gateway.stats["responses_delivered"],
        "suppressed": gateway.stats["duplicates_suppressed"],
        "responses_total": (gateway.stats["responses_delivered"]
                            + gateway.stats["duplicates_suppressed"]),
    }


@pytest.mark.parametrize("degree", DEGREES)
def test_fig3_duplicate_suppression(benchmark, degree):
    row = benchmark.pedantic(run_degree, args=(degree,), rounds=2,
                             iterations=1)
    # Paper shape: n responses per invocation, exactly 1 delivered.
    assert row["delivered"] == REQUESTS
    assert row["suppressed"] == (degree - 1) * REQUESTS
    assert row["responses_total"] == degree * REQUESTS
    benchmark.extra_info.update(row)


def test_fig3_direct_access_would_diverge(benchmark):
    """The inverse experiment: bypassing the gateway (invoking a single
    replica directly) violates replica consistency — the reason the
    gateway must exist (paper section 3)."""

    def run():
        world = World(seed=99, trace=False)
        domain = build_domain(world, gateways=1)
        group = counter_group(domain, replicas=3)
        stub, _ = external_stub(world, domain, group, enhanced=False)
        world.await_promise(stub.call("increment", 1), timeout=600)
        # Direct single-replica access, as a TCP connection to one
        # replica's host would do.
        lone = domain.rms[group.info().placement[0]].replicas[group.group_id]
        lone.servant.increment(10)
        values = set(replica_values(domain, group).values())
        return {"distinct_states": len(values)}

    row = benchmark.pedantic(run, rounds=2, iterations=1)
    assert row["distinct_states"] > 1  # inconsistent replication
    benchmark.extra_info.update(row)
