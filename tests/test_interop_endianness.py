"""Interop tests: byte-order variations a foreign ORB could produce."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.iiop import (
    CdrOutputStream,
    ClientIdContext,
    Ior,
    decode_request,
    encode_request,
    RequestMessage,
)
from repro.iiop.cdr import encapsulate


def test_little_endian_ior_is_readable():
    """A foreign little-endian ORB stringifies an IOR; we must parse it."""

    def build(out: CdrOutputStream) -> None:
        reference = Ior.for_endpoints("IDL:foreign/Obj:1.0",
                                      [("gw", 2809)], b"key")
        reference.encode(out)

    data = encapsulate(build, little_endian=True)
    text = "IOR:" + data.hex()
    ior = Ior.from_string(text)
    assert ior.type_id == "IDL:foreign/Obj:1.0"
    assert ior.primary_profile().address == ("gw", 2809)
    assert ior.primary_profile().object_key == b"key"


def test_little_endian_request_through_decoder():
    message = encode_request(RequestMessage(
        request_id=7, response_expected=True, object_key=b"ftdomain/d/10",
        operation="op", body=b"\x01\x02\x03\x04"), little_endian=True)
    decoded = decode_request(message)
    assert decoded.little_endian is True
    assert decoded.request_id == 7
    assert decoded.object_key == b"ftdomain/d/10"


def test_gateway_accepts_little_endian_clients(world):
    """A client whose ORB marshals little-endian still goes through the
    gateway unchanged (the gateway forwards bytes verbatim; the server
    RM decodes per the flag)."""
    from repro.iiop.giop import encode_request as enc
    from tests.helpers import external_client, make_counter_group, make_domain
    import repro.orb.orb as orb_module

    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    _, stub, _ = external_client(world, domain, group, enhanced=False)

    # Patch this stub's encoding to little-endian.
    original_invoke = stub.invoke

    def invoke_le(operation, args=(), timeout=None):
        # Rebuild the request exactly as Stub.invoke does, but LE.
        op = stub.interface.operation(operation)
        from repro.iiop.giop import RequestMessage as RM
        from repro.orb.dispatch import encode_arguments
        from repro.sim.world import Promise
        promise = Promise()
        request = RM(
            request_id=stub.orb.next_request_id(),
            response_expected=not op.oneway,
            object_key=stub.ior.primary_profile().object_key,
            operation=op.name,
            service_contexts=stub.requester.service_contexts(),
            body=b"",
        )
        # LE body to match the LE message.
        out_args = encode_arguments(op, list(args))
        # encode_arguments is BE; re-encode manually little-endian:
        from repro.iiop.cdr import CdrOutputStream
        from repro.iiop.types import encode_values
        out = CdrOutputStream(little_endian=True)
        encode_values(op.param_typecodes, list(args), out)
        request.body = out.getvalue()
        encoded = enc(request, little_endian=True)
        stub.requester.send(stub, op, request, encoded, promise)
        return promise

    assert world.await_promise(invoke_le("increment", [5]),
                               timeout=600) == 5
    assert world.await_promise(stub.call("value"), timeout=600) == 5


@given(st.from_regex(r"[a-z0-9/._\-]{1,60}", fullmatch=True),
       st.integers(1, 2**31 - 1))
def test_client_id_context_roundtrip_property(uid, incarnation):
    ctx = ClientIdContext(uid, incarnation)
    service_context = ctx.to_service_context()
    assert ClientIdContext.from_bytes(service_context.data) == ctx
