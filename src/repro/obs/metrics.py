"""Typed metrics: counters, gauges, and streaming histograms.

The registry is the reproduction's single source of quantitative truth.
Every component of a :class:`~repro.sim.world.World` shares one
:class:`MetricsRegistry` (reachable as ``world.metrics`` and, from any
:class:`~repro.sim.host.Process`, via the ``metrics`` property), so a
scenario's behaviour — request latency distributions, token rotations,
duplicate suppressions, recovery durations — can be read off after the
run instead of being re-derived from ad-hoc ``stats`` dicts.

Two clocks coexist:

* the **simulated** clock (the deterministic ``Scheduler``), which all
  default metrics read.  Two runs of the same seeded scenario produce
  *byte-identical* snapshots of these metrics;
* the **wall clock** (:func:`repro.obs.hostclock.wall_clock`, the
  repo's single sanctioned host-time boundary), for metrics created
  with ``wall=True``.  Wall metrics measure simulator throughput, vary
  from run to run, and are therefore excluded from the default
  snapshot.

Metric names are hierarchical, dot-separated, lowercase
(``gateway.req.latency``, ``totem.token.rotation``, ``giop.bytes.out``)
so reports group naturally by subsystem.  See docs/OBSERVABILITY.md for
the full catalogue.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import ConfigurationError
from .hostclock import wall_clock as _host_wall_clock

ClockFn = Callable[[], float]

_NAME_CHARS = frozenset("abcdefghijklmnopqrstuvwxyz0123456789_")


def _validate_name(name: str) -> str:
    segments = name.split(".")
    if not segments or any(
            not seg or not set(seg) <= _NAME_CHARS for seg in segments):
        raise ConfigurationError(
            f"invalid metric name {name!r}: want dot-separated lowercase "
            "segments of [a-z0-9_]")
    return name


class Metric:
    """Common base: a named, typed, optionally wall-clock metric."""

    kind = "metric"

    def __init__(self, name: str, unit: str = "", wall: bool = False) -> None:
        self.name = name
        self.unit = unit
        self.wall = wall

    def snapshot(self) -> Dict[str, Any]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing count of events."""

    kind = "counter"

    def __init__(self, name: str, unit: str = "", wall: bool = False) -> None:
        super().__init__(name, unit, wall)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc by {amount})")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": self.kind, "unit": self.unit, "value": self.value}


class Gauge(Metric):
    """A value that can move both ways (queue depths, live host counts)."""

    kind = "gauge"

    def __init__(self, name: str, unit: str = "", wall: bool = False) -> None:
        super().__init__(name, unit, wall)
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": self.kind, "unit": self.unit, "value": self.value}


class CallbackCounter(Counter):
    """Counter whose value is read from a callback at snapshot time.

    The lazy-instrumentation seam: hot-path components (the scheduler,
    the network) keep plain int attributes and export them through one
    of these, so the fast paths never touch a metric object.  Reads are
    as cheap as the callback; writes through ``inc`` are rejected —
    the owning component's attribute is the single source of truth.
    """

    kind = "counter"

    def __init__(self, name: str, fn: Callable[[], int], unit: str = "",
                 wall: bool = False) -> None:
        # Deliberately skip Counter.__init__: it assigns the plain
        # ``value`` attribute this class replaces with a property.
        Metric.__init__(self, name, unit, wall)
        self._fn = fn

    @property
    def value(self) -> int:  # type: ignore[override]
        return self._fn()

    def inc(self, amount: int = 1) -> None:
        raise ConfigurationError(
            f"counter {self.name} is callback-backed; increment the "
            "owning component's attribute instead")


def _bucket_boundaries(base: float, growth: float, top: float) -> List[float]:
    bounds = [base]
    while bounds[-1] < top:
        bounds.append(bounds[-1] * growth)
    return bounds


class Histogram(Metric):
    """Streaming distribution with bounded-error quantile estimates.

    Observations land in exponentially growing buckets (first bucket
    ``[0, base)``, then width ×``growth`` per bucket).  Quantiles are
    estimated by linear interpolation within the bucket holding the
    requested rank and clamped to the observed ``[min, max]``, which
    bounds the error of an estimate for exact value ``v`` by
    ``max(base, v * (growth - 1))`` — the width of v's bucket.

    Negative observations are clamped to 0 (durations and sizes are
    non-negative by construction; the clamp keeps a buggy caller from
    corrupting the bucket index).
    """

    kind = "histogram"

    BASE = 1e-6
    GROWTH = 1.15
    _BOUNDS = _bucket_boundaries(BASE, GROWTH, 1e7)

    def __init__(self, name: str, unit: str = "s", wall: bool = False) -> None:
        super().__init__(name, unit, wall)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        # Sparse bucket index -> count; index len(_BOUNDS) is overflow.
        self._buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        if value < 0 or value != value:  # negative or NaN
            value = 0.0
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = bisect_right(self._BOUNDS, value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def quantile(self, q: float) -> Optional[float]:
        """Estimated q-quantile (0 < q <= 1); None when empty."""
        if self.count == 0:
            return None
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index in sorted(self._buckets):
            in_bucket = self._buckets[index]
            if cumulative + in_bucket >= rank:
                lower = 0.0 if index == 0 else self._BOUNDS[index - 1]
                upper = (self._BOUNDS[index] if index < len(self._BOUNDS)
                         else (self.max if self.max is not None else lower))
                fraction = (rank - cumulative) / in_bucket
                estimate = lower + (upper - lower) * fraction
                assert self.min is not None and self.max is not None
                return min(max(estimate, self.min), self.max)
            cumulative += in_bucket
        return self.max  # pragma: no cover - unreachable (counts agree)

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def cumulative_buckets(self) -> List[Tuple[Optional[float], int]]:
        """Cumulative ``(upper_bound, count)`` pairs, Prometheus-style.

        Only occupied buckets are materialised (the geometry is sparse);
        the final pair's bound is None, meaning ``+Inf``.  Empty
        histograms return an empty list."""
        pairs: List[Tuple[Optional[float], int]] = []
        cumulative = 0
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            bound = (self._BOUNDS[index] if index < len(self._BOUNDS)
                     else None)
            pairs.append((bound, cumulative))
        if pairs and pairs[-1][0] is not None:
            pairs.append((None, cumulative))
        return pairs

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "unit": self.unit,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Hierarchically named metrics sharing one simulated clock.

    ``counter`` / ``gauge`` / ``histogram`` create on first use and
    return the existing instance afterwards, so call sites never need a
    registration phase; asking for an existing name with a different
    type (or a different clock domain) raises, which catches drift
    between writers early.
    """

    def __init__(self, clock: Optional[ClockFn] = None,
                 wall_clock: Optional[ClockFn] = None) -> None:
        self.clock: ClockFn = clock if clock is not None else (lambda: 0.0)
        # The default delegates through repro.obs.hostclock on every
        # read, so a test's override_wall_clock() reaches registries
        # built before the override was installed.
        self.wall_clock: ClockFn = (wall_clock if wall_clock is not None
                                    else _host_wall_clock)
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------------
    # Creation / lookup
    # ------------------------------------------------------------------

    def _intern(self, cls, name: str, unit: str, wall: bool) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            # isinstance, not exact type: a CallbackCounter satisfies a
            # later counter() lookup (readers don't care how the value
            # is produced).
            if not isinstance(existing, cls) or existing.wall != wall:
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).kind}(wall={existing.wall}), "
                    f"requested {cls.kind}(wall={wall})")
            return existing
        metric = cls(_validate_name(name), unit=unit, wall=wall)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, unit: str = "",
                wall: bool = False) -> Counter:
        return self._intern(Counter, name, unit, wall)  # type: ignore[return-value]

    def counter_fn(self, name: str, fn: Callable[[], int], unit: str = "",
                   wall: bool = False) -> CallbackCounter:
        """Register (or re-point) a callback-backed counter.

        Re-registering an existing callback counter swaps the callback —
        a rebuilt component (e.g. a fresh scheduler attached to the same
        registry) takes over the metric.  A name already held by a
        writable counter raises: silently shadowing recorded increments
        would corrupt the snapshot.
        """
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not CallbackCounter or existing.wall != wall:
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).kind}(wall={existing.wall}), "
                    f"requested callback counter(wall={wall})")
            existing._fn = fn
            return existing
        metric = CallbackCounter(_validate_name(name), fn, unit=unit,
                                 wall=wall)
        self._metrics[name] = metric
        return metric

    def gauge(self, name: str, unit: str = "", wall: bool = False) -> Gauge:
        return self._intern(Gauge, name, unit, wall)  # type: ignore[return-value]

    def histogram(self, name: str, unit: str = "s",
                  wall: bool = False) -> Histogram:
        return self._intern(Histogram, name, unit, wall)  # type: ignore[return-value]

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def value(self, name: str) -> Any:
        """Counter/gauge value (0 when absent) — test/report convenience."""
        metric = self._metrics.get(name)
        if metric is None:
            return 0
        if isinstance(metric, (Counter, Gauge)):
            return metric.value
        raise ConfigurationError(f"metric {name!r} is a {metric.kind}; "
                                 "read histograms directly")

    # ------------------------------------------------------------------
    # Timing helpers
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """The registry's simulated time (for manual span arithmetic)."""
        return self.clock()

    @contextmanager
    def timer(self, name: str, wall: bool = False) -> Iterator[None]:
        """Time a block into the histogram ``name`` using the metric's
        clock domain (simulated by default, wall with ``wall=True``)."""
        histogram = self.histogram(name, unit="s", wall=wall)
        clock = self.wall_clock if wall else self.clock
        start = clock()
        try:
            yield
        finally:
            histogram.observe(clock() - start)

    def span(self, name: str) -> "Span":
        """Begin an explicit simulated-time span; ``stop()`` records it.

        For callback-style code where a ``with`` block cannot straddle
        the scheduler: stash the span, call ``stop()`` from the
        completion callback."""
        return Span(self.histogram(name, unit="s"), self.clock)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def snapshot(self, include_wall: bool = False) -> Dict[str, Dict[str, Any]]:
        """Plain-dict dump of every metric, sorted by name.

        With the default ``include_wall=False`` the result is a pure
        function of the simulation (byte-identical across reruns of a
        seeded scenario); ``include_wall=True`` adds the wall-clock
        metrics for throughput reports."""
        return {name: metric.snapshot()
                for name, metric in sorted(self._metrics.items())
                if include_wall or not metric.wall}


class Span:
    """One in-flight simulated-time measurement (see ``MetricsRegistry.span``)."""

    __slots__ = ("_histogram", "_clock", "_start", "done")

    def __init__(self, histogram: Histogram, clock: ClockFn) -> None:
        self._histogram = histogram
        self._clock = clock
        self._start = clock()
        self.done = False

    def stop(self) -> float:
        """Record the elapsed simulated time (idempotent); returns it."""
        elapsed = self._clock() - self._start
        if not self.done:
            self.done = True
            self._histogram.observe(elapsed)
        return elapsed
