"""Integration tests for the Totem-style total-order multicast."""

import pytest

from repro.sim import World
from repro.totem import TotemConfig, TotemMember, TotemTransport


class Harness:
    """Builds a ring of members on distinct hosts and records deliveries."""

    def __init__(self, world, count, site="lan"):
        self.world = world
        self.transport = TotemTransport(world.network, "domain")
        self.members = []
        self.delivered = {}   # name -> list of (seq, sender, payload)
        self.memberships = {} # name -> list of member tuples
        for i in range(count):
            host = world.add_host(f"p{i}", site=site)
            member = TotemMember(host, f"p{i}", self.transport,
                                 tracer=world.tracer)
            self.delivered[member.name] = []
            self.memberships[member.name] = []
            member.on_deliver(
                lambda seq, sender, payload, n=member.name:
                self.delivered[n].append((seq, sender, payload)))
            member.on_membership(
                lambda members, ring_id, n=member.name:
                self.memberships[n].append(members))
            self.members.append(member)
        for member in self.members:
            member.start()

    def wait_operational(self, names=None):
        names = names or [m.name for m in self.members]
        live = [m for m in self.members if m.name in names]
        self.world.scheduler.run_until(
            lambda: all(m.state == TotemMember.OPERATIONAL and
                        set(m.members) == set(names) for m in live),
            timeout=30.0)

    def payloads(self, name):
        return [p for (_, _, p) in self.delivered[name]]


def test_ring_forms_and_reaches_operational():
    world = World(seed=1)
    ring = Harness(world, 3)
    ring.wait_operational()
    for member in ring.members:
        assert member.members == ("p0", "p1", "p2")


def test_single_member_ring():
    world = World(seed=2)
    ring = Harness(world, 1)
    ring.wait_operational()
    ring.members[0].multicast("solo")
    world.scheduler.run_until(lambda: ring.payloads("p0") == ["solo"])


def test_multicast_delivered_to_all_members():
    world = World(seed=3)
    ring = Harness(world, 3)
    ring.wait_operational()
    ring.members[0].multicast("hello")
    world.scheduler.run_until(
        lambda: all(ring.payloads(f"p{i}") == ["hello"] for i in range(3)))


def test_total_order_is_identical_everywhere():
    world = World(seed=4)
    ring = Harness(world, 4)
    ring.wait_operational()
    for i, member in enumerate(ring.members):
        for j in range(5):
            member.multicast(f"m{i}.{j}")
    world.scheduler.run_until(
        lambda: all(len(ring.delivered[f"p{i}"]) == 20 for i in range(4)),
        timeout=60.0)
    orders = [ring.payloads(f"p{i}") for i in range(4)]
    assert orders[0] == orders[1] == orders[2] == orders[3]
    seqs = [s for (s, _, _) in ring.delivered["p0"]]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == 20


def test_sender_receives_its_own_messages():
    world = World(seed=5)
    ring = Harness(world, 2)
    ring.wait_operational()
    ring.members[1].multicast("self-delivery")
    world.scheduler.run_until(lambda: ring.payloads("p1") == ["self-delivery"])


def test_sequence_numbers_strictly_increase():
    world = World(seed=6)
    ring = Harness(world, 3)
    ring.wait_operational()
    for _ in range(10):
        ring.members[2].multicast("x")
    world.scheduler.run_until(lambda: len(ring.delivered["p0"]) == 10,
                              timeout=60.0)
    seqs = [s for (s, _, _) in ring.delivered["p0"]]
    assert all(b > a for a, b in zip(seqs, seqs[1:]))


def test_member_crash_triggers_reformation():
    world = World(seed=7)
    ring = Harness(world, 3)
    ring.wait_operational()
    world.faults.crash_now("p1")
    survivors = ["p0", "p2"]
    ring.wait_operational(survivors)
    for name in survivors:
        member = next(m for m in ring.members if m.name == name)
        assert set(member.members) == {"p0", "p2"}


def test_multicast_continues_after_crash():
    world = World(seed=8)
    ring = Harness(world, 3)
    ring.wait_operational()
    ring.members[0].multicast("before")
    world.scheduler.run_until(lambda: "before" in ring.payloads("p2"))
    world.faults.crash_now("p1")
    ring.wait_operational(["p0", "p2"])
    ring.members[0].multicast("after")
    world.scheduler.run_until(lambda: "after" in ring.payloads("p2"),
                              timeout=30.0)
    assert ring.payloads("p0") == ring.payloads("p2") == ["before", "after"]


def test_messages_queued_during_reformation_are_delivered():
    world = World(seed=9)
    ring = Harness(world, 3)
    ring.wait_operational()
    world.faults.crash_now("p2")
    # Queue immediately, before the survivors have even noticed.
    ring.members[0].multicast("queued-during-failure")
    ring.wait_operational(["p0", "p1"])
    world.scheduler.run_until(
        lambda: "queued-during-failure" in ring.payloads("p1"), timeout=30.0)


def test_recovered_member_rejoins_and_sees_new_traffic():
    world = World(seed=10)
    ring = Harness(world, 3)
    ring.wait_operational()
    world.faults.crash_now("p1")
    ring.wait_operational(["p0", "p2"])
    # Recover the processor and start a fresh member process on it.
    world.faults.recover_now("p1")
    host = world.network.host("p1")
    rejoined = TotemMember(host, "p1", ring.transport, tracer=world.tracer)
    ring.delivered["p1"] = []
    rejoined.on_deliver(
        lambda seq, sender, payload: ring.delivered["p1"].append(
            (seq, sender, payload)))
    rejoined.start()
    world.scheduler.run_until(
        lambda: rejoined.state == TotemMember.OPERATIONAL and
        set(rejoined.members) == {"p0", "p1", "p2"}, timeout=30.0)
    ring.members[0].multicast("post-rejoin")
    world.scheduler.run_until(
        lambda: "post-rejoin" in [p for (_, _, p) in ring.delivered["p1"]],
        timeout=30.0)


def test_partition_forms_two_rings():
    world = World(seed=11)
    ring = Harness(world, 4)
    ring.wait_operational()
    world.network.partition({"p0", "p1"}, {"p2", "p3"})
    world.run(until=world.now + 1.0)
    side_a = [m for m in ring.members if m.name in ("p0", "p1")]
    side_b = [m for m in ring.members if m.name in ("p2", "p3")]
    assert all(set(m.members) == {"p0", "p1"} for m in side_a)
    assert all(set(m.members) == {"p2", "p3"} for m in side_b)
    # Ring identities diverge so cross-partition traffic is rejected.
    assert side_a[0].ring_id != side_b[0].ring_id


def test_heal_after_partition_reunites_ring():
    world = World(seed=12)
    ring = Harness(world, 4)
    ring.wait_operational()
    world.network.partition({"p0", "p1"}, {"p2", "p3"})
    world.run(until=world.now + 1.0)
    world.network.heal_partitions()
    # Healing alone does not trigger joins; the next reformation does.
    # Nudge by having one side notice the other via a join broadcast:
    # a token loss in one side is not needed — members re-gather when
    # they hear a foreign join, so force one member to re-join.
    side_b_member = next(m for m in ring.members if m.name == "p2")
    side_b_member._enter_gather("test heal")
    world.scheduler.run_until(
        lambda: all(set(m.members) == {"p0", "p1", "p2", "p3"}
                    for m in ring.members), timeout=30.0)


def test_flow_control_bounds_messages_per_token_visit():
    world = World(seed=13)
    config = TotemConfig(max_messages_per_token=2)
    transport = TotemTransport(world.network, "d")
    members = []
    delivered = []
    for i in range(2):
        host = world.add_host(f"q{i}")
        member = TotemMember(host, f"q{i}", transport, config=config)
        members.append(member)
    members[0].on_deliver(lambda s, snd, p: delivered.append(p))
    for member in members:
        member.start()
    world.scheduler.run_until(
        lambda: all(m.state == TotemMember.OPERATIONAL for m in members))
    for j in range(10):
        members[0].multicast(j)
    world.scheduler.run_until(lambda: len(delivered) == 10, timeout=60.0)
    assert delivered == list(range(10))


def test_delivery_order_survives_heavy_cross_traffic():
    world = World(seed=14)
    ring = Harness(world, 5)
    ring.wait_operational()
    total = 0
    for i, member in enumerate(ring.members):
        for j in range(8):
            member.multicast((i, j))
            total += 1
    world.scheduler.run_until(
        lambda: all(len(ring.delivered[f"p{i}"]) == total for i in range(5)),
        timeout=120.0)
    reference = ring.payloads("p0")
    for i in range(1, 5):
        assert ring.payloads(f"p{i}") == reference
    # Per-sender FIFO: each member's own messages appear in send order.
    for i in range(5):
        own = [p for p in reference if p[0] == i]
        assert own == [(i, j) for j in range(8)]
