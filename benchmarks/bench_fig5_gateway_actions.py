"""E5 (Figure 5): the gateway's per-message action loops.

Figure 5 lists what the gateway does per incoming IIOP message (obtain
client id, map socket, generate identifiers, build header, multicast)
and per incoming multicast (extract identifier, dedup, find socket,
forward reply).  This benchmark measures:

* wall-clock throughput of a full client-request -> reply cycle through
  the gateway (both loops exercised, plus ORB + Totem + RM underneath);
* the simulated per-request latency an external client observes;
* gateway bookkeeping counts proving each Figure 5 step ran.
"""

from repro import World

from common import build_domain, counter_group, external_stub

BATCH = 25


def build():
    world = World(seed=11, trace=False)
    domain = build_domain(world, gateways=1)
    group = counter_group(domain)
    stub, _ = external_stub(world, domain, group, enhanced=False)
    world.await_promise(stub.call("increment", 1), timeout=600)  # warm up
    return world, domain, stub


def test_fig5_request_reply_cycle_throughput(benchmark):
    """Wall-clock cost per complete request/reply through the gateway."""
    world, domain, stub = build()
    state = {"n": 0}

    def one_cycle():
        state["n"] += 1
        world.await_promise(stub.call("increment", 1), timeout=600)

    benchmark(one_cycle)
    gateway = domain.gateways[0]
    assert gateway.stats["requests_forwarded"] == gateway.stats["requests_received"]
    benchmark.extra_info["requests_processed"] = gateway.stats["requests_received"]


def test_fig5_simulated_client_latency(benchmark):
    def run():
        world, domain, stub = build()
        t0 = world.now
        for _ in range(BATCH):
            world.await_promise(stub.call("increment", 1), timeout=600)
        per_request = (world.now - t0) / BATCH
        return {
            "simulated_latency_s": round(per_request, 5),
            # Two WAN hops (client->gw, gw->client) bound the latency
            # from below; the domain adds about one token rotation.
            "wan_floor_s": 0.080,
        }

    row = benchmark.pedantic(run, rounds=2, iterations=1)
    assert row["simulated_latency_s"] >= row["wan_floor_s"]
    assert row["simulated_latency_s"] < 3 * row["wan_floor_s"]
    benchmark.extra_info.update(row)


def test_fig5_pipelined_requests_throughput(benchmark):
    """Clients may pipeline: many requests in flight on one connection.
    Simulated completion time per request drops well below the RTT."""

    def run():
        world, domain, stub = build()
        t0 = world.now
        promises = [stub.call("increment", 1) for _ in range(BATCH)]
        world.run_until_done(promises, timeout=600)
        return {"pipelined_latency_s": round((world.now - t0) / BATCH, 5)}

    row = benchmark.pedantic(run, rounds=2, iterations=1)
    assert row["pipelined_latency_s"] < 0.080  # beats one WAN RTT each
    benchmark.extra_info.update(row)


def test_fig5_gateway_action_counters(benchmark):
    """Every Figure 5 action leaves a countable trace."""

    def run():
        world, domain, stub = build()
        for _ in range(10):
            world.await_promise(stub.call("increment", 1), timeout=600)
        world.run(until=world.now + 0.5)
        return dict(domain.gateways[0].stats)

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats["requests_received"] == 11      # warm-up + 10
    assert stats["requests_forwarded"] == 11
    assert stats["responses_delivered"] == 11
    assert stats["duplicates_suppressed"] == 22  # 2 per request (3 replicas)
    assert stats["clients_connected"] == 1
    benchmark.extra_info.update({k: v for k, v in stats.items() if v})
