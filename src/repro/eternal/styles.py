"""Replication styles supported by the fault tolerance infrastructure.

The paper (section 2) lists the fault tolerance properties a user can
request from the Eternal Replication Manager, including the replication
style: stateless, cold passive, warm passive, active, and active with
voting.  The semantics implemented by the Replication Mechanisms:

============== =================================================================
STATELESS       Every replica executes every invocation; no state is
                checkpointed or transferred (there is none).  Responses are
                deduplicated at the receiver.
COLD_PASSIVE    Only the primary executes.  Backups log delivered invocations;
                the primary's state is checkpointed periodically and multicast.
                On failover the new primary restores the latest checkpoint and
                replays the logged invocations after it.
WARM_PASSIVE    Only the primary executes, and after every operation the
                primary multicasts a state update to the backups.  Failover
                replays only the (usually empty) log suffix after the last
                update.
ACTIVE          Every replica executes every invocation deterministically;
                every replica's response is multicast and duplicates are
                suppressed at the receiver (gateway or invoking group).
ACTIVE_WITH_VOTING
                As ACTIVE, but the receiver delivers a response only once a
                majority of the group's replicas returned byte-identical
                responses, masking value faults of a minority.
============== =================================================================
"""

from __future__ import annotations

import enum


class ReplicationStyle(enum.Enum):
    STATELESS = "stateless"
    COLD_PASSIVE = "cold_passive"
    WARM_PASSIVE = "warm_passive"
    ACTIVE = "active"
    ACTIVE_WITH_VOTING = "active_with_voting"

    @property
    def is_passive(self) -> bool:
        return self in (ReplicationStyle.COLD_PASSIVE,
                        ReplicationStyle.WARM_PASSIVE)

    @property
    def is_active(self) -> bool:
        return self in (ReplicationStyle.ACTIVE,
                        ReplicationStyle.ACTIVE_WITH_VOTING,
                        ReplicationStyle.STATELESS)

    @property
    def needs_voting(self) -> bool:
        return self is ReplicationStyle.ACTIVE_WITH_VOTING

    @property
    def has_state(self) -> bool:
        return self is not ReplicationStyle.STATELESS
