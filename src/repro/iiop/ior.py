"""Interoperable Object References (IORs) with multi-profile support.

An IOR carries a repository type id plus a list of tagged profiles;
each ``TAG_INTERNET_IOP`` profile names one {host, port, object_key}
endpoint.  Two paper mechanisms live here:

* **Address interposition** (section 3.1): Eternal publishes IORs whose
  profile addresses are the *gateway's* {host, port}, so unreplicated
  clients connect to the gateway while believing they talk to the
  server.  :func:`replace_addresses` performs the substitution.
* **Multi-profile stitching** (section 3.5): the Eternal Interceptor
  "stitches" one profile per redundant gateway into a single IOR that an
  enhanced client layer can traverse on failure.  :func:`stitch_profiles`
  builds such IORs; plain ORBs use only the first profile.

``IOR:`` stringification uses the standard hex-of-CDR-encapsulation
form, so references can be passed around as opaque strings exactly as
CORBA applications do.
"""

from __future__ import annotations

import binascii
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..errors import MarshalError
from .cdr import CdrInputStream, CdrOutputStream, decapsulate, encapsulate

TAG_INTERNET_IOP = 0
TAG_MULTIPLE_COMPONENTS = 1


@dataclass(frozen=True)
class IiopProfile:
    """One IIOP endpoint: protocol version, host, port, object key."""

    host: str
    port: int
    object_key: bytes
    version: Tuple[int, int] = (1, 0)

    def encode(self) -> bytes:
        """Encode as the CDR encapsulation body of a TAG_INTERNET_IOP."""

        def build(out: CdrOutputStream) -> None:
            out.write_octet(self.version[0])
            out.write_octet(self.version[1])
            out.write_string(self.host)
            out.write_ushort(self.port)
            out.write_octets(self.object_key)

        return encapsulate(build)

    @staticmethod
    def decode(data: bytes) -> "IiopProfile":
        stream = decapsulate(data)
        major = stream.read_octet()
        minor = stream.read_octet()
        host = stream.read_string()
        port = stream.read_ushort()
        object_key = stream.read_octets()
        return IiopProfile(host=host, port=port, object_key=object_key,
                           version=(major, minor))

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)


@dataclass(frozen=True)
class TaggedProfile:
    tag: int
    data: bytes


@dataclass
class Ior:
    """A CORBA object reference: type id + ordered tagged profiles."""

    type_id: str
    profiles: List[TaggedProfile] = field(default_factory=list)

    # -- construction ----------------------------------------------------

    @staticmethod
    def for_endpoints(type_id: str, endpoints: Sequence[Tuple[str, int]],
                      object_key: bytes) -> "Ior":
        """Build an IOR with one IIOP profile per (host, port) endpoint."""
        profiles = [
            TaggedProfile(TAG_INTERNET_IOP,
                          IiopProfile(host, port, object_key).encode())
            for host, port in endpoints
        ]
        return Ior(type_id=type_id, profiles=profiles)

    # -- profile access ---------------------------------------------------

    def iiop_profiles(self) -> List[IiopProfile]:
        """All TAG_INTERNET_IOP profiles, decoded, in IOR order."""
        return [IiopProfile.decode(p.data) for p in self.profiles
                if p.tag == TAG_INTERNET_IOP]

    def primary_profile(self) -> IiopProfile:
        """The first IIOP profile — all a non-enhanced ORB ever uses."""
        profiles = self.iiop_profiles()
        if not profiles:
            raise MarshalError(f"IOR for {self.type_id} has no IIOP profile")
        return profiles[0]

    # -- wire form ---------------------------------------------------------

    def encode(self, out: CdrOutputStream) -> None:
        out.write_string(self.type_id)
        out.write_ulong(len(self.profiles))
        for profile in self.profiles:
            out.write_ulong(profile.tag)
            out.write_octets(profile.data)

    @staticmethod
    def decode(stream: CdrInputStream) -> "Ior":
        type_id = stream.read_string()
        count = stream.read_ulong()
        if count > 1024:
            raise MarshalError(f"implausible profile count {count}")
        profiles = []
        for _ in range(count):
            tag = stream.read_ulong()
            data = stream.read_octets()
            profiles.append(TaggedProfile(tag, data))
        return Ior(type_id=type_id, profiles=profiles)

    def to_string(self) -> str:
        """Standard ``IOR:<hex>`` stringified reference."""
        data = encapsulate(self.encode)
        return "IOR:" + binascii.hexlify(data).decode("ascii")

    @staticmethod
    def from_string(text: str) -> "Ior":
        if not text.startswith("IOR:"):
            raise MarshalError("stringified reference must start with 'IOR:'")
        try:
            data = binascii.unhexlify(text[4:])
        except (binascii.Error, ValueError) as exc:
            raise MarshalError(f"bad IOR hex: {exc}") from exc
        return Ior.decode(decapsulate(data))


def replace_addresses(ior: Ior, address: Tuple[str, int]) -> Ior:
    """Rewrite every IIOP profile's {host, port} to ``address``.

    Models the paper's interposition of ``getsockname()``/``sysinfo()``
    (section 3.1): the published IOR carries the gateway's address while
    the object key is preserved, so the gateway can still identify the
    target server group.
    """
    host, port = address
    new_profiles = []
    for profile in ior.profiles:
        if profile.tag == TAG_INTERNET_IOP:
            old = IiopProfile.decode(profile.data)
            replacement = IiopProfile(host, port, old.object_key, old.version)
            new_profiles.append(TaggedProfile(TAG_INTERNET_IOP, replacement.encode()))
        else:
            new_profiles.append(profile)
    return Ior(type_id=ior.type_id, profiles=new_profiles)


def stitch_profiles(type_id: str, addresses: Sequence[Tuple[str, int]],
                    object_key: bytes) -> Ior:
    """Build the multi-profile IOR of section 3.5: one IIOP profile per
    redundant gateway, all sharing the server's object key."""
    if not addresses:
        raise MarshalError("cannot stitch an IOR with zero gateway addresses")
    return Ior.for_endpoints(type_id, addresses, object_key)
