"""Unit and property-based tests for CDR marshalling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MarshalError
from repro.iiop import CdrInputStream, CdrOutputStream, decapsulate, encapsulate


def roundtrip(write_fn, read_name, little_endian=False):
    out = CdrOutputStream(little_endian=little_endian)
    write_fn(out)
    stream = CdrInputStream(out.getvalue(), little_endian=little_endian)
    return getattr(stream, read_name)


def test_octet_roundtrip():
    out = CdrOutputStream()
    out.write_octet(0)
    out.write_octet(255)
    stream = CdrInputStream(out.getvalue())
    assert stream.read_octet() == 0
    assert stream.read_octet() == 255


def test_octet_out_of_range():
    out = CdrOutputStream()
    with pytest.raises(MarshalError):
        out.write_octet(256)
    with pytest.raises(MarshalError):
        out.write_octet(-1)


def test_alignment_padding_inserted():
    out = CdrOutputStream()
    out.write_octet(1)
    out.write_ulong(7)
    data = out.getvalue()
    # 1 octet + 3 pad + 4 ulong
    assert len(data) == 8
    assert data[1:4] == b"\x00\x00\x00"


def test_double_alignment():
    out = CdrOutputStream()
    out.write_octet(1)
    out.write_double(2.5)
    data = out.getvalue()
    assert len(data) == 16  # 1 + 7 pad + 8
    stream = CdrInputStream(data)
    assert stream.read_octet() == 1
    assert stream.read_double() == 2.5


def test_big_endian_encoding_bytes():
    out = CdrOutputStream(little_endian=False)
    out.write_ulong(0x01020304)
    assert out.getvalue() == b"\x01\x02\x03\x04"


def test_little_endian_encoding_bytes():
    out = CdrOutputStream(little_endian=True)
    out.write_ulong(0x01020304)
    assert out.getvalue() == b"\x04\x03\x02\x01"


def test_string_includes_nul_and_length():
    out = CdrOutputStream()
    out.write_string("abc")
    data = out.getvalue()
    assert data == b"\x00\x00\x00\x04abc\x00"
    stream = CdrInputStream(data)
    assert stream.read_string() == "abc"


def test_string_rejects_embedded_nul():
    out = CdrOutputStream()
    with pytest.raises(MarshalError):
        out.write_string("a\x00b")


def test_empty_string_roundtrip():
    out = CdrOutputStream()
    out.write_string("")
    stream = CdrInputStream(out.getvalue())
    assert stream.read_string() == ""


def test_octets_roundtrip():
    out = CdrOutputStream()
    out.write_octets(b"\x00\x01\xfe\xff")
    stream = CdrInputStream(out.getvalue())
    assert stream.read_octets() == b"\x00\x01\xfe\xff"


def test_underflow_raises():
    stream = CdrInputStream(b"\x00\x00")
    with pytest.raises(MarshalError):
        stream.read_ulong()


def test_encapsulation_restarts_alignment():
    out = CdrOutputStream()
    out.write_octet(9)  # misalign the outer stream

    def build(inner):
        inner.write_ulong(42)

    out.write_encapsulation(build)
    stream = CdrInputStream(out.getvalue())
    assert stream.read_octet() == 9
    inner = stream.read_encapsulation()
    assert inner.read_ulong() == 42


def test_standalone_encapsulation_helpers():
    data = encapsulate(lambda out: out.write_string("inside"))
    stream = decapsulate(data)
    assert stream.read_string() == "inside"


def test_empty_encapsulation_rejected():
    with pytest.raises(MarshalError):
        decapsulate(b"")


@given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_long_roundtrip_property(value):
    out = CdrOutputStream()
    out.write_long(value)
    assert CdrInputStream(out.getvalue()).read_long() == value


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_ulonglong_roundtrip_property(value):
    out = CdrOutputStream()
    out.write_ulonglong(value)
    assert CdrInputStream(out.getvalue()).read_ulonglong() == value


@given(st.floats(allow_nan=False, allow_infinity=False))
def test_double_roundtrip_property(value):
    out = CdrOutputStream()
    out.write_double(value)
    assert CdrInputStream(out.getvalue()).read_double() == value


@given(st.text(alphabet=st.characters(blacklist_characters="\x00",
                                      blacklist_categories=("Cs",)),
               max_size=200))
def test_string_roundtrip_property(value):
    out = CdrOutputStream()
    out.write_string(value)
    assert CdrInputStream(out.getvalue()).read_string() == value


@given(st.binary(max_size=200))
def test_octets_roundtrip_property(value):
    out = CdrOutputStream()
    out.write_octets(value)
    assert CdrInputStream(out.getvalue()).read_octets() == value


@settings(max_examples=50)
@given(st.lists(st.tuples(st.sampled_from(["octet", "ulong", "double", "string"]),
                          st.integers(0, 255)), max_size=20),
       st.booleans())
def test_mixed_sequence_roundtrip_property(fields, little_endian):
    """Any interleaving of types round-trips with correct alignment."""
    out = CdrOutputStream(little_endian=little_endian)
    expected = []
    for kind, value in fields:
        if kind == "octet":
            out.write_octet(value)
            expected.append(("read_octet", value))
        elif kind == "ulong":
            out.write_ulong(value * 1000)
            expected.append(("read_ulong", value * 1000))
        elif kind == "double":
            out.write_double(value / 3.0)
            expected.append(("read_double", value / 3.0))
        else:
            out.write_string(f"s{value}")
            expected.append(("read_string", f"s{value}"))
    stream = CdrInputStream(out.getvalue(), little_endian=little_endian)
    for reader, value in expected:
        assert getattr(stream, reader)() == value
