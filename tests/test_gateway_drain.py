"""Tests for graceful gateway shutdown (drain)."""

import pytest

from repro import CommFailure, World

from tests.helpers import external_client, make_counter_group, make_domain


def test_drain_serves_in_flight_requests_before_stopping(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    gateway = domain.gateways[0]
    _, stub, _ = external_client(world, domain, group)
    world.await_promise(stub.call("increment", 1))
    promise = stub.call("increment", 10)
    drained = gateway.drain()
    # The in-flight request completes...
    assert world.await_promise(promise, timeout=600) == 11
    # ...and only then does the gateway stop.
    world.await_promise(drained, timeout=600)
    assert not gateway.alive
    # A drained gateway leaves nothing above its floors behind (its own
    # frozen tables are skipped as inactive; the rest must be clean).
    world.run(until=world.now + 1.0)
    world.audit(strict=True)


def test_drained_gateway_refuses_new_connections(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    gateway = domain.gateways[0]
    world.await_promise(gateway.drain(), timeout=600)
    host = world.add_host("late-client")
    state = {}
    world.tcp.connect(host, (gateway.host.name, gateway.port),
                      lambda ep: state.setdefault("ok", ep),
                      lambda exc: state.setdefault("err", exc))
    world.scheduler.run_until(lambda: state)
    assert isinstance(state["err"], CommFailure)


def test_drain_with_redundant_gateway_is_invisible_to_enhanced_clients(world):
    domain = make_domain(world, gateways=2)
    group = make_counter_group(domain)
    _, stub, layer = external_client(world, domain, group, enhanced=True)
    assert world.await_promise(stub.call("increment", 1)) == 1
    world.await_promise(domain.gateways[0].drain(), timeout=600)
    # The next invocation fails over to the second gateway and succeeds.
    assert world.await_promise(stub.call("increment", 1), timeout=600) == 2
    assert layer.failover_log
    world.run(until=world.now + 1.0)
    world.audit(strict=True)


def test_drain_idle_gateway_stops_immediately(world):
    domain = make_domain(world, gateways=1)
    gateway = domain.gateways[0]
    world.await_promise(gateway.drain(), timeout=60)
    assert not gateway.alive
