"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError`,
so callers can catch library failures with a single ``except`` clause.
The CORBA-flavoured exceptions (:class:`CommFailure`, :class:`ObjectNotExist`,
:class:`TransientError`) mirror the standard CORBA system exceptions that
the paper's unreplicated clients would observe from a real ORB.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was wired together incorrectly (programmer error)."""


class SimulationError(ReproError):
    """The discrete-event simulation was driven into an invalid state."""


class AuditError(ReproError):
    """A resource audit found a stateful collection above its declared
    floor at quiescence — i.e. a leak (see :mod:`repro.obs.audit`)."""


class MarshalError(ReproError):
    """CDR or GIOP encoding/decoding failed (malformed bytes or bad type)."""


class CorbaSystemException(ReproError):
    """Base class for CORBA-style system exceptions surfaced to clients."""

    minor = 0

    def __init__(self, message: str = "", minor: int = 0):
        super().__init__(message or self.__class__.__name__)
        self.minor = minor


class CommFailure(CorbaSystemException):
    """COMM_FAILURE: the transport connection broke mid-request.

    This is what a plain (non-enhanced) unreplicated client observes when
    the single gateway it is connected to crashes (paper section 3.4).
    """


class TransientError(CorbaSystemException):
    """TRANSIENT: the request could not be delivered; retry may succeed."""


class ObjectNotExist(CorbaSystemException):
    """OBJECT_NOT_EXIST: the object key does not name a live object."""


class BadOperation(CorbaSystemException):
    """BAD_OPERATION: the operation name is not part of the interface."""


class NoResponse(CorbaSystemException):
    """NO_RESPONSE: no reply arrived before the caller's deadline."""


class InvocationFailure(ReproError):
    """An application-level (user) exception raised by a servant.

    Carries the repository id and textual detail so the client side can
    re-raise something meaningful after unmarshalling a reply with an
    exception status.
    """

    def __init__(self, repo_id: str, detail: str = ""):
        super().__init__(f"{repo_id}: {detail}" if detail else repo_id)
        self.repo_id = repo_id
        self.detail = detail
