"""Messages multicast within a fault tolerance domain (paper Figure 4).

Every multicast message carries the Eternal/gateway header of Figure 4:
the TCP client identifier, the source group identifier, the target
group identifier, the operation identifier, and the message timestamp
(filled in from the Totem sequence number by the Replication Mechanisms
at the receiving end).  For messages between replicated objects within
the domain the TCP client identifier is the UNUSED sentinel, exactly as
in Figure 4(c).

Beyond the paper's two application kinds (IIOP invocation / IIOP
response), the infrastructure multicasts control messages for group
management, checkpointing, state transfer, gateway request mirroring
(section 3.5), and client-failure cleanup.  All control messages are
*idempotent* at the receiver, which lets replicated managers emit them
redundantly without coordination.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..core.identifiers import ClientId, OperationId, UNUSED_CLIENT_ID


class MsgKind(enum.Enum):
    # Application traffic (Figure 4).
    INVOCATION = "invocation"
    RESPONSE = "response"

    # Group management (idempotent control messages).
    GROUP_ANNOUNCE = "group_announce"      # create/replace a group's registry entry
    GROUP_REMOVE = "group_remove"
    ADD_REPLICA = "add_replica"
    REMOVE_REPLICA = "remove_replica"
    REPLICA_READY = "replica_ready"        # state transfer complete

    # Logging and recovery.
    CHECKPOINT = "checkpoint"              # cold passive periodic checkpoint
    STATE_UPDATE = "state_update"          # warm passive per-operation update
    STATE_TRANSFER = "state_transfer"      # donor -> joining replica

    # Gateway coordination (section 3.5).
    GATEWAY_MIRROR = "gateway_mirror"      # record a client request group-wide
    CLIENT_GONE = "client_gone"            # purge per-client gateway state

    # Leader-follower (semi-active) replication.
    ORDER_RECORD = "order_record"          # leader's nested-call ordering decision
    STYLE_SWITCH = "style_switch"          # runtime replication-style change

    # Membership support.
    REGISTRY_SYNC = "registry_sync"        # directory snapshot for joiners
    REGISTRY_SYNC_REQUEST = "registry_sync_request"


@dataclass
class DomainMessage:
    """One multicast message: Figure 4 header + payload.

    ``timestamp`` is zero in transit and stamped with the Totem sequence
    number by every receiver at delivery, so all receivers agree on it.
    ``iiop`` carries the encapsulated IIOP request or reply bytes for
    application traffic; control messages use ``data`` instead.
    """

    kind: MsgKind
    source_group: int
    target_group: int
    client_id: ClientId = UNUSED_CLIENT_ID
    op_id: Optional[OperationId] = None
    timestamp: int = 0
    iiop: bytes = b""
    data: Dict[str, Any] = field(default_factory=dict)
    _size_hint: Optional[int] = field(default=None, repr=False, compare=False)
    # Causal-trace propagation (repro.obs.tracing): a
    # (trace_id, parent_span_id, hop) tuple, or None when tracing is
    # off or the originator was untraced; ``_trace_order`` carries the
    # open ordering-wait span id on RESPONSE messages.  Out-of-band
    # instrumentation: excluded from equality, from describe(), and —
    # deliberately — from size_hint(), so byte metrics and goldens are
    # identical whether or not tracing is enabled.  (On a real wire
    # this would ride in the GIOP service context, which the header
    # weight already approximates.)
    trace: Optional[tuple] = field(default=None, repr=False, compare=False)
    _trace_order: int = field(default=0, repr=False, compare=False)

    def size_hint(self) -> int:
        """Approximate wire size, for network accounting.

        Counts the IIOP payload exactly and bytes-like values inside
        control data (checkpoints/state transfers carry real state), so
        traffic measurements reflect what a serialised message would
        weigh.  The payload never changes after construction (only
        ``timestamp`` is stamped at delivery, and it does not affect
        the weight), so the walk is done once and cached — messages
        multicast to N members are weighed once, not N times."""
        size = self._size_hint
        if size is None:
            size = 40 + len(self.iiop)
            for value in self.data.values():
                size += _value_weight(value)
            self._size_hint = size
        return size

    def describe(self) -> str:
        return (f"{self.kind.value} {self.source_group}->{self.target_group} "
                f"client={self.client_id!r} op={self.op_id} ts={self.timestamp}")


def _value_weight(value: Any) -> int:
    """Rough serialised weight of one control-data value."""
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return 8 + len(value)
    if isinstance(value, dict):
        return 8 + sum(_value_weight(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return 8 + sum(_value_weight(v) for v in value)
    return 16
