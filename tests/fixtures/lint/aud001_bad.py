# reprolint: module=repro.core.gateway
"""AUD001 bad fixture: a stateful collection never audit-registered
in a class that does register others."""


class Thing:
    def __init__(self, scope):
        self._pending = {}
        self._forgotten = {}
        scope.register("thing.pending", lambda: len(self._pending),
                       floor=0)
