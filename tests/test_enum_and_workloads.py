"""Tests for EnumTC and the benchmark workload generators."""

import sys
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import World
from repro.errors import MarshalError
from repro.iiop import CdrInputStream, CdrOutputStream, EnumTC
from repro.sim.world import Promise

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from workloads import closed_loop, open_loop, percentiles, read_mostly, write_heavy  # noqa: E402


# ----------------------------------------------------------------------
# EnumTC
# ----------------------------------------------------------------------

SIDE = EnumTC("OrderSide", ["BUY", "SELL", "CANCEL"])


def test_enum_roundtrip():
    out = CdrOutputStream()
    SIDE.encode(out, "SELL")
    assert out.getvalue() == b"\x00\x00\x00\x01"
    assert SIDE.decode(CdrInputStream(out.getvalue())) == "SELL"


def test_enum_rejects_unknown_member():
    out = CdrOutputStream()
    with pytest.raises(MarshalError):
        SIDE.encode(out, "HOLD")


def test_enum_rejects_out_of_range_ordinal():
    with pytest.raises(MarshalError):
        SIDE.decode(CdrInputStream(b"\x00\x00\x00\x09"))


def test_enum_construction_validation():
    with pytest.raises(MarshalError):
        EnumTC("Empty", [])
    with pytest.raises(MarshalError):
        EnumTC("Dup", ["A", "A"])


def test_enum_inside_operation(world):
    from repro.iiop import TC_LONG
    from repro.orb import Interface, Operation, Param, Servant
    from tests.helpers import make_domain

    ORDERS = Interface("Orders", [
        Operation("place", [Param("side", SIDE), Param("qty", TC_LONG)],
                  SIDE),
    ])

    class OrdersServant(Servant):
        interface = ORDERS

        def place(self, side, qty):
            return "CANCEL" if qty <= 0 else side

    domain = make_domain(world)
    group = domain.create_group("Orders", ORDERS, OrdersServant)
    assert world.await_promise(group.invoke("place", "BUY", 10)) == "BUY"
    assert world.await_promise(group.invoke("place", "SELL", 0)) == "CANCEL"


@given(st.sampled_from(["BUY", "SELL", "CANCEL"]))
def test_enum_roundtrip_property(member):
    out = CdrOutputStream()
    SIDE.encode(out, member)
    assert SIDE.decode(CdrInputStream(out.getvalue())) == member


# ----------------------------------------------------------------------
# Workload generators (driven against a fake in-sim stub)
# ----------------------------------------------------------------------

class FakeStub:
    """Resolves each call after a fixed simulated service time."""

    def __init__(self, world, service_time=0.01):
        self.world = world
        self.service_time = service_time
        self.calls = []

    def call(self, name, *args):
        self.calls.append((name, args))
        promise = Promise()
        self.world.scheduler.call_after(self.service_time, promise.resolve,
                                        len(self.calls))
        return promise


def test_closed_loop_runs_every_operation():
    world = World(seed=1)
    stub = FakeStub(world)
    latencies = closed_loop(world, [stub], operations=5, mix=write_heavy)
    assert len(latencies) == 5
    assert all(lat == pytest.approx(0.01) for lat in latencies)
    assert all(name == "increment" for name, _ in stub.calls)


def test_closed_loop_with_think_time_spreads_requests():
    world = World(seed=1)
    stub = FakeStub(world)
    closed_loop(world, [stub], operations=3, mix=write_heavy,
                think_time=0.5)
    # 3 ops, 0.01 service + 0.5 think between: > 1.0s simulated.
    assert world.now > 1.0


def test_closed_loop_multiple_stubs_run_concurrently():
    world = World(seed=1)
    stubs = [FakeStub(world), FakeStub(world)]
    closed_loop(world, stubs, operations=4, mix=write_heavy)
    assert all(len(stub.calls) == 4 for stub in stubs)
    # Two sequential chains in parallel: total time ~ one chain.
    assert world.now == pytest.approx(0.04)


def test_open_loop_issues_by_arrival_process():
    world = World(seed=3)
    stub = FakeStub(world)
    latencies = open_loop(world, stub, rate_per_s=100.0, duration_s=1.0,
                          mix=write_heavy, seed=7)
    assert 50 <= len(latencies) <= 200   # ~100 expected
    assert all(lat == pytest.approx(0.01) for lat in latencies)


def test_read_mostly_mix_is_mostly_reads():
    import random
    rng = random.Random(1)
    ops = [read_mostly(rng, i)[0] for i in range(500)]
    reads = ops.count("value")
    assert reads > 400  # ~90%


def test_percentiles_summary():
    samples = [float(i) for i in range(1, 101)]
    stats = percentiles(samples)
    assert stats["count"] == 100
    assert stats["mean"] == pytest.approx(50.5)
    assert stats["p50"] == 50.0
    assert stats["p95"] == 95.0
    assert stats["p99"] == 99.0


def test_percentiles_empty_and_singleton():
    assert percentiles([]) == {}
    stats = percentiles([2.5])
    assert stats["p50"] == 2.5 and stats["p99"] == 2.5
