"""Unit-ish tests for the cross-domain egress component."""

import pytest

from repro import NestedCall, ReplicationStyle, Servant, World
from repro.apps import (
    COUNTER_INTERFACE,
    CounterServant,
    SETTLEMENT_INTERFACE,
    SettlementServant,
)
from repro.errors import ConfigurationError
from repro.iiop import TC_LONG
from repro.orb import Interface, Operation, Param

from tests.helpers import make_domain

CALLER = Interface("Caller", [
    Operation("call_out", [Param("amount", TC_LONG)], TC_LONG),
])


def make_caller_servant(target_ior, interface_name="Settlement"):
    class CallerServant(Servant):
        interface = CALLER

        def call_out(self, amount):
            result = yield NestedCall(target_ior, "settle",
                                      ["egress-test", amount],
                                      interface=interface_name)
            return result

    return CallerServant


def build_remote(world):
    remote = make_domain(world, name="remote", gateways=1)
    settlement = remote.create_group("Settlement", SETTLEMENT_INTERFACE,
                                     SettlementServant)
    remote.await_ready(settlement)
    return remote, settlement, remote.ior_for(settlement).to_string()


def test_egress_uses_deterministic_client_uid(world):
    remote, settlement, ior = build_remote(world)
    local = make_domain(world, name="local")
    local.register_interface(SETTLEMENT_INTERFACE)
    caller = local.create_group("Caller", CALLER, make_caller_servant(ior))
    world.await_promise(caller.invoke("call_out", 5), timeout=600)
    egress = local.egresses[caller.info().placement[0]]
    assert egress._client_uid(caller.group_id) == f"egress/local/g{caller.group_id}"


def test_egress_call_settles_exactly_once(world):
    remote, settlement, ior = build_remote(world)
    local = make_domain(world, name="local")
    local.register_interface(SETTLEMENT_INTERFACE)
    caller = local.create_group("Caller", CALLER, make_caller_servant(ior))
    result = world.await_promise(caller.invoke("call_out", 7), timeout=600)
    assert result == 1  # first settlement
    world.run(until=world.now + 0.5)
    counts = {rm.replicas[settlement.group_id].servant.settled_count()
              for rm in remote.rms.values()
              if settlement.group_id in rm.replicas}
    assert counts == {1}
    # Exactly one egress host transmitted; all recorded; all completed.
    issued = sum(e.stats["issued"] + e.stats["reissued"]
                 for e in local.egresses.values())
    completed = sum(e.stats["completed"] for e in local.egresses.values())
    assert issued == 1
    assert completed == len(caller.info().placement)


def test_egress_missing_interface_name_fails_cleanly(world):
    remote, settlement, ior = build_remote(world)
    local = make_domain(world, name="local")
    local.register_interface(SETTLEMENT_INTERFACE)

    class NoInterfaceServant(Servant):
        interface = CALLER

        def call_out(self, amount):
            result = yield NestedCall(ior, "settle", ["x", amount])  # no interface=
            return result

    caller = local.create_group("Caller", CALLER, NoInterfaceServant)
    with pytest.raises(Exception):
        world.await_promise(caller.invoke("call_out", 1), timeout=600)


def test_egress_unregistered_interface_fails_cleanly(world):
    remote, settlement, ior = build_remote(world)
    local = make_domain(world, name="local")  # Settlement NOT registered
    caller = local.create_group("Caller", CALLER, make_caller_servant(ior))
    with pytest.raises(Exception):
        world.await_promise(caller.invoke("call_out", 1), timeout=600)


def test_egress_outstanding_cleaned_after_completion(world):
    remote, settlement, ior = build_remote(world)
    local = make_domain(world, name="local")
    local.register_interface(SETTLEMENT_INTERFACE)
    caller = local.create_group("Caller", CALLER, make_caller_servant(ior))
    world.await_promise(caller.invoke("call_out", 2), timeout=600)
    world.run(until=world.now + 0.5)
    for egress in local.egresses.values():
        assert not egress.outstanding


def test_egress_retries_next_profile_when_first_gateway_down(world):
    remote = make_domain(world, name="remote", gateways=2)
    settlement = remote.create_group("Settlement", SETTLEMENT_INTERFACE,
                                     SettlementServant)
    remote.await_ready(settlement)
    ior = remote.ior_for(settlement).to_string()
    # First profile's gateway dies before the local domain ever calls.
    world.faults.crash_now(remote.gateways[0].host.name)
    world.run(until=world.now + 0.5)
    local = make_domain(world, name="local")
    local.register_interface(SETTLEMENT_INTERFACE)
    caller = local.create_group("Caller", CALLER, make_caller_servant(ior))
    assert world.await_promise(caller.invoke("call_out", 3), timeout=600) == 1
