"""Robustness against malformed wire input (a gateway is an internet-
facing endpoint; garbage must never take the infrastructure down)."""

import pytest

from repro import World
from repro.iiop import GiopFramer, MsgType, parse_header
from repro.errors import MarshalError

from tests.helpers import external_client, make_counter_group, make_domain


def raw_connect(world, domain):
    host = world.add_host("attacker")
    gateway = domain.gateways[0]
    state = {}
    world.tcp.connect(host, (gateway.host.name, gateway.port),
                      lambda ep: state.setdefault("ep", ep),
                      lambda exc: state.setdefault("err", exc))
    world.scheduler.run_until(lambda: state)
    return state["ep"]


def test_garbage_bytes_close_the_connection_not_the_gateway(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    endpoint = raw_connect(world, domain)
    received = []
    endpoint.on_data = received.append
    endpoint.send(b"this is definitely not GIOP at all.............")
    world.run(until=world.now + 1.0)
    # The gateway answered MessageError and hung up...
    assert received
    assert parse_header(received[0])[0] == MsgType.MESSAGE_ERROR
    assert not endpoint.open
    # ...and keeps serving well-behaved clients.
    _, stub, _ = external_client(world, domain, group)
    assert world.await_promise(stub.call("increment", 1), timeout=600) == 1


def test_truncated_request_is_just_buffered(world):
    """A partial (not yet complete) message is not an error."""
    from repro.iiop import RequestMessage, encode_request
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    endpoint = raw_connect(world, domain)
    message = encode_request(RequestMessage(
        request_id=1, response_expected=True, object_key=b"k",
        operation="x"))
    endpoint.send(message[:10])
    world.run(until=world.now + 0.5)
    assert endpoint.open  # still waiting for the rest


def test_malformed_body_after_valid_header_closes_connection(world):
    """A message claiming type REQUEST whose body is not a valid
    request header must be rejected without crashing the gateway."""
    domain = make_domain(world, gateways=1)
    make_counter_group(domain)
    domain.await_stable()
    endpoint = raw_connect(world, domain)
    bogus_body = b"\xff" * 16
    header = (b"GIOP" + bytes([1, 0, 0, MsgType.REQUEST])
              + len(bogus_body).to_bytes(4, "big"))
    endpoint.send(header + bogus_body)
    world.run(until=world.now + 1.0)
    assert not endpoint.open
    # The gateway host survived.
    assert domain.gateways[0].alive


def test_framer_raises_on_bad_magic():
    framer = GiopFramer()
    with pytest.raises(MarshalError):
        framer.feed(b"HTTP/1.1 200 OK\r\n\r\n")


def test_framer_raises_on_unsupported_version():
    framer = GiopFramer()
    with pytest.raises(MarshalError):
        framer.feed(b"GIOP" + bytes([9, 9, 0, 0]) + bytes(4))


def test_client_connection_survives_garbage_reply(world):
    """A buggy/hostile server sending garbage fails the client's pending
    requests cleanly (COMM_FAILURE), no crash."""
    from repro.errors import CommFailure
    from repro.orb.connection import IiopClientConnection
    server_host = world.add_host("rogue")

    def on_accept(endpoint):
        endpoint.send(b"\x00garbage\x00garbage\x00")

    world.tcp.listen(server_host, 9000, on_accept)
    client_host = world.add_host("client")
    connection = IiopClientConnection(world.tcp, client_host, ("rogue", 9000))
    failures = []
    connection.send_request(b"GIOP" + bytes(8), 1,
                            lambda reply: failures.append("reply"),
                            lambda exc: failures.append(type(exc).__name__))
    world.run(until=world.now + 1.0)
    assert failures == ["CommFailure"]
