# reprolint: module=repro.sim.fixture_entry
"""Deterministic entry points whose helpers stay clean."""

from fixturelib.cleanglue import sanctioned_stamp, seeded_rng, shape


def record_event(log):
    log.append(sanctioned_stamp())


def pick_backoff():
    return 1.0 + seeded_rng(7).random()


def settle(values):
    return shape(values)
