"""Command-line driver shared by ``tools/reprolint.py`` and
``python -m repro --lint``.

Exit status: 0 when clean (no violations, no parse errors, no stale
baseline entries, no unused or unjustified suppressions — the same bar
the pytest gate and the blocking CI job enforce), 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from typing import Optional, Sequence

from ..obs.hostclock import wall_clock
from .callgraph import render_graph_json
from .lint import Baseline, ProjectContext, default_config, lint_paths
from .protocol import render_protocol_json
from .reporters import (regenerate_baseline, render_json_report,
                        render_text_report)

DEFAULT_BASELINE = "tools/reprolint_baseline.json"


def _write_payload(destination: str, payload: str) -> None:
    if destination == "-":
        sys.stdout.write(payload)
    else:
        pathlib.Path(destination).write_text(payload, encoding="utf-8")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="determinism & sim-discipline lint for the "
                    "reproduction (rules: docs/STATIC_ANALYSIS.md)")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="also write the JSON report to FILE "
                             "('-' for stdout)")
    parser.add_argument("--baseline", metavar="FILE",
                        default=None,
                        help=f"baseline file (default: {DEFAULT_BASELINE} "
                             "under the repo root when present)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="accept current violations into the baseline "
                             "and rewrite it")
    parser.add_argument("--root", metavar="DIR", default=None,
                        help="repo root for relative paths and the "
                             "observability catalogue (default: detected)")
    parser.add_argument("--graph-dump", metavar="FILE", default=None,
                        help="write the whole-program call-graph/taint "
                             "JSON to FILE ('-' for stdout)")
    parser.add_argument("--protocol-dump", metavar="FILE", default=None,
                        help="write the extracted protocol-surface JSON "
                             "to FILE ('-' for stdout)")
    parser.add_argument("--budget", metavar="SECONDS", type=float,
                        default=None,
                        help="advisory wall-clock budget; overruns are "
                             "reported (and noted in "
                             "$GITHUB_STEP_SUMMARY) but never fail the "
                             "run")
    parser.add_argument("--verbose", action="store_true",
                        help="list suppressed violations too")
    args = parser.parse_args(argv)

    started = wall_clock()
    root = pathlib.Path(args.root).resolve() if args.root else _detect_root()
    baseline_path = (pathlib.Path(args.baseline) if args.baseline
                     else (root / DEFAULT_BASELINE if root else
                           pathlib.Path(DEFAULT_BASELINE)))
    baseline = Baseline.load(baseline_path)
    config = default_config(root)
    result = lint_paths([pathlib.Path(p) for p in args.paths],
                        config=config, baseline=baseline, root=root)

    if args.write_baseline:
        new_baseline = regenerate_baseline(result)
        baseline_path.write_text(new_baseline.to_json(), encoding="utf-8")
        print(f"reprolint: wrote {len(new_baseline.fingerprints)} "
              f"fingerprint(s) to {baseline_path}")
        return 0

    print(render_text_report(result, verbose=args.verbose))
    if args.json:
        payload = render_json_report(result)
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            pathlib.Path(args.json).write_text(payload, encoding="utf-8")
    if args.graph_dump or args.protocol_dump:
        # Parse-error-only runs have no project; dump an empty one so
        # the artifact is always well-formed JSON.
        project = result.project or ProjectContext([], config)
        if args.graph_dump:
            _write_payload(args.graph_dump, json.dumps(
                render_graph_json(project), indent=2, sort_keys=True) + "\n")
        if args.protocol_dump:
            _write_payload(args.protocol_dump, json.dumps(
                render_protocol_json(project), indent=2,
                sort_keys=True) + "\n")
    if args.budget is not None:
        elapsed = wall_clock() - started
        status = "OVER" if elapsed > args.budget else "within"
        note = (f"reprolint wall clock: {elapsed:.2f}s — {status} the "
                f"advisory budget of {args.budget:.1f}s "
                f"({result.files_scanned} files)")
        print(note)
        summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
        if summary_path:
            with open(summary_path, "a", encoding="utf-8") as handle:
                handle.write(f"- {note}\n")
    clean = (result.ok and not result.stale_baseline
             and not result.unused_suppressions
             and not result.unjustified_suppressions)
    return 0 if clean else 1


def _detect_root() -> Optional[pathlib.Path]:
    here = pathlib.Path.cwd().resolve()
    for candidate in (here, *here.parents):
        if (candidate / "docs" / "OBSERVABILITY.md").is_file():
            return candidate
    package_root = pathlib.Path(__file__).resolve()
    for candidate in package_root.parents:
        if (candidate / "docs" / "OBSERVABILITY.md").is_file():
            return candidate
    return None


if __name__ == "__main__":  # pragma: no cover - exercised via tools/
    raise SystemExit(main())
