# reprolint: module=repro.iiop.giop
"""FLOW003 good: every codec suffix has both directions."""

import struct


def encode_ping(seq):
    return struct.pack(">I", seq)


def decode_ping(data):
    return struct.unpack(">I", data)[0]


def encode_orphan(flag):
    return b"\x01" if flag else b"\x00"


def decode_orphan(data):
    return data == b"\x01"


def roundtrip():
    return decode_ping(encode_ping(7)), decode_orphan(encode_orphan(True))
