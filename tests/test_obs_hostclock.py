"""Tests for ``repro.obs.hostclock`` — the one sanctioned wall-clock
boundary (the file reprolint's DET001 rule carves out).

The injection contract matters for determinism tests everywhere else:
a scoped override must reach registries built *before* it was
installed, and must always unwind, even on error.
"""

from __future__ import annotations

import time

import pytest

from repro.obs.hostclock import (current_wall_clock, override_wall_clock,
                                 reset_wall_clock, set_wall_clock,
                                 wall_clock)
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def _restore_clock():
    yield
    reset_wall_clock()


def test_default_clock_is_monotonic_perf_counter():
    assert current_wall_clock() is time.perf_counter
    first = wall_clock()
    second = wall_clock()
    assert second >= first


def test_set_and_reset_wall_clock():
    fake = lambda: 42.0
    previous = set_wall_clock(fake)
    assert previous is time.perf_counter
    assert wall_clock() == 42.0
    assert current_wall_clock() is fake
    reset_wall_clock()
    assert current_wall_clock() is time.perf_counter


def test_override_is_scoped_and_unwinds_on_error():
    ticks = iter([1.0, 2.5])
    with override_wall_clock(lambda: next(ticks)) as fn:
        assert current_wall_clock() is fn
        assert wall_clock() == 1.0
        assert wall_clock() == 2.5
    assert current_wall_clock() is time.perf_counter

    with pytest.raises(RuntimeError):
        with override_wall_clock(lambda: 0.0):
            raise RuntimeError("boom")
    assert current_wall_clock() is time.perf_counter


def test_overrides_nest():
    with override_wall_clock(lambda: 1.0):
        with override_wall_clock(lambda: 2.0):
            assert wall_clock() == 2.0
        assert wall_clock() == 1.0


def test_registry_default_delegates_through_boundary():
    """A registry built *before* the override still sees it: the default
    wall clock is a live delegate, not a captured function."""
    registry = MetricsRegistry()
    ticks = iter([10.0, 13.5])
    with override_wall_clock(lambda: next(ticks)):
        with registry.timer("bench.step", wall=True):
            pass
    snap = registry.snapshot(include_wall=True)["bench.step"]
    assert snap["sum"] == pytest.approx(3.5)
    assert snap["count"] == 1
    # And wall metrics stay out of the deterministic snapshot:
    assert "bench.step" not in registry.snapshot()


def test_explicit_registry_clock_wins_over_boundary():
    registry = MetricsRegistry(wall_clock=lambda: 5.0)
    with override_wall_clock(lambda: 99.0):
        assert registry.wall_clock() == 5.0
