"""Text and JSON reporters over a :class:`~repro.analysis.lint.LintResult`.

The text form is for humans and CI logs; the JSON form is the machine
contract (schema 1): violation lists, baseline bookkeeping, and —
because the acceptance bar for this repo is "no violations, every
remaining suppression inline and justified" — a full accounting of
suppressions, including unused and unjustified ones.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from .lint import Baseline, LintResult

JSON_SCHEMA = 1


def render_text_report(result: LintResult, verbose: bool = False) -> str:
    lines = []
    for violation in result.violations:
        lines.append(violation.describe())
        if violation.snippet:
            lines.append(f"    {violation.snippet}")
    for path, error in result.parse_errors:
        lines.append(f"{path}:1:1: PARSE {error}")
    if verbose:
        for violation, supp in result.suppressed:
            why = supp.justification or "(no justification)"
            lines.append(f"{violation.describe()} [suppressed: {why}]")
    for supp in result.unused_suppressions:
        lines.append(f"{supp.path}:{supp.line}: UNUSED suppression for "
                     f"{','.join(supp.codes)} matches nothing; remove it")
    for supp in result.unjustified_suppressions:
        lines.append(f"{supp.path}:{supp.line}: UNJUSTIFIED suppression for "
                     f"{','.join(supp.codes)}; add `-- <reason>`")
    for fingerprint in result.stale_baseline:
        lines.append(f"baseline: STALE entry {fingerprint}; regenerate with "
                     "--write-baseline")
    lines.append(
        f"reprolint: {result.files_scanned} files, "
        f"{len(result.violations)} violation(s), "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined, "
        f"{len(result.unused_suppressions)} unused suppression(s), "
        f"{len(result.stale_baseline)} stale baseline entr(ies)")
    return "\n".join(lines)


def json_report(result: LintResult) -> Dict[str, Any]:
    def violation_dict(violation: Any) -> Dict[str, Any]:
        return {"code": violation.code, "path": violation.path,
                "line": violation.line, "col": violation.col,
                "message": violation.message, "snippet": violation.snippet}

    by_code: Dict[str, int] = {}
    for violation in result.violations:
        by_code[violation.code] = by_code.get(violation.code, 0) + 1
    return {
        "schema": JSON_SCHEMA,
        "files_scanned": result.files_scanned,
        "violations": [violation_dict(v) for v in result.violations],
        "violations_by_code": dict(sorted(by_code.items())),
        "suppressions": [
            {"path": s.path, "line": s.line, "codes": list(s.codes),
             "file_level": s.file_level, "justification": s.justification,
             "suppresses": violation_dict(v)}
            for v, s in result.suppressed],
        "unused_suppressions": [
            {"path": s.path, "line": s.line, "codes": list(s.codes)}
            for s in result.unused_suppressions],
        "unjustified_suppressions": [
            {"path": s.path, "line": s.line, "codes": list(s.codes)}
            for s in result.unjustified_suppressions],
        "baselined": [violation_dict(v) for v in result.baselined],
        "stale_baseline": list(result.stale_baseline),
        "parse_errors": [{"path": p, "error": e}
                         for p, e in result.parse_errors],
        "ok": result.ok,
    }


def render_json_report(result: LintResult) -> str:
    return json.dumps(json_report(result), indent=2, sort_keys=True) + "\n"


def regenerate_baseline(result: LintResult) -> Baseline:
    """A baseline accepting exactly the current unsuppressed findings."""
    violations = result.violations + result.baselined
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return Baseline(set(Baseline.fingerprints_for(violations)))
