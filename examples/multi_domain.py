#!/usr/bin/env python
"""Figure 1 of the paper, end to end.

Three parties, wide-area separated:

* a **New York fault tolerance domain** (the trading front office):
  replicated TradingDesk + QuoteService, one gateway;
* a **Los Angeles fault tolerance domain** (the back office):
  replicated Settlement, two redundant gateways;
* a **customer in Santa Barbara** with an unreplicated Web browser.

The customer's order travels: browser --TCP/IIOP--> NY gateway
--total-order multicast--> replicated desk --(nested, egress over
TCP/IIOP)--> LA gateway --multicast--> replicated settlement, and the
replies retrace the path.  Mid-run we crash one LA gateway and the NY
desk's egress host; the order stream continues and settlement still
executes exactly once per order.

Run:  python examples/multi_domain.py
"""

from repro import FaultToleranceDomain, FtClientLayer, Orb, ReplicationStyle, World
from repro.apps import (
    QUOTE_INTERFACE,
    QuoteServant,
    SETTLEMENT_INTERFACE,
    SettlementServant,
    TRADING_INTERFACE,
    TradingDeskServant,
)


def main():
    world = World(seed=2026)

    # --- Los Angeles: back office with two redundant gateways ----------
    la = FaultToleranceDomain(world, "la", num_hosts=3)
    la.add_gateway(port=2809)
    la.add_gateway(port=2809)
    settlement = la.create_group("Settlement", SETTLEMENT_INTERFACE,
                                 SettlementServant,
                                 style=ReplicationStyle.ACTIVE)
    la.await_stable()
    la.await_ready(settlement)
    settlement_ior = la.ior_for(settlement).to_string()
    print("LA domain up; settlement IOR profiles:",
          [p.address for p in la.ior_for(settlement).iiop_profiles()])

    # --- New York: front office; desk settles via LA's gateways --------
    ny = FaultToleranceDomain(world, "ny", num_hosts=3)
    ny.add_gateway(port=2809)
    ny.register_interface(SETTLEMENT_INTERFACE)  # for egress marshalling
    ny.create_group("Quotes", QUOTE_INTERFACE,
                    lambda: QuoteServant({"ACME": 1500}),
                    style=ReplicationStyle.ACTIVE)
    desk = ny.create_group(
        "Desk", TRADING_INTERFACE,
        lambda: TradingDeskServant(quote_group="Quotes",
                                   settlement_target=settlement_ior,
                                   settlement_interface="Settlement"),
        style=ReplicationStyle.ACTIVE)
    ny.await_stable()
    print("NY domain up; desk replicas on", list(desk.info().placement))

    # --- Santa Barbara: the customer's unreplicated browser ------------
    browser = world.add_host("sb-browser")
    orb = Orb(world, browser, request_timeout=None)
    layer = FtClientLayer(orb, client_uid="customer/sb")
    desk_stub = layer.string_to_object(ny.ior_for(desk).to_string(),
                                       TRADING_INTERFACE)

    print("\norder 1: buy 100 ACME")
    print("  position ->", world.await_promise(
        desk_stub.call("buy", "alice", "ACME", 100), timeout=600))

    # --- Fault injection: one LA gateway and the NY egress host die ----
    victim_gw = la.gateways[0].host.name
    egress_host = desk.info().primary(ny.coordinator_rm().live_hosts)
    print(f"\ncrashing LA gateway {victim_gw!r} and NY egress host "
          f"{egress_host!r} ...")
    world.faults.crash_now(victim_gw)
    world.faults.crash_now(egress_host)

    print("order 2: buy 50 ACME (rides out both failures)")
    print("  position ->", world.await_promise(
        desk_stub.call("buy", "alice", "ACME", 50), timeout=600))

    world.run(until=world.now + 1.0)
    counts = set()
    for rm in la.rms.values():
        record = rm.replicas.get(settlement.group_id)
        if record is not None:
            counts.add(record.servant.settled_count())
    print(f"\nLA settlement count at every replica: {sorted(counts)} "
          "(2 orders, 2 settlements — exactly once, despite the crashes)")
    print("customer failovers observed:", layer.failover_log or "none "
          "(the NY gateway stayed up; the failures were behind it)")


if __name__ == "__main__":
    main()
