"""Black-box flight recorder: a bounded ring of high-signal events.

The paper's gateways mask faults so well that a failed run's history is
invisible by the time anyone looks; snapshots and traces only show the
end state.  The :class:`FlightRecorder` keeps the last N *interesting*
moments — fault-injector actions, Totem membership/token transitions,
span closes, audit deltas, metric-delta-over-threshold samples, style
switches — and dumps them as deterministic JSON post-mortem (chaos
sweep failures, the pytest on-failure fixture, ``python -m repro
--flight-dump``).

Recording is purely passive: ``record`` appends to a deque and never
schedules events, touches metrics, or allocates per-call beyond the
event dict, so arming the recorder does not perturb the simulation —
a flight-enabled run is behaviourally identical to a disabled one.
Disabled (the default), hooks pay one attribute load and one boolean
test (the ``CallbackCounter`` laziness convention).

Event kinds are dot-separated names under ``flight.*`` and must appear
in the docs/OBSERVABILITY.md catalogue (enforced by OBS001).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

from .metrics import ClockFn, _validate_name

FLIGHT_SCHEMA_VERSION = 1


class FlightRecorder:
    """Bounded ring of recent high-signal events on the simulated clock."""

    def __init__(self, clock: Optional[ClockFn] = None, enabled: bool = False,
                 capacity: int = 256) -> None:
        self.clock: ClockFn = clock if clock is not None else (lambda: 0.0)
        self.enabled = enabled
        self.capacity = capacity
        self.recorded = 0
        self._events: Deque[Dict[str, Any]] = deque(maxlen=capacity)

    def record(self, kind: str, **detail: Any) -> None:
        """Append one event (no-op while disabled).

        ``detail`` values must be JSON-serialisable scalars; callers
        stringify rich objects so dumps stay canonical.
        """
        if not self.enabled:
            return
        self.recorded += 1
        self._events.append({
            "seq": self.recorded,
            "t": self.clock(),
            "kind": _validate_name(kind),
            "detail": {key: detail[key] for key in sorted(detail)},
        })

    # -- reads ----------------------------------------------------------

    def events(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """Retained events oldest-first, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event["kind"] == kind]

    @property
    def dropped(self) -> int:
        return self.recorded - len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.recorded = 0

    # -- export ---------------------------------------------------------

    def dump(self) -> Dict[str, Any]:
        return {
            "schema": FLIGHT_SCHEMA_VERSION,
            "t": self.clock(),
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "events": list(self._events),
        }

    def dump_json(self) -> str:
        from .export import canonical_json
        return canonical_json(self.dump())
