"""IIOP connections over simulated TCP.

The client connection correlates GIOP Replies to outstanding Requests
by request id and surfaces connection loss to every pending caller —
the plain-ORB behaviour the paper's section 3.4 analyses: when the
remote endpoint (in our case, a gateway) dies, the client's outstanding
invocations fail with COMM_FAILURE and their fate is unknown.

The server connection frames incoming bytes into complete GIOP messages
and hands them to a handler; it is used both by plain CORBA servers and
by the gateway's client-facing side.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..errors import CommFailure, MarshalError
from ..iiop.giop import (
    GiopFramer,
    MsgType,
    ReplyMessage,
    decode_locate_reply,
    decode_reply,
    encode_message_error,
    parse_header,
)
from ..sim.host import Host
from ..sim.tcp import TcpEndpoint, TcpStack

ReplyHandler = Callable[[ReplyMessage], None]
FailureHandler = Callable[[Exception], None]
# LocateReply handler: receives the raw GIOP message so callers can
# decode the optional OBJECT_FORWARD body themselves.
LocateHandler = Callable[[bytes], None]

# Metric-name suffixes for giop.msg.<type> counters.
_MSG_TYPE_NAMES = {
    MsgType.REQUEST: "request",
    MsgType.REPLY: "reply",
    MsgType.CANCEL_REQUEST: "cancel_request",
    MsgType.LOCATE_REQUEST: "locate_request",
    MsgType.LOCATE_REPLY: "locate_reply",
    MsgType.CLOSE_CONNECTION: "close_connection",
    MsgType.MESSAGE_ERROR: "message_error",
}


def _count_message_type(metrics, message_type: int) -> None:
    name = _MSG_TYPE_NAMES.get(message_type)
    if name is not None:
        metrics.counter(f"giop.msg.{name}").inc()


class IiopClientConnection:
    """Client side of one IIOP connection (lazy connect, reply routing)."""

    CONNECTING = "connecting"
    OPEN = "open"
    CLOSED = "closed"

    def __init__(self, tcp: TcpStack, host: Host, address: Tuple[str, int]) -> None:
        self.tcp = tcp
        self.host = host
        self.address = address
        self.state = IiopClientConnection.CONNECTING
        self.endpoint: Optional[TcpEndpoint] = None
        self._framer = GiopFramer()
        self._send_queue: List[bytes] = []
        self._pending: Dict[int, Tuple[ReplyHandler, FailureHandler]] = {}
        self._pending_locates: Dict[int, Tuple[LocateHandler, FailureHandler]] = {}
        self._closed_listeners: List[Callable[[], None]] = []
        self._metrics = tcp.network.metrics
        self._m_bytes_out = self._metrics.counter("giop.bytes.out", unit="B")
        self._m_bytes_in = self._metrics.counter("giop.bytes.in", unit="B")
        self._framer.counter = self._metrics.counter("giop.bytes.zero_copy",
                                                     unit="B")
        tcp.connect(host, address, self._on_connected, self._on_connect_error)

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------

    def _on_connected(self, endpoint: TcpEndpoint) -> None:
        if self.state == IiopClientConnection.CLOSED:
            endpoint.close()
            return
        self.endpoint = endpoint
        endpoint.on_data = self._on_data
        endpoint.on_close = self._on_peer_close
        self.state = IiopClientConnection.OPEN
        for data in self._send_queue:
            endpoint.send(data)
        self._send_queue.clear()

    def _on_connect_error(self, exc: Exception) -> None:
        self._fail_all(exc)

    def _on_peer_close(self) -> None:
        self._fail_all(CommFailure(f"connection to {self.address} lost"))

    def close(self) -> None:
        if self.state == IiopClientConnection.CLOSED:
            return
        self.state = IiopClientConnection.CLOSED
        if self.endpoint is not None and self.endpoint.open:
            self.endpoint.close()
        self._fail_all(CommFailure("connection closed locally"))

    def on_closed(self, fn: Callable[[], None]) -> None:
        self._closed_listeners.append(fn)

    def _fail_all(self, exc: Exception) -> None:
        self.state = IiopClientConnection.CLOSED
        pending = list(self._pending.values())
        self._pending.clear()
        locates = list(self._pending_locates.values())
        self._pending_locates.clear()
        for _, on_failure in pending:
            on_failure(exc)
        for _, on_failure in locates:
            on_failure(exc)
        for fn in self._closed_listeners:
            fn()
        self._closed_listeners.clear()

    # ------------------------------------------------------------------
    # Request/reply traffic
    # ------------------------------------------------------------------

    @property
    def usable(self) -> bool:
        return self.state in (IiopClientConnection.CONNECTING,
                              IiopClientConnection.OPEN)

    def send_request(self, encoded: bytes, request_id: int,
                     on_reply: ReplyHandler, on_failure: FailureHandler) -> None:
        if not self.usable:
            on_failure(CommFailure(f"connection to {self.address} is closed"))
            return
        self._pending[request_id] = (on_reply, on_failure)
        self._transmit(encoded)

    def send_locate(self, encoded: bytes, request_id: int,
                    on_reply: LocateHandler,
                    on_failure: FailureHandler) -> None:
        """Send a LocateRequest and route its LocateReply (raw bytes) to
        ``on_reply``; connection loss routes to ``on_failure``."""
        if not self.usable:
            on_failure(CommFailure(f"connection to {self.address} is closed"))
            return
        self._pending_locates[request_id] = (on_reply, on_failure)
        self._transmit(encoded)

    def send_oneway(self, encoded: bytes) -> None:
        if not self.usable:
            raise CommFailure(f"connection to {self.address} is closed")
        self._transmit(encoded)

    def pending_request_ids(self) -> List[int]:
        return list(self._pending)

    def _transmit(self, data: bytes) -> None:
        # Queued bytes count too: they are committed to the wire once
        # the connect completes (or the whole connection fails).
        self._m_bytes_out.inc(len(data))
        if self.state == IiopClientConnection.OPEN:
            assert self.endpoint is not None
            self.endpoint.send(data)
        else:
            self._send_queue.append(data)

    def _on_data(self, data: bytes) -> None:
        self._m_bytes_in.inc(len(data))
        try:
            messages = self._framer.feed(data)
        except MarshalError:
            # Garbage on the wire: a real ORB sends MessageError and
            # drops the connection; pending requests fail.
            self.close()
            return
        for message in messages:
            message_type, _, _ = parse_header(message)
            _count_message_type(self._metrics, message_type)
            if message_type == MsgType.REPLY:
                try:
                    reply = decode_reply(message)
                except MarshalError:
                    self.close()
                    return
                handlers = self._pending.pop(reply.request_id, None)
                if handlers is not None:
                    handlers[0](reply)
            elif message_type == MsgType.LOCATE_REPLY:
                try:
                    locate_id, _ = decode_locate_reply(message)
                except MarshalError:
                    self.close()
                    return
                locate_handlers = self._pending_locates.pop(locate_id, None)
                if locate_handlers is not None:
                    locate_handlers[0](message)
            elif message_type == MsgType.CLOSE_CONNECTION:
                self._on_peer_close()
            elif message_type == MsgType.MESSAGE_ERROR:
                # The peer could not parse something we sent: nothing
                # in flight can be trusted any more, so fail pending
                # requests and drop the connection (GIOP 1.0 §15.4.8).
                self.close()
                return


class IiopServerConnection:
    """Server side of one IIOP connection (framing + raw-message handler).

    ``handler(message_bytes, connection)`` receives each complete GIOP
    message.  The gateway uses this class directly because it needs the
    raw bytes for encapsulation into multicast messages (section 3.2).
    """

    def __init__(self, endpoint: TcpEndpoint,
                 handler: Callable[[bytes, "IiopServerConnection"], None],
                 on_close: Optional[Callable[["IiopServerConnection"], None]] = None,
                 ) -> None:
        self.endpoint = endpoint
        self.handler = handler
        self._framer = GiopFramer()
        self._close_cb = on_close
        self._metrics = endpoint.stack.network.metrics
        self._m_bytes_out = self._metrics.counter("giop.bytes.out", unit="B")
        self._m_bytes_in = self._metrics.counter("giop.bytes.in", unit="B")
        self._framer.counter = self._metrics.counter("giop.bytes.zero_copy",
                                                     unit="B")
        endpoint.on_data = self._on_data
        endpoint.on_close = self._on_close

    @property
    def open(self) -> bool:
        return self.endpoint.open

    def send(self, data: bytes) -> None:
        if self.endpoint.open:
            self._m_bytes_out.inc(len(data))
            self.endpoint.send(data)

    def close(self) -> None:
        if self.endpoint.open:
            self.endpoint.close()

    def _on_data(self, data: bytes) -> None:
        self._m_bytes_in.inc(len(data))
        try:
            messages = self._framer.feed(data)
        except MarshalError:
            # Not GIOP: answer with MessageError and hang up, as the
            # CORBA spec prescribes for unintelligible input.
            self.send(encode_message_error())
            self.close()
            return
        for message in messages:
            message_type, _, _ = parse_header(message)
            _count_message_type(self._metrics, message_type)
            try:
                self.handler(message, self)
            except MarshalError:
                self.send(encode_message_error())
                self.close()
                return

    def _on_close(self) -> None:
        if self._close_cb is not None:
            self._close_cb(self)
