"""Tests for object-key naming within fault tolerance domains."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MarshalError
from repro.eternal import make_object_key, parse_object_key
from repro.eternal.naming import (
    EXTERNAL_GROUP,
    FIRST_APPLICATION_GROUP,
    GATEWAY_GROUP,
    REPLICATION_MANAGER_GROUP,
)


def test_roundtrip():
    key = make_object_key("trading", 42)
    assert parse_object_key(key) == ("trading", 42)


def test_key_is_readable_ascii():
    assert make_object_key("ny", 10) == b"ftdomain/ny/10"


def test_domain_with_slash_rejected():
    with pytest.raises(MarshalError):
        make_object_key("a/b", 1)


def test_foreign_key_returns_none():
    assert parse_object_key(b"some-orb-specific-key") is None
    assert parse_object_key(b"obj/Counter/1") is None


def test_malformed_keys_return_none():
    assert parse_object_key(b"ftdomain/only-two") is None
    assert parse_object_key(b"ftdomain/d/not-a-number") is None
    assert parse_object_key(b"ftdomain/d/1/extra") is None
    assert parse_object_key(b"\xff\xfe") is None


def test_reserved_group_ids_are_distinct_and_below_application_range():
    reserved = {EXTERNAL_GROUP, GATEWAY_GROUP, REPLICATION_MANAGER_GROUP}
    assert len(reserved) == 3
    assert all(g < FIRST_APPLICATION_GROUP for g in reserved)


@given(st.from_regex(r"[a-z][a-z0-9\-]{0,30}", fullmatch=True),
       st.integers(min_value=0, max_value=2**31 - 1))
def test_roundtrip_property(domain, group_id):
    assert parse_object_key(make_object_key(domain, group_id)) == (domain, group_id)
