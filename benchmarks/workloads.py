"""Workload generators for the benchmark harness.

Two classic load models over any stub-like object:

* :func:`closed_loop` — a fixed population of clients, each issuing the
  next request when the previous reply arrives (optionally after think
  time).  Models the paper's interactive browser users.
* :func:`open_loop` — requests arrive by a seeded exponential process
  regardless of completions.  Models aggregate internet traffic hitting
  a gateway.

Both record per-request simulated latencies; :func:`percentiles`
summarises them.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.sim.world import Promise, World

Op = Tuple[str, tuple]  # (operation name, args)


def closed_loop(
    world: World,
    stubs: Sequence[Any],
    operations: int,
    mix: Callable[[random.Random, int], Op],
    think_time: float = 0.0,
    seed: int = 0,
    timeout: float = 600.0,
) -> List[float]:
    """Run ``operations`` requests per stub, each stub sequentially.

    Returns the list of per-request simulated latencies.
    """
    rng = random.Random(seed)
    latencies: List[float] = []
    done_flags = {"remaining": len(stubs) * operations}

    def issue(stub, remaining: int) -> None:
        if remaining == 0:
            return
        name, args = mix(rng, remaining)
        started = world.now
        promise = stub.call(name, *args)

        def on_done(p: Promise) -> None:
            latencies.append(world.now - started)
            done_flags["remaining"] -= 1
            if remaining > 1:
                if think_time > 0:
                    world.scheduler.call_after(
                        think_time, issue, stub, remaining - 1)
                else:
                    issue(stub, remaining - 1)

        promise.on_done(on_done)

    for stub in stubs:
        issue(stub, operations)
    world.scheduler.run_until(lambda: done_flags["remaining"] == 0,
                              timeout=timeout)
    return latencies


def open_loop(
    world: World,
    stub: Any,
    rate_per_s: float,
    duration_s: float,
    mix: Callable[[random.Random, int], Op],
    seed: int = 0,
    timeout: float = 600.0,
) -> List[float]:
    """Issue requests with exponential inter-arrival times for
    ``duration_s`` of simulated time; wait for all completions."""
    rng = random.Random(seed)
    latencies: List[float] = []
    state = {"issued": 0, "completed": 0, "closed": False}
    deadline = world.now + duration_s

    def arrive() -> None:
        if world.now >= deadline:
            state["closed"] = True
            return
        name, args = mix(rng, state["issued"])
        state["issued"] += 1
        started = world.now
        promise = stub.call(name, *args)

        def on_done(p: Promise) -> None:
            latencies.append(world.now - started)
            state["completed"] += 1

        promise.on_done(on_done)
        world.scheduler.call_after(rng.expovariate(rate_per_s), arrive)

    arrive()
    world.scheduler.run_until(
        lambda: state["closed"] and state["completed"] == state["issued"],
        timeout=timeout)
    return latencies


def percentiles(samples: Sequence[float],
                points: Sequence[float] = (50, 95, 99)) -> Dict[str, float]:
    """Nearest-rank percentiles plus mean, rounded for reporting."""
    if not samples:
        return {}
    ordered = sorted(samples)
    result = {"mean": round(sum(ordered) / len(ordered), 5),
              "count": len(ordered)}
    for point in points:
        index = min(len(ordered) - 1,
                    max(0, int(round(point / 100.0 * len(ordered))) - 1))
        result[f"p{int(point)}"] = round(ordered[index], 5)
    return result


def write_heavy(rng: random.Random, _i: int) -> Op:
    return ("increment", (1,))


def read_mostly(rng: random.Random, _i: int) -> Op:
    return ("value", ()) if rng.random() < 0.9 else ("increment", (1,))
