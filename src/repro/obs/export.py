"""Metric snapshot exporters: canonical JSON and a human-readable table.

The JSON form is the determinism contract: ``to_json`` serialises a
registry's simulated-time snapshot with sorted keys and no incidental
whitespace, so two runs of the same seeded scenario produce
*byte-identical* strings.  ``parse_json`` inverts it exactly
(``parse_json(to_json(r)) == r.snapshot()``), which is what lets tests
diff whole scenario runs instead of cherry-picked counters.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from .metrics import Histogram, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .series import SeriesRegistry

SCHEMA_VERSION = 1


def canonical_json(document: Any) -> str:
    """The determinism contract for any exported document: sorted keys,
    no incidental whitespace, NaN rejected.  Seeded reruns of the same
    scenario serialise byte-identically."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def to_json(registry: MetricsRegistry, include_wall: bool = False) -> str:
    """Canonical JSON rendering of the registry snapshot."""
    return canonical_json({
        "schema": SCHEMA_VERSION,
        "metrics": registry.snapshot(include_wall=include_wall),
    })


def parse_json(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse ``to_json`` output back to the snapshot dict it came from."""
    document = json.loads(text)
    if document.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"unsupported metrics schema: {document.get('schema')!r}")
    return document["metrics"]


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _prom_name(name: str) -> str:
    """Dotted series name -> Prometheus metric name (dots to underscores)."""
    return name.replace(".", "_").replace("-", "_")


def _prom_value(value: Any) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _merge_labels(existing: str, extra: str) -> str:
    """Merge an existing ``{a="b"}`` label block with one extra pair."""
    if not existing:
        return "{" + extra + "}"
    return existing[:-1] + "," + extra + "}"


def render_prometheus(registry: MetricsRegistry,
                      include_wall: bool = False,
                      series: Optional["SeriesRegistry"] = None) -> str:
    """Prometheus text-exposition rendering of the registry snapshot.

    Counters and gauges map directly.  Histograms expose their streaming
    exponential buckets as cumulative ``_bucket{le=...}`` counters (with
    the ``+Inf`` terminator), summary-style ``{quantile=...}`` gauges,
    and the flattened ``_count``/``_sum``/``_min``/``_max`` plus
    ``_p50``/``_p95``/``_p99`` scalars older dashboards already scrape.
    Passing a :class:`~repro.obs.series.SeriesRegistry` appends each
    labeled series' last value as a gauge.  Names are the dotted names
    with dots replaced by underscores; output is sorted by name, so it
    is byte-stable for seeded runs like the JSON form.
    """
    snapshot = registry.snapshot(include_wall=include_wall)
    lines = []
    for name, data in snapshot.items():
        base, brace, label_part = name.partition("{")
        labels = (brace + label_part) if brace else ""
        metric = _prom_name(base)
        if data["type"] == "histogram":
            lines.append(f"# TYPE {metric}_count counter")
            lines.append(f"{metric}_count{labels} {_prom_value(data['count'])}")
            lines.append(f"# TYPE {metric}_sum counter")
            lines.append(f"{metric}_sum{labels} {_prom_value(data['sum'])}")
            histogram = registry.get(base)
            if isinstance(histogram, Histogram):
                lines.append(f"# TYPE {metric}_bucket counter")
                for bound, cumulative in histogram.cumulative_buckets():
                    le = "+Inf" if bound is None else _prom_value(bound)
                    bucket_labels = _merge_labels(labels, f'le="{le}"')
                    lines.append(f"{metric}_bucket{bucket_labels} {cumulative}")
            for q, stat in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
                q_labels = _merge_labels(labels, f'quantile="{q}"')
                lines.append(f"{metric}{q_labels} {_prom_value(data[stat])}")
            for stat in ("min", "max", "p50", "p95", "p99"):
                lines.append(f"# TYPE {metric}_{stat} gauge")
                lines.append(
                    f"{metric}_{stat}{labels} {_prom_value(data[stat])}")
        else:
            kind = "counter" if data["type"] == "counter" else "gauge"
            lines.append(f"# TYPE {metric} {kind}")
            lines.append(f"{metric}{labels} {_prom_value(data['value'])}")
    if series is not None:
        typed = set()
        for sname, slabels, value in series.last_values():
            metric = _prom_name(sname)
            if metric not in typed:
                typed.add(metric)
                lines.append(f"# TYPE {metric} gauge")
            rendered = ",".join(f'{k}="{v}"' for k, v in slabels)
            block = "{" + rendered + "}" if rendered else ""
            lines.append(f"{metric}{block} {_prom_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_text(registry: MetricsRegistry, include_wall: bool = False) -> str:
    """Aligned plain-text report, one metric per line, sorted by name."""
    snapshot = registry.snapshot(include_wall=include_wall)
    if not snapshot:
        return "(no metrics recorded)"
    width = max(len(name) for name in snapshot)
    lines = []
    for name, data in snapshot.items():
        unit = f" {data['unit']}" if data.get("unit") else ""
        if data["type"] == "histogram":
            body = (f"count={data['count']} sum={_fmt(data['sum'])}"
                    f" min={_fmt(data['min'])} p50={_fmt(data['p50'])}"
                    f" p95={_fmt(data['p95'])} p99={_fmt(data['p99'])}"
                    f" max={_fmt(data['max'])}")
        else:
            body = f"{_fmt(data['value'])}{unit}"
        lines.append(f"{name:<{width}}  {data['type']:<9} {body}")
    return "\n".join(lines)
