"""Assorted robustness tests across layers."""

import pytest

from repro import FtClientLayer, Orb, ReplicationStyle, Servant, World
from repro.apps import COUNTER_INTERFACE, CounterServant
from repro.errors import MarshalError
from repro.iiop import TC_LONG
from repro.orb import Interface, Operation, Param

from tests.helpers import external_client, make_counter_group, make_domain


def test_stub_rejects_wrong_argument_count(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    _, stub, _ = external_client(world, domain, group)
    with pytest.raises(MarshalError):
        stub.call("increment")          # missing argument
    with pytest.raises(MarshalError):
        stub.call("increment", 1, 2)    # extra argument


def test_stub_rejects_wrong_argument_type(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    _, stub, _ = external_client(world, domain, group)
    with pytest.raises(MarshalError):
        stub.call("increment", "not-a-number")


def test_custom_state_protocol_is_used_by_state_transfer(world):
    """Servants may override get_state/set_state; the infrastructure
    must honour the override during replacement-replica transfer."""
    TALLY = Interface("Tally", [
        Operation("add", [Param("n", TC_LONG)], TC_LONG),
    ])

    class TallyServant(Servant):
        interface = TALLY

        def __init__(self):
            self._entries = []          # private: default would skip it

        def add(self, n):
            self._entries.append(n)
            return sum(self._entries)

        def get_state(self):
            return {"entries": list(self._entries)}

        def set_state(self, state):
            self._entries = list(state["entries"])

    domain = make_domain(world, num_hosts=4)
    group = domain.create_group("Tally", TALLY, TallyServant,
                                num_replicas=3, min_replicas=3)
    assert world.await_promise(group.invoke("add", 5)) == 5
    assert world.await_promise(group.invoke("add", 7)) == 12
    victim = group.info().placement[0]
    world.faults.crash_now(victim)
    world.run(until=world.now + 2.0)
    replacement = [h for h in group.info().placement
                   if h not in (victim,)][-1]
    record = domain.rms[replacement].replicas[group.group_id]
    assert record.servant.get_state() == {"entries": [5, 7]}
    assert world.await_promise(group.invoke("add", 1)) == 13


def test_two_enhanced_clients_fail_over_simultaneously(world):
    domain = make_domain(world, gateways=2)
    group = make_counter_group(domain)
    _, stub_a, layer_a = external_client(world, domain, group,
                                         host_name="alice")
    _, stub_b, layer_b = external_client(world, domain, group,
                                         host_name="bob")
    world.run_until_done([stub_a.call("increment", 1),
                          stub_b.call("increment", 1)], timeout=600)
    world.faults.crash_now(domain.gateways[0].host.name)
    promises = [stub_a.call("increment", 1), stub_b.call("increment", 1)]
    world.run_until_done(promises, timeout=600)
    assert sorted(p.result() for p in promises) == [3, 4]
    assert layer_a.failover_log and layer_b.failover_log


def test_gateway_response_cache_is_bounded(world):
    domain = make_domain(world, gateways=1)
    group = make_counter_group(domain)
    gateway = domain.gateways[0]
    gateway.response_cache_limit = 5
    _, stub, _ = external_client(world, domain, group)
    for _ in range(12):
        world.await_promise(stub.call("increment", 1), timeout=600)
    world.run(until=world.now + 0.5)
    assert len(gateway._cache) <= 5


def test_nested_encapsulation_roundtrip():
    from repro.iiop import CdrInputStream, CdrOutputStream
    out = CdrOutputStream()

    def inner_inner(stream):
        stream.write_string("deep")

    def inner(stream):
        stream.write_ulong(1)
        stream.write_encapsulation(inner_inner)

    out.write_encapsulation(inner)
    stream = CdrInputStream(out.getvalue())
    level1 = stream.read_encapsulation()
    assert level1.read_ulong() == 1
    level2 = level1.read_encapsulation()
    assert level2.read_string() == "deep"


def test_mixed_style_nested_chain(world):
    """An active group calling a warm-passive group calling back into
    an active ledger: styles compose through nesting."""
    from repro import NestedCall
    from repro.apps import LEDGER_INTERFACE, LedgerServant

    MIDDLE = Interface("Middle", [
        Operation("note", [Param("n", TC_LONG)], TC_LONG),
    ])

    class MiddleServant(Servant):
        interface = MIDDLE

        def note(self, n):
            entry_count = yield NestedCall("Ledger", "record", [f"n={n}"])
            return entry_count

    FRONT = Interface("Front", [
        Operation("go", [Param("n", TC_LONG)], TC_LONG),
    ])

    class FrontServant(Servant):
        interface = FRONT

        def go(self, n):
            result = yield NestedCall("Middle", "note", [n])
            return result

    domain = make_domain(world, num_hosts=4)
    domain.create_group("Ledger", LEDGER_INTERFACE, LedgerServant,
                        style=ReplicationStyle.ACTIVE)
    domain.create_group("Middle", MIDDLE, MiddleServant,
                        style=ReplicationStyle.WARM_PASSIVE)
    front = domain.create_group("Front", FRONT, FrontServant,
                                style=ReplicationStyle.ACTIVE)
    assert world.await_promise(front.invoke("go", 1), timeout=600) == 1
    assert world.await_promise(front.invoke("go", 2), timeout=600) == 2
