"""The Totem single-ring protocol state machine.

Each processor in a fault tolerance domain runs one
:class:`TotemMember`.  The protocol provides what Eternal consumes
(paper section 2): reliable delivery, a single total order across the
domain with system-wide unique, monotonically increasing sequence
numbers (used as identifier timestamps), stability (aru) for log
truncation, and membership change notifications on processor failure,
recovery, and join.

Protocol sketch (a faithful simplification of Totem's single-ring
ordering and membership protocols):

* OPERATIONAL — a token rotates around the ring in member-name order.
  The token holder assigns sequence numbers to its queued payloads and
  broadcasts them, serves retransmission requests carried on the token,
  folds its received-up-to into the token's aru computation, and
  forwards the token.  Token receipt re-arms a loss timer.
* GATHER — entered on token loss, on hearing a foreign Join, or at
  start-up.  Members broadcast Join messages naming the candidates they
  have heard from; after the gather window the lowest-named candidate
  acts as leader, broadcasts a Commit carrying the new ring identity,
  sorted membership and a starting sequence number (the maximum any
  member has seen, so sequence numbers never regress), and regenerates
  the token.

Delivery is *agreed*: a member delivers messages in sequence order with
no gaps.  Gaps are repaired via token retransmission requests; a gap
whose message no longer exists anywhere (its sender crashed before the
broadcast reached any survivor) is skipped after a bounded number of
token rotations and traced as ``totem.gap_skipped`` — the membership
change is the consistency cut, as in virtually synchronous systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..sim.host import Host, Process
from ..sim.scheduler import Timer
from ..sim.trace import Tracer
from .messages import (
    CommitMessage,
    INITIAL_RING,
    JoinMessage,
    RegularMessage,
    RingId,
    Token,
)
from .transport import TotemTransport

DeliverFn = Callable[[int, str, Any], None]
MembershipFn = Callable[[Tuple[str, ...], RingId], None]


@dataclass
class TotemConfig:
    """Protocol timing and flow-control knobs (simulated seconds)."""

    token_hold: float = 0.0002          # processing delay before forwarding
    token_loss_timeout: float = 0.025   # silence before declaring token lost
    gather_timeout: float = 0.010       # join-collection window
    rejoin_backoff: float = 0.005       # wait before re-gathering when excluded
    max_messages_per_token: int = 16    # flow control: sends per token visit
    gap_give_up_rotations: int = 8      # rotations before skipping a dead gap


class TotemMember(Process):
    """One ring member; see module docstring for the protocol."""

    OPERATIONAL = "operational"
    GATHER = "gather"

    def __init__(
        self,
        host: Host,
        name: str,
        transport: TotemTransport,
        config: Optional[TotemConfig] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        super().__init__(host, name)
        self.transport = transport
        self.config = config or TotemConfig()
        self.tracer = tracer or Tracer(enabled=False)

        self.state = TotemMember.GATHER
        self.ring_id: RingId = INITIAL_RING
        self.members: Tuple[str, ...] = ()
        self._succ: Optional[str] = None   # ring successor, fixed per ring
        self._gc_floor = 0                 # _store GC'd up to this seq

        # Ordering state.
        self.delivered_up_to = 0           # highest contiguously delivered seq
        self.my_aru = 0                    # == delivered_up_to (agreed delivery)
        self.stable_up_to = 0              # highest seq known stable (aru)
        # reprolint: disable=AUD001 -- listener list, fixed at wiring time
        self._safe_listeners: List[DeliverFn] = []
        self._safe_buffer: Dict[int, RegularMessage] = {}
        self._safe_delivered_up_to = 0
        self._buffer: Dict[int, RegularMessage] = {}   # undelivered, seq > aru
        self._store: Dict[int, RegularMessage] = {}    # for retransmission, GC'd at aru
        self._gap_age: Dict[int, int] = {}             # seq -> rotations waited
        self._pending: List[Tuple[Any, int]] = []      # (payload, size) to send

        # Gather state.
        self._candidates: Set[str] = set()
        self._gather_max_seq = 0
        self._max_ring_gen = 0
        self._gather_timer: Optional[Timer] = None
        self._loss_timer: Optional[Timer] = None
        self._fwd_timer: Optional[Timer] = None   # reused token-hold timer

        # Listener callbacks (upper layer: Eternal Replication Mechanisms).
        # reprolint: disable=AUD001 -- listener list, fixed at wiring time
        self._deliver_listeners: List[DeliverFn] = []
        # reprolint: disable=AUD001 -- listener list, fixed at wiring time
        self._membership_listeners: List[MembershipFn] = []

        # Exact-type dispatch table for :meth:`receive` (hot path).
        # reprolint: disable=AUD001 -- fixed message-type table, never grows
        self._dispatch = {
            RegularMessage: self._on_regular,
            Token: self._on_token,
            JoinMessage: self._on_join,
            CommitMessage: self._on_commit,
        }

        # Statistics.
        # reprolint: disable=AUD001 -- fixed key set, bounded by construction
        self.stats = {
            "delivered": 0, "sent": 0, "token_passes": 0,
            "reformations": 0, "retransmits": 0, "gaps_skipped": 0,
        }

        # World-shared metrics, aggregated across all ring members.
        m = self.metrics
        self._m_delivered = m.counter("totem.msg.delivered")
        self._m_sent = m.counter("totem.msg.sent")
        self._m_token_passes = m.counter("totem.token.passes")
        self._m_rotations = m.counter("totem.token.rotation")
        self._m_retransmits = m.counter("totem.retransmit.count")
        self._m_gaps = m.counter("totem.gap.skipped")
        self._m_reformations = m.counter("totem.ring.reformations")
        self._m_token_loss = m.counter("totem.token.loss")
        self._m_detect_latency = m.histogram("fault.detection.latency", unit="s")

        self._register_audit()

    def _register_audit(self) -> None:
        """Declare the ordering-state collections to the world audit
        scope (see :mod:`repro.obs.audit`).  A quiescent operational
        ring keeps rotating the token, so every buffer drains: regular
        messages deliver (``_buffer``), stabilise and safe-deliver
        (``_safe_buffer``), get GC'd from the retransmission store at
        aru (``_store``), and gaps resolve or are skipped
        (``_gap_age``); anything left at quiescence is a leak."""
        scope, owner = self.audit, self.name

        def alive() -> bool:
            return self.alive

        scope.register("totem.buffer", lambda: len(self._buffer),
                       floor=0, owner=owner, active=alive,
                       gauge="totem.state.buffer")
        scope.register("totem.safe_buffer", lambda: len(self._safe_buffer),
                       floor=0, owner=owner, active=alive)
        scope.register("totem.store", lambda: len(self._store),
                       floor=0, owner=owner, active=alive,
                       gauge="totem.state.store")
        scope.register("totem.gap_age", lambda: len(self._gap_age),
                       floor=0, owner=owner, active=alive)
        scope.register("totem.pending", lambda: len(self._pending),
                       floor=0, owner=owner, active=alive,
                       gauge="totem.state.pending")
        # Gather scratch: holds the last gather's candidate set while
        # operational (it is overwritten, not cleared), so it is
        # snapshot-only — bounded by domain size, never a leak signal.
        scope.register("totem.candidates", lambda: len(self._candidates),
                       floor=None, owner=owner, active=alive)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def on_deliver(self, fn: DeliverFn) -> None:
        """Register ``fn(seq, sender_name, payload)`` called in total order."""
        self._deliver_listeners.append(fn)

    def on_membership(self, fn: MembershipFn) -> None:
        """Register ``fn(members, ring_id)`` called at each installation."""
        self._membership_listeners.append(fn)

    def on_deliver_safe(self, fn: DeliverFn) -> None:
        """Register ``fn(seq, sender, payload)`` with Totem *safe*
        delivery: called only once the message is known stable, i.e.
        received by every current ring member (seq <= aru).  Safe
        delivery lags agreed delivery by roughly one token rotation."""
        self._safe_listeners.append(fn)

    def multicast(self, payload: Any, size: int = 64) -> None:
        """Queue ``payload`` for totally-ordered broadcast to the ring."""
        self._pending.append((payload, size))

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def handle_start(self) -> None:
        self.transport.register(self)
        self._enter_gather("start")

    def handle_stop(self) -> None:
        self.transport.deregister(self.name)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    def receive(self, message: Any) -> None:
        if not (self.running and self.host.alive):
            return
        # The four message classes are final, so exact-type dispatch is
        # equivalent to the isinstance chain and constant-time.
        handler = self._dispatch.get(type(message))
        if handler is not None:
            handler(message)

    # ------------------------------------------------------------------
    # Operational: regular messages
    # ------------------------------------------------------------------

    def _on_regular(self, msg: RegularMessage) -> None:
        if msg.ring_id != self.ring_id:
            return
        if msg.seq <= self.delivered_up_to or msg.seq in self._buffer:
            return  # duplicate (retransmission already received)
        self._buffer[msg.seq] = msg
        self._store[msg.seq] = msg
        self._try_deliver()

    def _try_deliver(self) -> None:
        while self.delivered_up_to + 1 in self._buffer:
            seq = self.delivered_up_to + 1
            msg = self._buffer.pop(seq)
            self.delivered_up_to = seq
            self.my_aru = seq
            self._gap_age.pop(seq, None)
            self.stats["delivered"] += 1
            self._m_delivered.inc()
            for fn in list(self._deliver_listeners):
                fn(msg.seq, msg.sender, msg.payload)
            if self._safe_listeners:
                self._safe_buffer[msg.seq] = msg
            if not self.alive:
                return  # a listener crashed this host

    # ------------------------------------------------------------------
    # Operational: token handling
    # ------------------------------------------------------------------

    def _on_token(self, token: Token) -> None:
        if self.state != TotemMember.OPERATIONAL or token.ring_id != self.ring_id:
            return
        self.stats["token_passes"] += 1
        self._m_token_passes.inc()
        self._reset_loss_timer()

        # 1. Serve retransmission requests we can satisfy.
        if token.rtr:
            for seq in sorted(token.rtr):
                stored = self._store.get(seq)
                if stored is not None:
                    token.rtr.discard(seq)
                    self.stats["retransmits"] += 1
                    self._m_retransmits.inc()
                    self.tracer.emit(self.scheduler.now, "totem.retransmit",
                                     self.name, f"retransmitting seq {seq}")
                    self.transport.broadcast(self, stored, size=stored.size_hint)

        # 2. Request retransmission of our own gaps; age them out when
        #    nobody can serve them (sender crashed pre-broadcast).  The
        #    guard mirrors _current_gaps' empty case so the idle
        #    rotation does not pay for the call.
        if self._buffer or token.seq > self.delivered_up_to:
            for seq in self._current_gaps(token.seq):
                age = self._gap_age.get(seq, 0) + 1
                self._gap_age[seq] = age
                if age > self.config.gap_give_up_rotations:
                    self._skip_gap(seq)
                else:
                    token.rtr.add(seq)

        # 3. Broadcast queued payloads under flow control.
        if self._pending:
            quota = self.config.max_messages_per_token
            while self._pending and quota > 0:
                payload, size = self._pending.pop(0)
                token.seq += 1
                msg = RegularMessage(self.ring_id, token.seq, self.name,
                                     payload, size)
                self.stats["sent"] += 1
                self._m_sent.inc()
                self.transport.broadcast(self, msg, size=size)
                quota -= 1

        # 4. Stability: aru is the minimum received-up-to over the
        #    previous full rotation, folded at the ring leader.
        my_aru = self.my_aru
        if my_aru < token.aru_candidate:
            token.aru_candidate = my_aru
        if self.members and self.name == self.members[0]:
            token.rotation += 1
            self._m_rotations.inc()
            if token.aru_candidate > token.aru:
                token.aru = token.aru_candidate
            token.aru_candidate = my_aru
        # Every member truncates its retransmission store at stability:
        # messages at or below aru have been received everywhere.
        aru = token.aru
        if aru > self._gc_floor:
            self._gc_store(aru)
        if aru > self.stable_up_to:
            self.stable_up_to = aru
        if self._safe_buffer:
            self._flush_safe(self.stable_up_to)

        # 5. Forward to the ring successor after the hold time.  The
        #    same token object circulates for the life of the ring, so
        #    the hold timer is rearmed in place (fresh tie-break drawn
        #    now, same as scheduling anew) instead of allocated per pass.
        fwd = self._fwd_timer
        if fwd is not None and fwd.fired and not fwd.cancelled \
                and fwd.args[0] is token:
            self.scheduler.rearm_after(fwd, self.config.token_hold)
        else:
            self._fwd_timer = self.scheduler.call_after(
                self.config.token_hold, self._forward_guarded, token)

    def _forward_guarded(self, token: Token) -> None:
        # Liveness guard equivalent to Process.after's trampoline: the
        # reused timer is not tracked in self._timers, so a stopped or
        # crashed member suppresses the forward here instead.
        if self.running and self.host.alive:
            self._forward_token(token)

    def _forward_token(self, token: Token) -> None:
        if self.state != TotemMember.OPERATIONAL or token.ring_id != self.ring_id:
            return
        successor = self._successor()
        if successor == self.name:
            # Singleton ring: re-process our own token after a beat.
            self.after(self.config.token_hold, self._on_token, token)
        else:
            self.transport.unicast(self, successor, token, size=32)

    def _successor(self) -> str:
        # The ring is fixed between reformations, so the successor is
        # computed once at install time instead of an index scan per hop.
        succ = self._succ
        if succ is None:
            index = self.members.index(self.name)
            succ = self.members[(index + 1) % len(self.members)]
            self._succ = succ
        return succ

    def _current_gaps(self, highest: int) -> List[int]:
        if not self._buffer and highest <= self.delivered_up_to:
            return []
        upper = max([highest] + list(self._buffer))
        return [s for s in range(self.delivered_up_to + 1, upper + 1)
                if s not in self._buffer]

    def _skip_gap(self, seq: int) -> None:
        """Abandon an unrecoverable gap (consistency cut at failure)."""
        if seq != self.delivered_up_to + 1:
            return  # only skip at the delivery frontier
        self.stats["gaps_skipped"] += 1
        self._m_gaps.inc()
        self._gap_age.pop(seq, None)
        self.tracer.emit(self.scheduler.now, "totem.gap_skipped", self.name,
                         f"skipping unrecoverable seq {seq}")
        self.delivered_up_to = seq
        self.my_aru = seq
        self._try_deliver()

    def _gc_store(self, aru: int) -> None:
        # Everything at or below the floor was already collected, and
        # within a ring no message at seq <= a past aru can re-enter the
        # store (``_on_regular`` rejects seq <= delivered_up_to >= aru),
        # so an unchanged aru means there is nothing to scan for.
        if aru <= self._gc_floor:
            return
        for seq in [s for s in self._store if s <= aru]:
            del self._store[seq]
        self._gc_floor = aru

    def _flush_safe(self, stable_up_to: int) -> None:
        """Safe-deliver buffered messages that became stable, in order."""
        if not self._safe_listeners:
            return
        for seq in sorted(self._safe_buffer):
            if seq > stable_up_to:
                break
            msg = self._safe_buffer.pop(seq)
            self._safe_delivered_up_to = seq
            for fn in list(self._safe_listeners):
                fn(msg.seq, msg.sender, msg.payload)

    def _reset_loss_timer(self) -> None:
        # Fires on every token receipt: reuse the pending timer in
        # place instead of piling a cancelled entry onto the heap.
        self._loss_timer = self.reschedule_after(
            self._loss_timer, self.config.token_loss_timeout,
            self._on_token_loss)

    def _on_token_loss(self) -> None:
        if self.state != TotemMember.OPERATIONAL:
            return
        self._m_token_loss.inc()
        self.tracer.emit(self.scheduler.now, "totem.token_loss", self.name,
                         "token loss timeout")
        fl = self.flight
        if fl.enabled:
            fl.record("flight.token_loss", member=self.name,
                      ring=str(self.ring_id))
        self._observe_detection_latency()
        self._enter_gather("token loss")

    def _observe_detection_latency(self) -> None:
        """Measure crash-to-detection time at the token-loss timeout.

        Token loss is Totem's failure detector: the elapsed time since
        the most recent crash among current ring members is the latency
        with which this member detected that crash."""
        hosts = self.host.network.hosts
        crash_times = [
            hosts[name].last_crash_at
            for name in self.members
            if name in hosts and not hosts[name].alive
            and hosts[name].last_crash_at is not None
        ]
        if crash_times:
            self._m_detect_latency.observe(self.scheduler.now - max(crash_times))

    # ------------------------------------------------------------------
    # Membership: gather and commit
    # ------------------------------------------------------------------

    def _enter_gather(self, reason: str) -> None:
        self.state = TotemMember.GATHER
        if self._loss_timer is not None:
            self._loss_timer.cancel()
            self._loss_timer = None
        self._candidates = {self.name}
        self._gather_max_seq = self._highest_seen()
        self._max_ring_gen = max(self._max_ring_gen, self.ring_id[0])
        self.tracer.emit(self.scheduler.now, "totem.gather", self.name,
                         f"entering gather ({reason})")
        self._broadcast_join()
        self._restart_gather_timer()

    def _broadcast_join(self) -> None:
        join = JoinMessage(
            sender=self.name,
            ring_id=self.ring_id,
            candidates=frozenset(self._candidates),
            max_seq=self._highest_seen(),
        )
        self.transport.broadcast(self, join, size=48)

    def _restart_gather_timer(self) -> None:
        # Restarted on every join received while gathering: same
        # in-place fast path as the token loss timer.
        self._gather_timer = self.reschedule_after(
            self._gather_timer, self.config.gather_timeout,
            self._on_gather_complete)

    def _highest_seen(self) -> int:
        if self._buffer:
            return max(self.delivered_up_to, max(self._buffer))
        return self.delivered_up_to

    def _on_join(self, join: JoinMessage) -> None:
        if self.state == TotemMember.OPERATIONAL:
            if join.sender in self.members and join.ring_id == self.ring_id:
                # A current member lost the token: reform.
                self._enter_gather(f"join from member {join.sender}")
            elif join.sender not in self.members:
                # A new or recovered processor wants in: reform.
                self._enter_gather(f"join from newcomer {join.sender}")
            else:
                return
        # GATHER state: merge candidate knowledge.
        before = set(self._candidates)
        self._candidates.add(join.sender)
        self._candidates.update(join.candidates)
        self._gather_max_seq = max(self._gather_max_seq, join.max_seq)
        self._max_ring_gen = max(self._max_ring_gen, join.ring_id[0])
        if self._candidates != before:
            # New information: re-announce and extend the window so that
            # everyone converges on the same candidate set.
            self._broadcast_join()
            self._restart_gather_timer()

    def _on_gather_complete(self) -> None:
        if self.state != TotemMember.GATHER:
            return
        members = tuple(sorted(self._candidates))
        leader = members[0]
        if leader != self.name:
            # Wait for the leader's commit; if it never comes (leader
            # died during gather), the retry timer re-enters gather.
            self._gather_timer = self.after(
                self.config.gather_timeout + self.config.rejoin_backoff,
                self._commit_wait_expired)
            return
        ring_id: RingId = (self._max_ring_gen + 1, leader)
        commit = CommitMessage(
            ring_id=ring_id,
            members=members,
            start_seq=self._gather_max_seq,
            leader=leader,
        )
        self.transport.broadcast(self, commit, size=64)

    def _commit_wait_expired(self) -> None:
        if self.state == TotemMember.GATHER:
            self._enter_gather("commit wait expired")

    def _on_commit(self, commit: CommitMessage) -> None:
        if commit.ring_id[0] <= self.ring_id[0] and self.ring_id != INITIAL_RING:
            return  # stale commit
        if self.name not in commit.members:
            # Excluded (our join raced the gather): try again shortly.
            if self.state == TotemMember.GATHER:
                self.after(self.config.rejoin_backoff, self._rejoin)
            return
        if commit.start_seq < self._highest_seen():
            # The leader never saw our join information; installing would
            # recycle sequence numbers we already hold.  Force a new round.
            self._enter_gather("commit below local horizon")
            return
        self._install(commit)

    def _rejoin(self) -> None:
        if self.state == TotemMember.GATHER:
            self._enter_gather("rejoin after exclusion")

    def _install(self, commit: CommitMessage) -> None:
        if self._gather_timer is not None:
            self._gather_timer.cancel()
            self._gather_timer = None
        # Deliver whatever we still hold from the old ring, in order,
        # then cut at the membership change.
        self._flush_old_ring(commit.start_seq)
        self.state = TotemMember.OPERATIONAL
        self.ring_id = commit.ring_id
        self.members = commit.members
        self._succ = None       # recomputed lazily for the new ring
        self._gc_floor = 0      # new ring: GC floor restarts with the token aru
        self._fwd_timer = None  # new ring, new token object
        self._max_ring_gen = commit.ring_id[0]
        self._gap_age.clear()
        self.stats["reformations"] += 1
        self._m_reformations.inc()
        self.tracer.emit(self.scheduler.now, "totem.install", self.name,
                         f"ring {commit.ring_id} installed",
                         members=list(commit.members),
                         start_seq=commit.start_seq)
        fl = self.flight
        if fl.enabled:
            fl.record("flight.membership", member=self.name,
                      ring=str(commit.ring_id),
                      members=",".join(commit.members),
                      start_seq=commit.start_seq)
        for fn in list(self._membership_listeners):
            fn(self.members, self.ring_id)
        self._reset_loss_timer()
        if commit.leader == self.name:
            token = Token(
                ring_id=commit.ring_id,
                seq=commit.start_seq,
                aru=commit.start_seq,
                aru_candidate=commit.start_seq,
            )
            self.soon(self._on_token, token)

    def _flush_old_ring(self, start_seq: int) -> None:
        """Deliver buffered old-ring messages up to the cut, then reset."""
        for seq in sorted(self._buffer):
            if seq > start_seq:
                break
            if seq == self.delivered_up_to + 1:
                self._try_deliver()
        if self._buffer:
            # Anything still buffered is either below the cut with an
            # unrepairable gap in front of it (lost with its crashed
            # sender, consistently across survivors thanks to atomic
            # broadcasts) or stale old-ring traffic; both are dropped.
            self.tracer.emit(self.scheduler.now, "totem.flush_dropped",
                             self.name,
                             f"dropping {len(self._buffer)} undeliverable messages at cut")
            self._buffer.clear()
        if self.delivered_up_to < start_seq:
            self.delivered_up_to = start_seq
            self.my_aru = start_seq
        self._store.clear()
        # The membership change is a stability cut: everything the
        # survivors delivered from the old ring is final now.
        self.stable_up_to = max(self.stable_up_to, self.delivered_up_to)
        self._flush_safe(self.stable_up_to)
