"""Tests for Totem's retransmission and gap-repair machinery.

The simulated network is reliable between live, unpartitioned hosts, so
gaps only arise through partitions — which is exactly how these tests
provoke them: a broadcast sent while a pair of hosts cannot talk leaves
one member with a hole that the token's retransmission-request (rtr)
mechanism must repair after the partition heals.
"""

import pytest

from repro.sim import World
from repro.totem import TotemConfig, TotemMember, TotemTransport
from repro.totem.messages import RegularMessage, Token


def build(world, count, config=None):
    transport = TotemTransport(world.network, "d")
    members, delivered = [], {}
    for i in range(count):
        host = world.add_host(f"t{i}", site="lan")
        member = TotemMember(host, f"t{i}", transport, config=config,
                             tracer=world.tracer)
        delivered[member.name] = []
        member.on_deliver(lambda seq, snd, p, n=member.name:
                          delivered[n].append(p))
        members.append(member)
    for member in members:
        member.start()
    world.scheduler.run_until(
        lambda: all(m.state == TotemMember.OPERATIONAL and
                    len(m.members) == count for m in members), timeout=30.0)
    return transport, members, delivered


def test_lossy_broadcast_gap_repaired_by_retransmission(world):
    """One broadcast drops its copy to t2 (the lossy-LAN case Totem is
    designed for); t2 detects the gap via the token and the message is
    retransmitted by a member that holds it."""
    transport, members, delivered = build(world, 3)
    original_broadcast = transport.broadcast
    dropped = {"done": False}

    def lossy_broadcast(sender, message, size=64):
        if (isinstance(message, RegularMessage)
                and message.payload == "lost-for-t2"
                and not dropped["done"]):
            dropped["done"] = True  # only the original copy is lost
            for name in list(transport._members):
                if name != "t2":
                    transport.unicast(sender, name, message, size=size)
            return
        original_broadcast(sender, message, size=size)

    transport.broadcast = lossy_broadcast
    members[0].multicast("lost-for-t2")
    members[1].multicast("follow-up")  # traffic behind the gap
    world.scheduler.run_until(
        lambda: "lost-for-t2" in delivered["t2"] and
        "follow-up" in delivered["t2"], timeout=60.0)
    # All members end with identical sequences, repaired via rtr.
    assert delivered["t0"] == delivered["t1"] == delivered["t2"]
    retransmits = sum(m.stats["retransmits"] for m in members)
    assert retransmits >= 1
    # The world registry, the tracer category, and the per-member stats
    # all count the same retransmission events.
    assert world.metrics.value("totem.retransmit.count") == retransmits
    assert world.tracer.count("totem.retransmit") == retransmits


def test_unrecoverable_gap_is_skipped_after_bounded_rotations(world):
    """White-box: a gap nobody can serve is abandoned after the
    configured number of token rotations (the consistency cut)."""
    config = TotemConfig(gap_give_up_rotations=2)
    transport, members, delivered = build(world, 2, config=config)
    member = members[0]
    # Fabricate a hole: a message two ahead arrived, seq+1 never will.
    ghost_seq = member.delivered_up_to + 2
    member._buffer[ghost_seq] = RegularMessage(
        ring_id=member.ring_id, seq=ghost_seq, sender="ghost",
        payload="after-the-gap")
    world.scheduler.run_until(
        lambda: "after-the-gap" in delivered["t0"], timeout=60.0)
    assert member.stats["gaps_skipped"] == 1
    assert world.metrics.value("totem.gap.skipped") == 1
    assert world.metrics.value("totem.gap.skipped") == \
        world.tracer.count("totem.gap_skipped")


def test_retransmitted_duplicates_are_ignored(world):
    """If a retransmission arrives for a message already delivered, it
    is dropped (not re-delivered)."""
    transport, members, delivered = build(world, 2)
    members[0].multicast("once")
    world.scheduler.run_until(lambda: "once" in delivered["t1"],
                              timeout=30.0)
    target = members[1]
    seq = target.delivered_up_to
    target.receive(RegularMessage(ring_id=target.ring_id, seq=seq,
                                  sender="t0", payload="once"))
    world.run(until=world.now + 0.2)
    assert delivered["t1"].count("once") == 1
