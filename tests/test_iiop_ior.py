"""Tests for IORs: profiles, stringification, gateway address rewriting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MarshalError
from repro.iiop import (
    IiopProfile,
    Ior,
    TAG_INTERNET_IOP,
    replace_addresses,
    stitch_profiles,
)

host_names = st.from_regex(r"[a-z][a-z0-9\-]{0,20}", fullmatch=True)
ports = st.integers(min_value=1, max_value=65535)


def test_profile_roundtrip():
    profile = IiopProfile("gw.example.com", 2809, b"ftdomain/ny/10")
    decoded = IiopProfile.decode(profile.encode())
    assert decoded == profile


def test_ior_roundtrip_via_string():
    ior = Ior.for_endpoints("IDL:repro/Trader:1.0",
                            [("gw0", 2809), ("gw1", 2810)], b"key")
    text = ior.to_string()
    assert text.startswith("IOR:")
    decoded = Ior.from_string(text)
    assert decoded.type_id == "IDL:repro/Trader:1.0"
    assert [p.address for p in decoded.iiop_profiles()] == [
        ("gw0", 2809), ("gw1", 2810)]
    assert decoded.primary_profile().object_key == b"key"


def test_ior_string_is_hex():
    ior = Ior.for_endpoints("IDL:x:1.0", [("h", 1)], b"k")
    body = ior.to_string()[4:]
    assert all(c in "0123456789abcdef" for c in body)


def test_from_string_rejects_bad_prefix():
    with pytest.raises(MarshalError):
        Ior.from_string("ior:deadbeef")


def test_from_string_rejects_bad_hex():
    with pytest.raises(MarshalError):
        Ior.from_string("IOR:zzzz")


def test_primary_profile_requires_iiop_profile():
    ior = Ior(type_id="IDL:x:1.0", profiles=[])
    with pytest.raises(MarshalError):
        ior.primary_profile()


def test_replace_addresses_rewrites_every_profile():
    """Section 3.1: the published IOR carries the gateway address but the
    original object key, so the gateway can identify the target."""
    ior = Ior.for_endpoints("IDL:repro/Trader:1.0",
                            [("srv0", 9000), ("srv1", 9001)], b"group:12")
    rewritten = replace_addresses(ior, ("gateway", 2809))
    addresses = [p.address for p in rewritten.iiop_profiles()]
    assert addresses == [("gateway", 2809), ("gateway", 2809)]
    for profile in rewritten.iiop_profiles():
        assert profile.object_key == b"group:12"
    # The original IOR is untouched.
    assert ior.primary_profile().address == ("srv0", 9000)


def test_stitch_profiles_builds_multi_profile_ior():
    """Section 3.5: one profile per redundant gateway."""
    ior = stitch_profiles("IDL:repro/Trader:1.0",
                          [("gw0", 2809), ("gw1", 2809), ("gw2", 2809)],
                          b"group:7")
    profiles = ior.iiop_profiles()
    assert len(profiles) == 3
    assert {p.host for p in profiles} == {"gw0", "gw1", "gw2"}
    assert all(p.object_key == b"group:7" for p in profiles)


def test_stitch_requires_at_least_one_gateway():
    with pytest.raises(MarshalError):
        stitch_profiles("IDL:x:1.0", [], b"k")


def test_non_iiop_profiles_are_preserved_by_replace():
    from repro.iiop.ior import TaggedProfile
    ior = Ior.for_endpoints("IDL:x:1.0", [("h", 1)], b"k")
    ior.profiles.append(TaggedProfile(99, b"opaque"))
    rewritten = replace_addresses(ior, ("gw", 2))
    assert rewritten.profiles[-1].tag == 99
    assert rewritten.profiles[-1].data == b"opaque"


@given(st.lists(st.tuples(host_names, ports), min_size=1, max_size=8),
       st.binary(min_size=1, max_size=64))
def test_ior_string_roundtrip_property(endpoints, object_key):
    ior = Ior.for_endpoints("IDL:repro/T:1.0", endpoints, object_key)
    decoded = Ior.from_string(ior.to_string())
    assert [p.address for p in decoded.iiop_profiles()] == endpoints
    assert all(p.object_key == object_key for p in decoded.iiop_profiles())


@given(st.lists(st.tuples(host_names, ports), min_size=1, max_size=5),
       host_names, ports)
def test_replace_addresses_property(endpoints, new_host, new_port):
    ior = Ior.for_endpoints("IDL:x:1.0", endpoints, b"key")
    rewritten = replace_addresses(ior, (new_host, new_port))
    assert all(p.address == (new_host, new_port)
               for p in rewritten.iiop_profiles())
    assert len(rewritten.profiles) == len(ior.profiles)
