"""Duplicate detection and suppression of responses (paper section 3.3).

With active replication, *every* replica of the server returns a
response; the receiver — a gateway, or the Replication Mechanisms of an
invoking group — must deliver exactly one copy and discard the rest,
comparing response identifiers.  With active-with-voting replication,
the receiver instead delivers the first response value returned by a
majority of replicas, masking value faults of a minority.

:class:`DuplicateSuppressor` implements both receiver policies keyed by
the (source group, client id, operation id) deduplication key, and
remembers recently delivered operations so that late duplicates — even
ones arriving after delivery — are still recognised and counted.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Set, Tuple


@dataclass
class _Pending:
    votes_needed: int
    counts: Dict[bytes, int] = field(default_factory=dict)
    responders: Set[Hashable] = field(default_factory=set)


class DuplicateSuppressor:
    """First-wins or majority-vote response delivery with dedup."""

    # offer() verdicts
    DELIVER = "deliver"        # deliver this payload now (exactly once)
    DUPLICATE = "duplicate"    # already delivered: suppress
    PENDING = "pending"        # voting: not enough agreeing votes yet
    UNEXPECTED = "unexpected"  # no expectation registered for this key

    def __init__(self, remember_delivered: int = 100_000) -> None:
        self._pending: Dict[Hashable, _Pending] = {}
        self._delivered: "OrderedDict[Hashable, bool]" = OrderedDict()
        self._remember = remember_delivered
        # reprolint: disable=AUD001 -- fixed key set, bounded by construction
        self.stats = {
            "delivered": 0,
            "duplicates_suppressed": 0,
            "votes_counted": 0,
            "unexpected": 0,
        }

    # ------------------------------------------------------------------

    def expect(self, key: Hashable, votes_needed: int = 1) -> None:
        """Announce interest in responses for ``key``.

        ``votes_needed`` is 1 for plain active/passive replication and
        the majority size for active-with-voting.
        """
        if key in self._delivered or key in self._pending:
            return
        self._pending[key] = _Pending(votes_needed=max(1, votes_needed))

    def cancel(self, key: Hashable) -> None:
        self._pending.pop(key, None)

    def is_expected(self, key: Hashable) -> bool:
        return key in self._pending

    def was_delivered(self, key: Hashable) -> bool:
        return key in self._delivered

    def offer(self, key: Hashable, payload: bytes,
              responder: Optional[Hashable] = None) -> Tuple[str, Optional[bytes]]:
        """Offer one response copy; returns (verdict, payload-to-deliver)."""
        if key in self._delivered:
            self.stats["duplicates_suppressed"] += 1
            return (DuplicateSuppressor.DUPLICATE, None)
        pending = self._pending.get(key)
        if pending is None:
            self.stats["unexpected"] += 1
            return (DuplicateSuppressor.UNEXPECTED, None)
        if responder is not None:
            if responder in pending.responders:
                # The same replica re-sent its response (e.g. recovery
                # replay): not a fresh vote.
                self.stats["duplicates_suppressed"] += 1
                return (DuplicateSuppressor.DUPLICATE, None)
            pending.responders.add(responder)
        pending.counts[payload] = pending.counts.get(payload, 0) + 1
        self.stats["votes_counted"] += 1
        if pending.counts[payload] >= pending.votes_needed:
            self._mark_delivered(key)
            self.stats["delivered"] += 1
            return (DuplicateSuppressor.DELIVER, payload)
        return (DuplicateSuppressor.PENDING, None)

    @property
    def pending_count(self) -> int:
        """Expectations still awaiting delivery (0 at quiescence)."""
        return len(self._pending)

    @property
    def delivered_count(self) -> int:
        """Delivered-memory entries (bounded by the remember window)."""
        return len(self._delivered)

    @property
    def remember_limit(self) -> int:
        return self._remember

    def register_audit(self, scope, owner: str = "", active=None,
                       prefix: str = "filter",
                       gauge_prefix: Optional[str] = None) -> None:
        """Declare this suppressor's two maps to a resource-audit scope.

        Every expectation must eventually resolve (response delivered,
        cancelled, or purged with its client), so ``_pending`` floors at
        zero; the delivered-memory is legitimately full up to its
        remember window."""
        gp = gauge_prefix
        scope.register(f"{prefix}.pending", lambda: len(self._pending),
                       floor=0, owner=owner, active=active,
                       gauge=None if gp is None else f"{gp}.pending")
        scope.register(f"{prefix}.delivered", lambda: len(self._delivered),
                       floor=lambda: self._remember, owner=owner,
                       active=active,
                       gauge=None if gp is None else f"{gp}.delivered")

    def reduce_votes(self, predicate, votes_needed: int = 1):
        """Lower the vote requirement of matching pending expectations.

        A live VOTING→non-voting style switch strands in-flight
        expectations that were registered with a majority requirement:
        after the switch only one responder will ever speak, so the
        quorum can never form.  Receivers relax those expectations to
        ``votes_needed`` at the switch point (a total-order event, hence
        consistent everywhere).  Any payload that already satisfies the
        relaxed requirement is delivered immediately; the newly-ready
        ``(key, payload)`` pairs are returned (in pending-map insertion
        order) for the caller to route.
        """
        target = max(1, votes_needed)
        ready = []
        for key in [k for k in self._pending if predicate(k)]:
            pending = self._pending[key]
            if pending.votes_needed <= target:
                continue
            pending.votes_needed = target
            for payload, count in pending.counts.items():
                if count >= target:
                    self._mark_delivered(key)
                    self.stats["delivered"] += 1
                    ready.append((key, payload))
                    break
        return ready

    def forget_where(self, predicate) -> int:
        """Drop pending expectations and delivered-memory whose key
        matches ``predicate``; returns how many entries were removed.

        Used when all state for a client is purged (CLIENT_GONE): a
        later reincarnation of the same identifiers must be re-servable,
        not silently suppressed.
        """
        removed = 0
        for key in [k for k in self._pending if predicate(k)]:
            del self._pending[key]
            removed += 1
        for key in [k for k in self._delivered if predicate(k)]:
            del self._delivered[key]
            removed += 1
        return removed

    # ------------------------------------------------------------------

    def _mark_delivered(self, key: Hashable) -> None:
        self._pending.pop(key, None)
        self._delivered[key] = True
        while len(self._delivered) > self._remember:
            self._delivered.popitem(last=False)
