"""Flight-recorder tests: ring semantics, hook coverage, determinism.

The black box must be (a) purely passive — arming it, and arming the
event-driven series registry, never changes the simulated schedule —
and (b) deterministic: the same seeded scenario dumps byte-identical
series and flight JSON across reruns *and* across the twin scheduler
kernels (calendar queue vs reference heap).
"""

from __future__ import annotations

import pytest

from repro import FtClientLayer, Orb, World
from repro.apps import COUNTER_INTERFACE
from repro.errors import ConfigurationError
from repro.obs import FlightRecorder
from repro.sim.reference_scheduler import ReferenceScheduler
from repro.sim.scheduler import Scheduler

from tests.helpers import make_counter_group, make_domain

KERNELS = (Scheduler, ReferenceScheduler)


# ----------------------------------------------------------------------
# Ring semantics
# ----------------------------------------------------------------------

def test_disabled_recorder_is_inert():
    recorder = FlightRecorder(enabled=False)
    recorder.record("flight.fault", action="crash")
    assert recorder.recorded == 0
    assert recorder.events() == []


def test_record_orders_and_validates():
    clock = [0.0]
    recorder = FlightRecorder(clock=lambda: clock[0], enabled=True)
    recorder.record("flight.fault", action="crash", target="h0")
    clock[0] = 1.5
    recorder.record("flight.membership", member="h1")
    events = recorder.events()
    assert [e["seq"] for e in events] == [1, 2]
    assert events[0]["t"] == 0.0 and events[1]["t"] == 1.5
    assert events[0]["detail"] == {"action": "crash", "target": "h0"}
    assert recorder.events("flight.membership") == [events[1]]
    with pytest.raises(ConfigurationError):
        recorder.record("Not A Valid Kind")


def test_ring_bounds_and_dump():
    recorder = FlightRecorder(enabled=True, capacity=3)
    for i in range(5):
        recorder.record("flight.fault", action=str(i))
    assert recorder.recorded == 5
    assert recorder.dropped == 2
    # The ring keeps the *last* capacity events, oldest first.
    assert [e["detail"]["action"] for e in recorder.events()] == \
        ["2", "3", "4"]
    dump = recorder.dump()
    assert dump["schema"] == 1
    assert dump["capacity"] == 3
    assert dump["recorded"] == 5 and dump["dropped"] == 2
    assert len(dump["events"]) == 3
    assert '"schema":1' in recorder.dump_json()
    recorder.clear()
    assert recorder.recorded == 0 and recorder.events() == []


# ----------------------------------------------------------------------
# Hook coverage and determinism on a failover scenario
# ----------------------------------------------------------------------

def run_failover(scheduler_cls=Scheduler, seed=91, armed=True, spans=True):
    """Gateway failover with the black box (and series) armed.

    ``spans`` is separate from ``armed`` because the causal tracer
    records its own metrics when enabled — the perturbation test below
    must hold tracing constant while toggling series + flight.
    """
    world = World(seed=seed, trace=False, trace_spans=spans,
                  series=armed, flight=armed,
                  scheduler=scheduler_cls())
    domain = make_domain(world, num_hosts=4, gateways=2)
    group = make_counter_group(domain, replicas=3, min_replicas=2)
    host = world.add_host("browser")
    orb = Orb(world, host, request_timeout=None)
    layer = FtClientLayer(orb, client_uid="flight")
    stub = layer.string_to_object(domain.ior_for(group).to_string(),
                                  COUNTER_INTERFACE)
    results = []
    for i in range(4):
        if i == 2:
            world.faults.crash_now(domain.gateways[0].host.name)
        results.append(world.await_promise(stub.call("increment", 1),
                                           timeout=600))
    world.run(until=world.now + 2.0)
    assert results == [1, 2, 3, 4]
    return world


def test_flight_covers_the_instrumented_subsystems():
    world = run_failover()
    kinds = {e["kind"] for e in world.flight.events()}
    # Membership changes (initial formation + post-crash reformation),
    # the injected fault, token-loss detection on the broken ring, and
    # span closes from the causal tracer.
    assert "flight.membership" in kinds
    assert "flight.fault" in kinds
    assert "flight.token_loss" in kinds
    assert "flight.span" in kinds
    fault, = world.flight.events("flight.fault")
    assert fault["detail"]["action"] == "crash"
    # The crash produced a second membership epoch without the victim.
    installs = world.flight.events("flight.membership")
    assert len(installs) > len(make_domain(World(seed=1)).hosts)


def test_series_filled_by_the_failover_workload():
    world = run_failover()
    keys = world.series.keys()
    assert any(k.startswith("series.gateway.group.latency") for k in keys)
    assert any(k.startswith("series.gateway.latency") for k in keys)
    doc_text = world.series_json()
    assert '"schema":1' in doc_text


def test_arming_series_and_flight_never_perturbs_the_run():
    """The laziness/passivity contract, end to end: metrics JSON (the
    full simulated-time state fingerprint) is byte-identical whether
    the observability extras are armed or not."""
    armed = run_failover(armed=True, spans=False).metrics_json()
    dark = run_failover(armed=False, spans=False).metrics_json()
    assert armed == dark


def test_flight_and_series_json_byte_identical_across_runs():
    first = run_failover()
    second = run_failover()
    assert first.flight_json() == second.flight_json()
    assert first.series_json() == second.series_json()
    assert first.flight.recorded > 0


def test_flight_and_series_json_byte_identical_across_kernels():
    """The twin schedulers promise identical event ordering; the
    observability dumps are a sharp fingerprint of that promise."""
    calendar = run_failover(scheduler_cls=Scheduler)
    reference = run_failover(scheduler_cls=ReferenceScheduler)
    assert calendar.flight_json() == reference.flight_json()
    assert calendar.series_json() == reference.series_json()
