"""Unit tests for the application servants (no infrastructure)."""

import pytest

from repro.apps import (
    AccountServant,
    CounterServant,
    LedgerServant,
    QuoteServant,
    SettlementServant,
    TradingDeskServant,
    TransferAgentServant,
)
from repro.errors import InvocationFailure
from repro.orb.servant import NestedCall


# ----------------------------------------------------------------------
# Counter
# ----------------------------------------------------------------------

def test_counter_increments_and_decrements():
    counter = CounterServant()
    assert counter.increment(5) == 5
    assert counter.decrement(2) == 3
    assert counter.value() == 3
    counter.reset()
    assert counter.value() == 0


def test_counter_guard_raises_when_negative():
    counter = CounterServant()
    counter.decrement(1)
    with pytest.raises(InvocationFailure):
        counter.fail_if_negative()


def test_counter_state_roundtrip():
    a = CounterServant()
    a.increment(9)
    b = CounterServant()
    b.set_state(a.get_state())
    assert b.value() == 9


# ----------------------------------------------------------------------
# Bank
# ----------------------------------------------------------------------

def test_account_deposit_withdraw_balance():
    accounts = AccountServant()
    accounts.open("alice")
    assert accounts.deposit("alice", 100) == 100
    assert accounts.withdraw("alice", 30) == 70
    assert accounts.balance("alice") == 70
    assert accounts.balance("stranger") == 0


def test_account_overdraft_rejected():
    accounts = AccountServant()
    with pytest.raises(InvocationFailure) as excinfo:
        accounts.withdraw("alice", 1)
    assert "InsufficientFunds" in excinfo.value.repo_id


def test_account_negative_deposit_rejected():
    accounts = AccountServant()
    with pytest.raises(InvocationFailure):
        accounts.deposit("alice", -5)


def test_ledger_appends_and_counts():
    ledger = LedgerServant()
    assert ledger.record("a->b:1") == 1
    assert ledger.record("b->c:2") == 2
    assert ledger.entries() == 2
    assert ledger.log == ["a->b:1", "b->c:2"]


def test_transfer_agent_yields_expected_nested_calls():
    agent = TransferAgentServant()
    generator = agent.transfer("alice", "bob", 25)
    first = next(generator)
    assert first == NestedCall("Accounts", "withdraw", ["alice", 25])
    second = generator.send(75)          # alice's new balance
    assert second == NestedCall("Accounts", "deposit", ["bob", 25])
    third = generator.send(25)           # bob's new balance
    assert third.target == "Ledger"
    assert third.args == ["alice->bob:25"]
    with pytest.raises(StopIteration) as stop:
        generator.send(1)
    assert stop.value.value == 25
    assert agent.transfers_done() == 1


def test_transfer_agent_configurable_group_names():
    agent = TransferAgentServant(accounts_group="Vault", ledger_group="Audit")
    generator = agent.transfer("x", "y", 1)
    assert next(generator).target == "Vault"


# ----------------------------------------------------------------------
# Stock trading
# ----------------------------------------------------------------------

def test_quote_service_prices():
    quotes = QuoteServant({"ACME": 1500})
    assert quotes.price("ACME") == 1500
    quotes.set_price("ACME", 1600)
    assert quotes.price("ACME") == 1600
    with pytest.raises(InvocationFailure):
        quotes.price("GHOST")


def test_settlement_counts():
    settlement = SettlementServant()
    assert settlement.settle("BUY alice 1 ACME", 1500) == 1
    assert settlement.settled_count() == 1


def test_trading_desk_buy_flow():
    desk = TradingDeskServant()
    generator = desk.buy("alice", "ACME", 10)
    quote_call = next(generator)
    assert quote_call == NestedCall("Quotes", "price", ["ACME"])
    settle_call = generator.send(1500)
    assert settle_call.operation == "settle"
    assert settle_call.args[1] == 15_000  # 10 shares x 1500 cents
    with pytest.raises(StopIteration) as stop:
        generator.send(1)
    assert stop.value.value == 10
    assert desk.position("alice", "ACME") == 10
    assert desk.orders_executed() == 1


def test_trading_desk_sell_requires_position():
    desk = TradingDeskServant()
    generator = desk.sell("alice", "ACME", 5)
    with pytest.raises(InvocationFailure):
        next(generator)


def test_trading_desk_rejects_nonpositive_orders():
    desk = TradingDeskServant()
    with pytest.raises(InvocationFailure):
        next(desk.buy("alice", "ACME", 0))


def test_trading_desk_sell_reduces_position():
    desk = TradingDeskServant()
    generator = desk.buy("alice", "ACME", 10)
    next(generator)
    generator.send(100)
    with pytest.raises(StopIteration):
        generator.send(1)
    generator = desk.sell("alice", "ACME", 4)
    next(generator)
    generator.send(100)
    with pytest.raises(StopIteration) as stop:
        generator.send(2)
    assert stop.value.value == 6


def test_trading_desk_settlement_target_interface_passthrough():
    desk = TradingDeskServant(settlement_target="IOR:abcd",
                              settlement_interface="Settlement")
    generator = desk.buy("a", "ACME", 1)
    next(generator)
    settle_call = generator.send(100)
    assert settle_call.target == "IOR:abcd"
    assert settle_call.interface == "Settlement"
