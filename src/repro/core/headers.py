"""Wire encoding of the Figure 4 message headers.

The simulation passes :class:`~repro.eternal.messages.DomainMessage`
objects by reference, but the paper specifies a concrete header layout
prepended to each IIOP message inside the domain:

    | TCP client id | source group id | target group id |
    | operation identifier | message timestamp |

This module provides the byte-level encoding/decoding of that header so
its cost and structure can be measured (experiment E4) and so the
formats of Figure 4(a)/(b)/(c) can be regenerated exactly:

* (a) client <-> gateway: a bare IIOP message (optionally carrying the
  enhanced client's service context);
* (b) gateway -> domain: reliable-multicast header + FT/gateway header
  (client id = the TCP client identifier) + IIOP message;
* (c) within the domain: the same, with client id = UNUSED.
"""

from __future__ import annotations

from typing import Tuple

from ..errors import MarshalError
from ..iiop.cdr import CdrInputStream, CdrOutputStream
from .identifiers import ClientId, OperationId, UNUSED_CLIENT_ID

# Discriminants for the two client-id representations (counter vs uid).
_CLIENT_ID_INT = 0
_CLIENT_ID_STR = 1

# The reliable-multicast header of Figure 4: ring generation, sequence
# number, sender — what Totem prepends below Eternal's own header.
MULTICAST_HEADER_FIELDS = ("ring_generation", "sequence_number", "sender")


def encode_ft_header(client_id: ClientId, source_group: int,
                     target_group: int, op_id: OperationId,
                     timestamp: int) -> bytes:
    """Encode the fault tolerance infrastructure + gateway header."""
    out = CdrOutputStream()
    if isinstance(client_id, int):
        out.write_octet(_CLIENT_ID_INT)
        out.write_ulonglong(client_id)
    else:
        out.write_octet(_CLIENT_ID_STR)
        out.write_string(client_id)
    out.write_ulong(source_group)
    out.write_ulong(target_group)
    out.write_ulonglong(op_id.parent_ts)
    out.write_ulong(op_id.child_seq)
    out.write_ulonglong(timestamp)
    return out.getvalue()


def decode_ft_header(data: bytes) -> Tuple[ClientId, int, int, OperationId,
                                           int, int]:
    """Decode a header; returns (client id, source, target, op id,
    timestamp, bytes consumed)."""
    stream = CdrInputStream(data)
    tag = stream.read_octet()
    if tag == _CLIENT_ID_INT:
        client_id: ClientId = stream.read_ulonglong()
    elif tag == _CLIENT_ID_STR:
        client_id = stream.read_string()
    else:
        raise MarshalError(f"bad client-id tag {tag}")
    source_group = stream.read_ulong()
    target_group = stream.read_ulong()
    parent_ts = stream.read_ulonglong()
    child_seq = stream.read_ulong()
    timestamp = stream.read_ulonglong()
    return (client_id, source_group, target_group,
            OperationId(parent_ts, child_seq), timestamp, stream.position)


def encode_multicast_message(client_id: ClientId, source_group: int,
                             target_group: int, op_id: OperationId,
                             timestamp: int, iiop: bytes,
                             ring_generation: int = 0,
                             sequence_number: int = 0,
                             sender: str = "") -> bytes:
    """Full Figure 4(b)/(c) message: multicast header + FT header + IIOP."""
    out = CdrOutputStream()
    out.write_ulong(ring_generation)
    out.write_ulonglong(sequence_number)
    out.write_string(sender)
    out.write_raw(encode_ft_header(client_id, source_group, target_group,
                                   op_id, timestamp))
    out.write_octets(iiop)
    return out.getvalue()


def intra_domain_header(source_group: int, target_group: int,
                        op_id: OperationId, timestamp: int) -> bytes:
    """Figure 4(c): the client id is 'some unused value'."""
    return encode_ft_header(UNUSED_CLIENT_ID, source_group, target_group,
                            op_id, timestamp)


def header_overhead(client_id: ClientId = UNUSED_CLIENT_ID) -> int:
    """Bytes the FT/gateway header adds to each IIOP message."""
    return len(encode_ft_header(client_id, 1, 2, OperationId(0, 1), 0))
