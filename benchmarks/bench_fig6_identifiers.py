"""E6 (Figure 6): identifier assignment across nested invocations.

Reproduces the figure's worked example structurally — one parent
invocation on group A performing child operations on group B — and then
scales it: many parents, several children each, verifying the paper's
uniqueness argument (timestamps from the total order + per-parent child
counters => globally unique operation identifiers) and measuring the
dedup machinery's throughput.
"""

from repro import World
from repro.apps import (
    ACCOUNT_INTERFACE,
    AccountServant,
    LEDGER_INTERFACE,
    LedgerServant,
    TRANSFER_INTERFACE,
    TransferAgentServant,
)
from repro.core import DuplicateSuppressor, OperationId, external_operation_id

from common import build_domain


def build_bank(world):
    domain = build_domain(world, num_hosts=4, gateways=0)
    accounts = domain.create_group("Accounts", ACCOUNT_INTERFACE,
                                   AccountServant)
    ledger = domain.create_group("Ledger", LEDGER_INTERFACE, LedgerServant)
    agent = domain.create_group("Transfers", TRANSFER_INTERFACE,
                                TransferAgentServant)
    return domain, accounts, ledger, agent


def run_nested_workload(parents=10):
    world = World(seed=66, trace=False)
    domain, accounts, ledger, agent = build_bank(world)
    world.await_promise(accounts.invoke("deposit", "alice", 10_000),
                        timeout=600)
    for _ in range(parents):
        world.await_promise(agent.invoke("transfer", "alice", "bob", 10),
                            timeout=600)
    world.run(until=world.now + 0.5)

    # Collect every nested operation id recorded at the Accounts group.
    rm = next(rm for rm in domain.rms.values()
              if accounts.group_id in rm.replicas)
    seen = rm._invocations_seen[accounts.group_id]
    nested = [op for (src, _, op) in seen if src == agent.group_id]
    parents_seen = {op.parent_ts for op in nested}
    ledger_rm = next(r for r in domain.rms.values()
                     if ledger.group_id in r.replicas)
    return {
        "parents": parents,
        "nested_ops_recorded": len(nested),
        "distinct_operation_ids": len(set(nested)),
        "distinct_parent_timestamps": len(parents_seen),
        "ledger_entries": len(
            ledger_rm.replicas[ledger.group_id].servant.log),
    }


def test_fig6_identifier_uniqueness_under_load(benchmark):
    row = benchmark.pedantic(run_nested_workload, args=(10,), rounds=2,
                             iterations=1)
    # Each transfer = 2 Accounts children (withdraw, deposit); all ids
    # distinct; one distinct parent timestamp per transfer.
    assert row["nested_ops_recorded"] == 2 * row["parents"]
    assert row["distinct_operation_ids"] == row["nested_ops_recorded"]
    assert row["distinct_parent_timestamps"] == row["parents"]
    assert row["ledger_entries"] == row["parents"]
    benchmark.extra_info.update(row)


def test_fig6_operation_id_generation_throughput(benchmark):
    """Raw cost of allocating and hashing operation identifiers."""
    state = {"ts": 0}

    def generate():
        state["ts"] += 1
        ops = [OperationId(state["ts"], child) for child in range(1, 11)]
        return hash(tuple(ops))

    benchmark(generate)


def test_fig6_dedup_table_throughput(benchmark):
    """Cost of the gateway/RM dedup decision per response (section 3.3)."""
    suppressor = DuplicateSuppressor()
    state = {"seq": 0}

    def one_operation():
        state["seq"] += 1
        key = (10, "client", external_operation_id(state["seq"]))
        suppressor.expect(key)
        suppressor.offer(key, b"response", responder="r0")   # delivered
        suppressor.offer(key, b"response", responder="r1")   # suppressed
        suppressor.offer(key, b"response", responder="r2")   # suppressed

    benchmark(one_operation)
    stats = suppressor.stats
    assert stats["delivered"] * 2 == stats["duplicates_suppressed"]
