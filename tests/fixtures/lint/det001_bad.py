# reprolint: module=repro.sim.fake
"""DET001 bad fixture: wall-clock reads inside a deterministic module."""

import time
from datetime import datetime
from time import perf_counter


def stamp():
    return time.time(), perf_counter(), datetime.now()
