"""Minimal TypeCode system for marshalling operation arguments.

The reproduction declares CORBA interfaces with a small Python DSL
(:mod:`repro.orb.idl`) rather than parsing OMG IDL text.  Each parameter
and result carries one of these type codes; :func:`encode_value` and
:func:`decode_value` marshal Python values to and from CDR accordingly.

Supported kinds cover what the paper's application classes (stock
trading, banking) and the manager interfaces need: void, boolean,
octet, short/long/longlong (+ unsigned), float/double, string, octet
sequences, typed sequences, and named structs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from ..errors import MarshalError
from .cdr import CdrInputStream, CdrOutputStream


class TypeCode:
    """Base class; concrete kinds implement encode/decode."""

    kind = "abstract"

    def encode(self, out: CdrOutputStream, value: Any) -> None:
        raise NotImplementedError

    def decode(self, stream: CdrInputStream) -> Any:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<TypeCode {self.kind}>"


class _PrimitiveTC(TypeCode):
    def __init__(self, kind: str, writer: str, reader: str) -> None:
        self.kind = kind
        self._writer = writer
        self._reader = reader

    def encode(self, out: CdrOutputStream, value: Any) -> None:
        getattr(out, self._writer)(value)

    def decode(self, stream: CdrInputStream) -> Any:
        return getattr(stream, self._reader)()


class _VoidTC(TypeCode):
    kind = "void"

    def encode(self, out: CdrOutputStream, value: Any) -> None:
        if value is not None:
            raise MarshalError(f"void result must be None, got {value!r}")

    def decode(self, stream: CdrInputStream) -> Any:
        return None


class _OctetsTC(TypeCode):
    kind = "octets"

    def encode(self, out: CdrOutputStream, value: Any) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise MarshalError(f"octets value must be bytes, got {type(value).__name__}")
        out.write_octets(bytes(value))

    def decode(self, stream: CdrInputStream) -> Any:
        return stream.read_octets()


TC_VOID = _VoidTC()
TC_BOOLEAN = _PrimitiveTC("boolean", "write_boolean", "read_boolean")
TC_OCTET = _PrimitiveTC("octet", "write_octet", "read_octet")
TC_SHORT = _PrimitiveTC("short", "write_short", "read_short")
TC_USHORT = _PrimitiveTC("ushort", "write_ushort", "read_ushort")
TC_LONG = _PrimitiveTC("long", "write_long", "read_long")
TC_ULONG = _PrimitiveTC("ulong", "write_ulong", "read_ulong")
TC_LONGLONG = _PrimitiveTC("longlong", "write_longlong", "read_longlong")
TC_ULONGLONG = _PrimitiveTC("ulonglong", "write_ulonglong", "read_ulonglong")
TC_FLOAT = _PrimitiveTC("float", "write_float", "read_float")
TC_DOUBLE = _PrimitiveTC("double", "write_double", "read_double")
TC_STRING = _PrimitiveTC("string", "write_string", "read_string")
TC_OCTETS = _OctetsTC()


class EnumTC(TypeCode):
    """CORBA enum: encoded as an unsigned long ordinal.

    The Python representation is the member *string*, keeping servants
    free of generated enum classes; unknown members are rejected on
    both paths (a wire ordinal beyond the member list is malformed).
    """

    kind = "enum"

    def __init__(self, name: str, members: Sequence[str]) -> None:
        if not members:
            raise MarshalError(f"enum {name} needs at least one member")
        if len(set(members)) != len(members):
            raise MarshalError(f"enum {name} has duplicate members")
        self.name = name
        self.members = list(members)
        self._ordinal = {member: i for i, member in enumerate(members)}

    def encode(self, out: CdrOutputStream, value: Any) -> None:
        ordinal = self._ordinal.get(value)
        if ordinal is None:
            raise MarshalError(
                f"{value!r} is not a member of enum {self.name} "
                f"({self.members})")
        out.write_ulong(ordinal)

    def decode(self, stream: CdrInputStream) -> str:
        ordinal = stream.read_ulong()
        if ordinal >= len(self.members):
            raise MarshalError(
                f"ordinal {ordinal} out of range for enum {self.name}")
        return self.members[ordinal]

    def __repr__(self) -> str:
        return f"<TypeCode enum {self.name}>"


class SequenceTC(TypeCode):
    """sequence<element>: ulong count then elements."""

    kind = "sequence"

    def __init__(self, element: TypeCode) -> None:
        self.element = element

    def encode(self, out: CdrOutputStream, value: Any) -> None:
        if not isinstance(value, (list, tuple)):
            raise MarshalError(f"sequence value must be list/tuple, got {type(value).__name__}")
        out.write_ulong(len(value))
        for item in value:
            self.element.encode(out, item)

    def decode(self, stream: CdrInputStream) -> List[Any]:
        count = stream.read_ulong()
        return [self.element.decode(stream) for _ in range(count)]

    def __repr__(self) -> str:
        return f"<TypeCode sequence<{self.element.kind}>>"


class StructTC(TypeCode):
    """Named struct: fields encoded in declaration order.

    Python representation is a plain dict keyed by field name, which
    keeps application servants free of generated classes.
    """

    kind = "struct"

    def __init__(self, name: str, fields: Sequence[Tuple[str, TypeCode]]) -> None:
        self.name = name
        self.fields = list(fields)

    def encode(self, out: CdrOutputStream, value: Any) -> None:
        if not isinstance(value, dict):
            raise MarshalError(f"struct {self.name} expects a dict, got {type(value).__name__}")
        for field_name, tc in self.fields:
            if field_name not in value:
                raise MarshalError(f"struct {self.name} missing field {field_name!r}")
            tc.encode(out, value[field_name])

    def decode(self, stream: CdrInputStream) -> Dict[str, Any]:
        return {name: tc.decode(stream) for name, tc in self.fields}

    def __repr__(self) -> str:
        return f"<TypeCode struct {self.name}>"


def encode_values(types: Sequence[TypeCode], values: Sequence[Any],
                  out: CdrOutputStream) -> None:
    """Encode a parameter list; lengths must match."""
    if len(types) != len(values):
        raise MarshalError(f"expected {len(types)} values, got {len(values)}")
    for tc, value in zip(types, values):
        tc.encode(out, value)


def decode_values(types: Sequence[TypeCode], stream: CdrInputStream) -> List[Any]:
    """Decode a parameter list in declaration order."""
    return [tc.decode(stream) for tc in types]
