"""The paper's primary contribution: gateways to fault tolerance domains.

* :class:`Gateway` — the TCP <-> totally-ordered-multicast bridge on a
  domain's edge, with duplicate response suppression, per-server-group
  client-id counters, request mirroring across redundant gateways, and
  crashed-peer takeover (paper sections 3.1-3.5).
* :class:`GatewayPool` / :class:`CircuitBreaker` — the gateway farm:
  consistent-hash sharding of the client population across N gateways,
  pool-aware multi-profile IORs, admission control, and per-gateway
  circuit breakers (section 3.5 scaled out for capacity).
* :class:`FtClientLayer` / :class:`FtRequester` — the thin client-side
  interception layer of section 3.5 (multi-profile traversal, unique
  client ids, reissue on failover).
* :mod:`~repro.core.identifiers` — Figure 6 invocation/response/
  operation identifiers.
* :class:`DuplicateSuppressor` — first-wins and majority-vote response
  filtering (section 3.3).
* :mod:`~repro.core.headers` — the Figure 4 wire headers.
"""

from .client_interceptor import FtClientLayer, FtRequester, MuxRequester
from .duplicates import DuplicateSuppressor
from .gateway import Gateway
from .gateway_pool import CircuitBreaker, GatewayPool
from .headers import (
    decode_ft_header,
    encode_ft_header,
    encode_multicast_message,
    header_overhead,
    intra_domain_header,
)
from .identifiers import (
    ClientId,
    DedupKey,
    EXTERNAL_PARENT_TS,
    InvocationId,
    OperationId,
    ResponseId,
    UNUSED_CLIENT_ID,
    dedup_key,
    external_operation_id,
)

__all__ = [
    "CircuitBreaker",
    "ClientId",
    "DedupKey",
    "DuplicateSuppressor",
    "EXTERNAL_PARENT_TS",
    "FtClientLayer",
    "FtRequester",
    "Gateway",
    "GatewayPool",
    "MuxRequester",
    "InvocationId",
    "OperationId",
    "ResponseId",
    "UNUSED_CLIENT_ID",
    "decode_ft_header",
    "dedup_key",
    "encode_ft_header",
    "encode_multicast_message",
    "external_operation_id",
    "header_overhead",
    "intra_domain_header",
]
