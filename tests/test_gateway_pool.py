"""Tests: the gateway farm (pool sharding, breakers, re-homing).

Covers the :class:`repro.core.GatewayPool` surface end to end:
circuit-breaker state machine units, consistent-hash routing and
rebalancing, enhanced-client failover across pool-aware IOR profiles,
plain-ORB re-homing via GIOP ``OBJECT_FORWARD``, admission-control
shedding, and logical-client identity multiplexing — all with the
exactly-once guarantees the farm inherits from request mirroring and
duplicate suppression.
"""

import pytest

from repro import CircuitBreaker, FtClientLayer, GatewayPool, Orb
from repro.eternal.naming import make_object_key
from repro.iiop import (
    GiopFramer,
    LocateStatus,
    decode_locate_forward,
    decode_locate_reply,
    encode_locate_request,
)

from tests.helpers import (
    crash_gateway_on_response,
    make_counter_group,
    make_domain,
    replica_counts,
)


# ----------------------------------------------------------------------
# Circuit breaker units (manual clock)
# ----------------------------------------------------------------------

def make_breaker(**kwargs):
    clock = {"now": 0.0}
    events = []
    breaker = CircuitBreaker(clock=lambda: clock["now"],
                             listener=events.append, **kwargs)
    return breaker, clock, events


def test_breaker_trips_after_consecutive_failures():
    breaker, _, events = make_breaker(failure_threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED and breaker.can_accept()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.can_accept()
    assert events == ["trip"]


def test_breaker_success_resets_the_failure_count():
    breaker, _, _ = make_breaker(failure_threshold=2)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED


def test_breaker_half_opens_lazily_and_bounds_probes():
    breaker, clock, events = make_breaker(
        failure_threshold=1, reset_timeout=0.25, probe_quota=2)
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    clock["now"] = 0.24
    assert not breaker.can_accept()          # not yet
    clock["now"] = 0.25
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert breaker.can_accept()
    breaker.note_routed()
    breaker.note_routed()
    assert not breaker.can_accept()          # probe quota exhausted
    assert events == ["trip", "probe", "probe"]


def test_breaker_closes_after_enough_probe_successes():
    breaker, clock, events = make_breaker(
        failure_threshold=1, reset_timeout=0.1, close_after=2)
    breaker.record_failure()
    clock["now"] = 0.1
    breaker.note_routed()
    breaker.record_success()
    assert breaker.state == CircuitBreaker.HALF_OPEN
    breaker.note_routed()
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED
    assert events[-1] == "close"


def test_breaker_reopens_on_probe_failure():
    breaker, clock, events = make_breaker(failure_threshold=1,
                                          reset_timeout=0.1)
    breaker.record_failure()
    clock["now"] = 0.1
    assert breaker.state == CircuitBreaker.HALF_OPEN
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert events[-1] == "reopen"
    # The reset window restarts from the re-open instant.
    clock["now"] = 0.15
    assert breaker.state == CircuitBreaker.OPEN
    clock["now"] = 0.2
    assert breaker.state == CircuitBreaker.HALF_OPEN


def test_breaker_force_open_is_immediate():
    breaker, _, events = make_breaker(failure_threshold=100)
    breaker.force_open()
    assert breaker.state == CircuitBreaker.OPEN
    assert events == ["trip"]


# ----------------------------------------------------------------------
# Consistent-hash ring and routing
# ----------------------------------------------------------------------

def make_pool(world, size, **kwargs):
    domain = make_domain(world, gateways=0)
    pool = GatewayPool(domain, size=size, **kwargs)
    domain.await_stable()
    return domain, pool


def test_ring_rebalances_a_minority_of_keys(world):
    _, pool = make_pool(world, size=3)
    keys = [f"client/{i}#1" for i in range(200)]
    before = {key: pool.hash_owner(key) for key in keys}
    pool.add_gateway()
    pool.domain.await_stable()
    moved = sum(1 for key in keys if pool.hash_owner(key) is not before[key])
    # Consistent hashing: adding one gateway to three moves ~1/4 of the
    # key space, never a wholesale reshuffle.
    assert 0 < moved < len(keys) // 2


def test_route_prefers_the_hash_owner(world):
    _, pool = make_pool(world, size=3)
    key = "client/route#1"
    owner = pool.hash_owner(key)
    assert pool.route(key) is owner
    snapshot = world.metrics.snapshot()
    assert snapshot["pool.route.owner"]["value"] == 1
    assert snapshot["pool.route.reroutes"]["value"] == 0


def test_route_skips_open_breakers_then_goes_unroutable(world):
    _, pool = make_pool(world, size=2, failure_threshold=2)
    key = "client/breaker#1"
    owner = pool.hash_owner(key)
    sibling = next(g for g in pool.gateways if g is not owner)
    for _ in range(2):
        pool.on_shed(owner)
    assert pool.breaker(owner).state == CircuitBreaker.OPEN
    assert pool.route(key) is sibling
    snapshot = world.metrics.snapshot()
    assert snapshot["pool.breaker.trips"]["value"] == 1
    assert snapshot["pool.route.reroutes"]["value"] == 1
    for _ in range(2):
        pool.on_shed(sibling)
    assert pool.route(key) is None
    assert world.metrics.snapshot()["pool.route.unroutable"]["value"] == 1


def test_breaker_probes_and_recloses_through_the_pool(world):
    _, pool = make_pool(world, size=2, failure_threshold=1,
                        reset_timeout=0.25, close_after=2)
    key = "client/recovery#1"
    owner = pool.hash_owner(key)
    pool.on_shed(owner)
    assert pool.breaker(owner).state == CircuitBreaker.OPEN
    assert pool.route(key) is not owner
    world.run(until=world.now + 0.3)
    # Lazy half-open: the next route is a probe back to the owner.
    assert pool.route(key) is owner
    pool.on_served(owner)
    assert pool.route(key) is owner
    pool.on_served(owner)
    assert pool.breaker(owner).state == CircuitBreaker.CLOSED
    snapshot = world.metrics.snapshot()
    assert snapshot["pool.breaker.probes"]["value"] >= 1
    assert snapshot["pool.breaker.closes"]["value"] == 1


def test_pool_state_is_audit_registered(world):
    _, pool = make_pool(world, size=2)
    world.run(until=world.now + 2.0)   # let the ring quiesce (totem gc)
    report = world.audit()
    assert report.ok
    snapshot = world.metrics.snapshot()
    assert snapshot["pool.state.gateways"]["value"] == 2
    assert snapshot["pool.state.breakers"]["value"] == 2


# ----------------------------------------------------------------------
# Enhanced clients: pool-aware IOR profiles, failover, exactly-once
# ----------------------------------------------------------------------

def pool_client(world, domain, pool, group, uid, host_name="browser",
                multiplexed=False):
    host = world.network.hosts.get(host_name) or world.add_host(host_name)
    orb = Orb(world, host, request_timeout=None)
    layer = FtClientLayer(orb, client_uid=uid)
    ior = pool.ior_for(group, f"{uid}#1")
    stub = layer.string_to_object(ior.to_string(), group.interface,
                                  multiplexed=multiplexed)
    return orb, stub, layer


def test_pool_ior_walks_the_ring_from_the_owner(world):
    domain, pool = make_pool(world, size=3)
    group = make_counter_group(domain)
    domain.await_ready(group)
    key = "alice#1"
    ior = pool.ior_for(group, key)
    profiles = [p.address for p in ior.iiop_profiles()]
    assert len(profiles) == 3
    owner = pool.hash_owner(key)
    assert profiles[0] == (owner.host.name, owner.port)
    assert len(set(profiles)) == 3    # every gateway appears exactly once


def test_enhanced_client_fails_over_to_ring_sibling_exactly_once(world):
    domain, pool = make_pool(world, size=3)
    group = make_counter_group(domain)
    domain.await_ready(group)
    _, stub, layer = pool_client(world, domain, pool, group, "alice")
    assert world.await_promise(stub.call("increment", 1), timeout=240) == 1
    owner = pool.hash_owner("alice#1")
    # Crash the home gateway after the domain executed the next request
    # but before the reply leaves: the precise section 3.5 window.
    crash_gateway_on_response(world, owner)
    result = world.await_promise(stub.call("increment", 1), timeout=240)
    assert result == 2
    # The reissue through the ring sibling was suppressed, not
    # re-executed: state moved exactly twice.
    world.run(until=world.now + 1.0)
    assert set(replica_counts(domain, group).values()) == {2}
    assert layer.failover_log          # the layer recorded the traversal


def test_gateway_kill_mid_burst_loses_and_duplicates_nothing(world):
    domain, pool = make_pool(world, size=3)
    group = make_counter_group(domain)
    domain.await_ready(group)
    burst = 12
    promises = []
    dead = pool.gateways[0]
    for i in range(burst):
        _, stub, _ = pool_client(world, domain, pool, group, f"burst/{i}",
                                 host_name="browser", multiplexed=True)
        promises.append(stub.call("increment", 1))
    # Kill one gateway while the burst is in flight (requests arrive at
    # t+40ms WAN; responses normally return around t+80ms).
    world.scheduler.call_after(0.06, world.faults.crash_now, dead.host.name)
    world.scheduler.run_until(lambda: all(p.done for p in promises),
                              timeout=300)
    results = sorted(p.result() for p in promises)
    # Every invocation completed with a distinct counter value: none
    # lost, none executed twice (the total order serialised them 1..N).
    assert results == list(range(1, burst + 1))
    world.run(until=world.now + 1.0)
    assert set(replica_counts(domain, group).values()) == {burst}
    # The pool notices the death lazily at the next routing decision.
    key = next(f"burst/{i}#1" for i in range(burst, burst + 100)
               if pool.hash_owner(f"burst/{i}#1") is dead)
    assert pool.route(key) is not dead
    snapshot = world.metrics.snapshot()
    assert snapshot["pool.breaker.trips"]["value"] >= 1
    assert snapshot["pool.route.reroutes"]["value"] >= 1


# ----------------------------------------------------------------------
# Plain ORBs: GIOP locate re-homing
# ----------------------------------------------------------------------

def raw_connection(world, gateway, host_name="prober"):
    host = world.network.hosts.get(host_name) or world.add_host(host_name)
    state = {}
    world.tcp.connect(host, (gateway.host.name, gateway.port),
                      lambda ep: state.setdefault("ep", ep),
                      lambda exc: state.setdefault("err", exc))
    world.scheduler.run_until(lambda: state)
    endpoint = state["ep"]
    framer = GiopFramer()
    replies = []
    endpoint.on_data = lambda data: replies.extend(framer.feed(data))
    return endpoint, replies


def test_plain_client_rehomed_by_locate_forward(world):
    domain, pool = make_pool(world, size=3)
    group = make_counter_group(domain)
    domain.await_ready(group)
    owner = pool.hash_owner("prober")    # plain ORBs key on host name
    wrong = next(g for g in pool.gateways if g is not owner)
    endpoint, replies = raw_connection(world, wrong)
    key = make_object_key(domain.name, group.group_id)
    endpoint.send(encode_locate_request(7, key))
    world.scheduler.run_until(lambda: replies, timeout=30.0)
    request_id, status = decode_locate_reply(replies[0])
    assert request_id == 7
    assert status == LocateStatus.OBJECT_FORWARD
    forward = decode_locate_forward(replies[0])
    assert forward is not None
    assert forward.iiop_profiles()[0].address == (owner.host.name, owner.port)
    assert world.metrics.snapshot()["pool.locate.forwards"]["value"] == 1
    # A year-2000 ORB follows the forward and works through its home.
    host = world.network.hosts["prober"]
    orb = Orb(world, host, request_timeout=None)
    stub = orb.string_to_object(forward.to_string(), group.interface)
    assert world.await_promise(stub.call("increment", 1), timeout=240) == 1


def test_locate_at_the_home_gateway_is_object_here(world):
    domain, pool = make_pool(world, size=3)
    group = make_counter_group(domain)
    domain.await_ready(group)
    owner = pool.hash_owner("prober")
    endpoint, replies = raw_connection(world, owner)
    endpoint.send(encode_locate_request(8, make_object_key(
        domain.name, group.group_id)))
    world.scheduler.run_until(lambda: replies, timeout=30.0)
    _, status = decode_locate_reply(replies[0])
    assert status == LocateStatus.OBJECT_HERE


# ----------------------------------------------------------------------
# Admission control and multiplexing
# ----------------------------------------------------------------------

def flood(world, seed=99):
    """A fresh over-capacity scenario; returns (results, sheds, world)."""
    domain = make_domain(world, gateways=0)
    pool = GatewayPool(domain, size=1, admission_window=1,
                       admission_queue_limit=2)
    domain.await_stable()
    group = make_counter_group(domain)
    domain.await_ready(group)
    host = world.add_host("flooder")
    orb = Orb(world, host, request_timeout=None)
    ior = pool.ior_for(group, "flooder")
    stub = orb.string_to_object(ior.to_string(), group.interface)
    promises = [stub.call("increment", 1) for _ in range(8)]
    world.scheduler.run_until(lambda: all(p.done for p in promises),
                              timeout=300)
    served = sorted(p.result() for p in promises if not p.failed)
    sheds = [p.error for p in promises if p.failed]
    world.run(until=world.now + 1.0)
    return served, sheds, domain, group


def test_admission_control_sheds_with_transient(world):
    served, sheds, domain, group = flood(world)
    assert served and sheds
    assert len(served) + len(sheds) == 8
    for exc in sheds:
        assert "Transient" in str(exc)
    # Served requests executed exactly once each; shed ones not at all.
    assert set(replica_counts(domain, group).values()) == {len(served)}
    snapshot = world.metrics.snapshot()
    assert snapshot["gateway.adm.shed"]["value"] == len(sheds)
    assert snapshot["pool.admission.shed"]["value"] == len(sheds)
    assert snapshot["pool.admission.served"]["value"] == len(served)


def test_admission_shedding_is_deterministic():
    from repro import World
    outcomes = []
    for _ in range(2):
        world = World(seed=99)
        served, sheds, _, _ = flood(world)
        snapshot = world.metrics.snapshot()
        pool_metrics = {name: data for name, data in snapshot.items()
                        if name.startswith(("pool.", "gateway.adm."))}
        outcomes.append((served, len(sheds), pool_metrics))
    assert outcomes[0] == outcomes[1]


def test_mux_clients_share_one_connection(world):
    domain, pool = make_pool(world, size=1)
    group = make_counter_group(domain)
    domain.await_ready(group)
    host = world.add_host("muxhost")
    orb = Orb(world, host, request_timeout=None)
    clients = 5
    stubs = []
    for i in range(clients):
        layer = FtClientLayer(orb, client_uid=f"mux/{i}")
        ior = pool.ior_for(group, f"mux/{i}#1")
        stubs.append(layer.string_to_object(ior.to_string(), group.interface,
                                            multiplexed=True))
    for i, stub in enumerate(stubs):
        assert world.await_promise(stub.call("increment", 1),
                                   timeout=240) == i + 1
    # One shared TCP connection carries every logical client identity.
    gateway = pool.gateways[0]
    assert len(gateway._conn_members) == 1
    members = sum(len(ids) for ids in gateway._conn_members.values())
    assert members == clients
    assert set(replica_counts(domain, group).values()) == {clients}
