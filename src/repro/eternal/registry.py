"""The replicated group directory.

Every Replication Mechanisms instance keeps a :class:`GroupRegistry`.
The registry is mutated **only** by control messages delivered through
the totally-ordered multicast, so at any logical point in the total
order every processor holds an identical directory — which is what
makes decentralised, deterministic decisions (primary election, state
transfer donor selection, resource-manager replacement placement)
consistent without further agreement.

All mutations are idempotent: replicated managers execute the same
operation at every replica and each emits the same control message, so
any mutation may arrive several times.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .styles import ReplicationStyle


@dataclass
class GroupInfo:
    """Directory entry for one replicated object group."""

    group_id: int
    name: str
    interface_name: str
    factory_name: str
    style: ReplicationStyle
    placement: Tuple[str, ...]      # host names, creation order preserved
    min_replicas: int = 1
    initial_replicas: int = 0
    version: int = 1
    checkpoint_interval: int = 10   # ops between cold-passive checkpoints
    style_epoch: int = 0            # bumped by each runtime style switch

    def primary(self, live_hosts: Sequence[str]) -> Optional[str]:
        """Deterministic primary: first placement host that is live."""
        for host in self.placement:
            if host in live_hosts:
                return host
        return None

    def live_replicas(self, live_hosts: Sequence[str]) -> List[str]:
        return [h for h in self.placement if h in live_hosts]


class GroupRegistry:
    """Identical-everywhere directory of group directory entries."""

    def __init__(self) -> None:
        self._groups: Dict[int, GroupInfo] = {}
        self._by_name: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def get(self, group_id: int) -> Optional[GroupInfo]:
        return self._groups.get(group_id)

    def require(self, group_id: int) -> GroupInfo:
        info = self._groups.get(group_id)
        if info is None:
            raise ConfigurationError(f"unknown group id {group_id}")
        return info

    def by_name(self, name: str) -> Optional[GroupInfo]:
        group_id = self._by_name.get(name)
        return self._groups.get(group_id) if group_id is not None else None

    def all_groups(self) -> List[GroupInfo]:
        return [self._groups[g] for g in sorted(self._groups)]

    def groups_on(self, host_name: str) -> List[GroupInfo]:
        return [info for info in self.all_groups() if host_name in info.placement]

    def __contains__(self, group_id: int) -> bool:
        return group_id in self._groups

    def __len__(self) -> int:
        return len(self._groups)

    # ------------------------------------------------------------------
    # Idempotent mutations (driven by delivered control messages)
    # ------------------------------------------------------------------

    def announce(self, info: GroupInfo) -> bool:
        """Create or overwrite a directory entry.  Returns True if new."""
        existed = info.group_id in self._groups
        old = self._groups.get(info.group_id)
        if old is not None and old.name != info.name:
            self._by_name.pop(old.name, None)
        self._groups[info.group_id] = info
        self._by_name[info.name] = info.group_id
        return not existed

    def remove(self, group_id: int) -> Optional[GroupInfo]:
        info = self._groups.pop(group_id, None)
        if info is not None:
            self._by_name.pop(info.name, None)
        return info

    def add_replica(self, group_id: int, host_name: str) -> bool:
        """Extend a group's placement.  Returns True if actually added."""
        info = self._groups.get(group_id)
        if info is None or host_name in info.placement:
            return False
        self._groups[group_id] = replace(
            info, placement=info.placement + (host_name,))
        return True

    def remove_replica(self, group_id: int, host_name: str) -> bool:
        info = self._groups.get(group_id)
        if info is None or host_name not in info.placement:
            return False
        self._groups[group_id] = replace(
            info, placement=tuple(h for h in info.placement if h != host_name))
        return True

    def set_style(self, group_id: int, style: ReplicationStyle,
                  epoch: int) -> bool:
        """Apply a runtime style switch.  Returns True if it took effect.

        Epoch-guarded so redundant STYLE_SWITCH multicasts (replicated
        managers each emit one) apply exactly once: only an epoch
        strictly beyond the entry's current one mutates the entry.
        """
        info = self._groups.get(group_id)
        if info is None or epoch <= info.style_epoch:
            return False
        self._groups[group_id] = replace(info, style=style, style_epoch=epoch)
        return True

    def bump_version(self, group_id: int, factory_name: str) -> None:
        info = self._groups.get(group_id)
        if info is None:
            return
        self._groups[group_id] = replace(
            info, version=info.version + 1, factory_name=factory_name)

    def prune_dead_hosts(self, live_hosts: Sequence[str]) -> List[Tuple[int, str]]:
        """Drop placements on dead hosts.  Returns (group, host) removed.

        Called identically on every processor at a membership change, so
        all registries evolve in lock-step.
        """
        removed: List[Tuple[int, str]] = []
        live = set(live_hosts)
        for group_id, info in list(self._groups.items()):
            dead = [h for h in info.placement if h not in live]
            for host in dead:
                self.remove_replica(group_id, host)
                removed.append((group_id, host))
        return removed
