"""Unit tests for the Logging-Recovery Mechanisms' group log."""

from repro.core import OperationId
from repro.eternal import DomainMessage, GroupLog, MsgKind


def invocation(ts, seq=1):
    msg = DomainMessage(kind=MsgKind.INVOCATION, source_group=0,
                        target_group=10, op_id=OperationId(0, seq))
    msg.timestamp = ts
    return msg


def test_record_and_replay_all():
    log = GroupLog(10)
    for ts in (5, 9, 12):
        log.record_invocation(invocation(ts))
    assert len(log) == 3
    assert [m.timestamp for m in log.replay_after(0)] == [5, 9, 12]


def test_replay_after_is_strictly_greater():
    log = GroupLog(10)
    for ts in (5, 9, 12):
        log.record_invocation(invocation(ts))
    assert [m.timestamp for m in log.replay_after(9)] == [12]


def test_checkpoint_truncates_covered_prefix():
    log = GroupLog(10)
    for ts in (5, 9, 12, 20):
        log.record_invocation(invocation(ts))
    log.install_checkpoint({"count": 2}, ts=12)
    assert len(log) == 1
    assert log.latest_covered_ts() == 12
    assert [m.timestamp for m in log.replay_after(log.latest_covered_ts())] == [20]


def test_stale_checkpoint_ignored():
    log = GroupLog(10)
    log.install_checkpoint({"count": 5}, ts=100)
    log.install_checkpoint({"count": 1}, ts=50)  # older: a replayed message
    assert log.checkpoint.state == {"count": 5}
    assert log.latest_covered_ts() == 100


def test_ops_since_checkpoint_counter():
    log = GroupLog(10)
    for ts in (1, 2, 3):
        log.record_invocation(invocation(ts))
    assert log.ops_since_checkpoint == 3
    log.install_checkpoint({}, ts=3)
    assert log.ops_since_checkpoint == 0
    log.record_invocation(invocation(4))
    assert log.ops_since_checkpoint == 1


def test_no_checkpoint_means_cover_ts_zero():
    log = GroupLog(10)
    assert log.latest_covered_ts() == 0
    assert log.checkpoint is None
