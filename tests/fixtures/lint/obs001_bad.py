# reprolint: module=repro.core.fake
"""OBS001 bad fixture: a metric series missing from the catalogue."""


def record(metrics, spans, trace_id):
    metrics.counter("definitely.not.in.catalogue").inc()
    spans.start(trace_id, "mystery.span")


def record_series(series, flight):
    series.observe("series.not.in.catalogue", 1.0, group="1")
    series.sample("series.also.uncatalogued", lambda: 0)
    flight.record("flight.mystery.kind", detail="x")
