"""Canonical golden scenarios, shared by tests and analysis tools.

These are the two seeded end-to-end runs whose artifacts are pinned
byte-for-byte under ``tests/golden/``:

* :func:`run_failover_scenario` — the section 3.5 failover: the first
  gateway crashes at the exact instant a response reaches it and the
  enhanced client fails over to the second gateway.
* :func:`run_chaos_scenario` — a four-host domain with a scripted
  host crash mid-stream, recording the Totem delivery trace and final
  replica states.

They used to live inside the test files; they moved here so the race
detector (``tools/race_sweep.py``, ``python -m repro --race-sweep``)
can replay the *same* runs under permuted tie-break orders without
importing test code.  The tests delegate to these functions, so the
golden gate itself keeps the transcription honest: any drift in
construction order here breaks the byte-identical comparison there.

Every builder takes an optional ``scheduler`` so the sweep can inject
a :class:`~repro.analysis.race.RaceScheduler`; ``None`` means the
stock deterministic scheduler.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .. import FaultToleranceDomain, FtClientLayer, Orb, World
from ..apps import COUNTER_INTERFACE, CounterServant
from ..sim.world import SchedulerLike
from .race import partition_metric_series

DeliveryTrace = Dict[str, List[Tuple[int, str, str]]]


def _make_domain(world: World, num_hosts: int,
                 gateways: int) -> FaultToleranceDomain:
    domain = FaultToleranceDomain(world, "dom", num_hosts=num_hosts)
    for _ in range(gateways):
        domain.add_gateway(port=2809, mirror_requests=True)
    domain.await_stable()
    return domain


def _make_counter_group(domain: FaultToleranceDomain,
                        **kwargs: Any) -> Any:
    return domain.create_group("Counter", COUNTER_INTERFACE, CounterServant,
                               num_replicas=3, **kwargs)


def _replica_counts(domain: FaultToleranceDomain, group: Any
                    ) -> Dict[str, int]:
    values = {}
    for host_name, rm in domain.rms.items():
        record = rm.replicas.get(group.group_id)
        if record is not None and rm.alive:
            values[host_name] = record.servant.count
    return values


def run_failover_scenario(seed: int = 350,
                          scheduler: Optional[SchedulerLike] = None) -> World:
    """The section 3.5 failover: the first gateway crashes at the exact
    instant the response reaches it; the enhanced client fails over."""
    world = World(seed=seed, trace=False, scheduler=scheduler)
    domain = _make_domain(world, num_hosts=3, gateways=2)
    group = _make_counter_group(domain)
    host = world.add_host("browser")
    orb = Orb(world, host, request_timeout=None)
    layer = FtClientLayer(orb)
    stub = layer.string_to_object(domain.ior_for(group).to_string(),
                                  group.interface)
    world.await_promise(stub.call("increment", 1), timeout=600)
    gateway = domain.gateways[0]

    def crash_instead(msg: Any) -> None:
        world.faults.crash_now(gateway.host.name)

    gateway._on_domain_response = crash_instead
    result = world.await_promise(stub.call("increment", 10), timeout=600)
    world.run(until=world.now + 1.0)
    assert result == 11
    assert set(_replica_counts(domain, group).values()) == {11}
    assert len(layer.failover_log) >= 1
    return world


def run_chaos_scenario(victim_index: int = 0, crash_delay: float = 0.09,
                       seed: int = 5,
                       scheduler: Optional[SchedulerLike] = None
                       ) -> Tuple[DeliveryTrace, Dict[str, int], str]:
    """Seeded crash scenario; returns (delivery trace, final counts,
    metrics JSON) for comparison against the committed golden."""
    world = World(seed=seed, trace=False, scheduler=scheduler)
    domain = _make_domain(world, num_hosts=4, gateways=2)
    group = _make_counter_group(domain, min_replicas=2)
    deliveries: DeliveryTrace = {name: [] for name in domain.members}
    for name, member in domain.members.items():
        member.on_deliver(
            lambda seq, sender, payload, n=name: deliveries[n].append(
                (seq, sender,
                 getattr(payload, "describe", lambda: repr(payload))())))
    host = world.add_host("browser")
    orb = Orb(world, host, request_timeout=None)
    layer = FtClientLayer(orb, client_uid="chaos")
    stub = layer.string_to_object(
        domain.ior_for(group).to_string(), COUNTER_INTERFACE)
    victims = [h.name for h in domain.hosts]
    victim = victims[victim_index % len(victims)]
    world.scheduler.call_after(
        crash_delay, lambda: world.faults.crash_now(victim))
    for _ in range(4):
        world.await_promise(stub.call("increment", 1), timeout=600)
    world.run(until=world.now + 2.0)
    finals = {}
    for host_name, rm in domain.rms.items():
        record = rm.replicas.get(group.group_id)
        if record is not None and rm.alive:
            finals[host_name] = record.servant.count
    return deliveries, finals, world.metrics_json()


# ----------------------------------------------------------------------
# Artifact adapters for the permutation sweep
# ----------------------------------------------------------------------


def failover_artifacts(scheduler: Optional[SchedulerLike] = None
                       ) -> Mapping[str, str]:
    """Sweep artifacts for the failover golden scenario."""
    world = run_failover_scenario(scheduler=scheduler)
    semantic, effort = partition_metric_series(world.metrics_json())
    return {"metrics": semantic, "effort:metrics": effort}


def chaos_artifacts(scheduler: Optional[SchedulerLike] = None
                    ) -> Mapping[str, str]:
    """Sweep artifacts for the chaos golden scenario."""
    deliveries, finals, metrics_json = run_chaos_scenario(
        scheduler=scheduler)
    trace = json.dumps({"deliveries": deliveries, "final_counts": finals},
                       sort_keys=True, separators=(",", ":"))
    semantic, effort = partition_metric_series(metrics_json)
    return {"trace": trace, "metrics": semantic, "effort:metrics": effort}


#: Name -> artifact builder, as swept by ``tools/race_sweep.py`` and CI.
GOLDEN_SCENARIOS = {
    "failover_seed350": failover_artifacts,
    "chaos_seed5": chaos_artifacts,
}
