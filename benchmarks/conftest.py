"""Benchmark-session additions: print the reproduction metrics.

pytest-benchmark's table shows wall-clock timings; the numbers that
matter for the reproduction (simulated latencies, suppression counts,
byte sizes) live in each benchmark's ``extra_info``.  This hook prints
them at the end of the session so `pytest benchmarks/ --benchmark-only`
shows paper-relevant results without needing --benchmark-json.
"""

from __future__ import annotations

import pytest

import repro
from repro.sim import world as world_module

from common import metrics_extra_info


@pytest.fixture(autouse=True)
def attach_metrics(request, monkeypatch):
    """Attach a metrics-registry snapshot to every benchmark's extra_info.

    Benchmarks build their Worlds inside the benchmarked callable, so
    the fixture tracks the most recently constructed World and, after
    the test, stores its (simulated-time only, hence deterministic)
    snapshot under the ``metrics`` key.  pytest-benchmark keeps a
    reference to the fixture's extra_info dict, so a teardown-time
    update still reaches the report.
    """
    created = []
    original_init = world_module.World.__init__

    def tracking_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        created.append(self)

    monkeypatch.setattr(world_module.World, "__init__", tracking_init)
    yield
    benchmark = request.node.funcargs.get("benchmark")
    if benchmark is None:
        return
    # No World constructed (pure-marshalling benchmarks): snapshot a
    # fresh registry so the headline series are still reported.
    world = created[-1] if created else repro.World(seed=0, trace=False)
    benchmark.extra_info.setdefault("metrics", metrics_extra_info(world))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    session = getattr(config, "_benchmarksession", None)
    if session is None or not getattr(session, "benchmarks", None):
        return
    rows = [(bench.name, bench.extra_info)
            for bench in session.benchmarks if bench.extra_info]
    if not rows:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep(
        "-", "reproduction metrics (simulated time / counts)")
    for name, extra in sorted(rows):
        rendered = ", ".join(f"{key}={value}" for key, value in extra.items())
        terminalreporter.write_line(f"{name}: {rendered}")
